//! Umbrella crate for the Paxos-CP reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! integration tests can use a single dependency:
//!
//! * [`simnet`] — deterministic discrete-event simulation kernel.
//! * [`mvkv`] — multi-version key-value store substrate.
//! * [`walog`] — write-ahead log model and serializability theory.
//! * [`paxos`] — basic Paxos and Paxos-CP commit protocol state machines.
//! * [`storage`] — durable plane: disk WAL, snapshots, buffer-pooled pager.
//! * [`mdstore`] — the transaction tier (the paper's core contribution).
//! * [`workload`] — YCSB-style workload generation and experiment runner.

pub use mdstore;
pub use mvkv;
pub use paxos;
pub use simnet;
pub use storage;
pub use walog;
pub use workload;
