//! Quickstart: build a three-datacenter cluster, run a small transactional
//! workload under Paxos-CP, and verify one-copy serializability.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paxos_cp::mdstore::{Cluster, ClusterConfig, CommitProtocol, Topology};
use paxos_cp::workload::{run_experiment, ExperimentSpec};

fn main() {
    // --- The one-call path: describe an experiment and run it. -------------
    let spec = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
        .named("quickstart")
        .with_clients(3, 20)
        .with_seed(7);
    println!(
        "running {} transactions over a {} cluster with {}...",
        spec.total_transactions(),
        spec.topology.name(),
        spec.protocol.name()
    );
    let result = run_experiment(&spec);
    println!(
        "committed {}/{} transactions ({} needed a promotion, {} were combined)",
        result.totals.committed,
        result.attempted,
        result.totals.promoted_commits(),
        result.totals.combined_commits
    );
    println!(
        "mean commit latency: {:.1} ms (p95 {:.1} ms)",
        result.totals.commit_latency().mean_ms,
        result.totals.commit_latency().p95_ms
    );
    for (group, report) in &result.check {
        println!(
            "serializability verified for group {group}: {} positions, {} transactions, {} combined entries",
            report.positions, report.transactions, report.combined_positions
        );
    }

    // --- The lower-level path: build a cluster by hand and poke at it. -----
    let cluster = Cluster::build(ClusterConfig::new(
        Topology::from_name("VOC").expect("valid cluster name"),
        CommitProtocol::PaxosCp,
    ));
    println!(
        "\nbuilt a {} cluster with {} datacenters; services at {:?}",
        cluster.config().topology.name(),
        cluster.num_datacenters(),
        (0..cluster.num_datacenters())
            .map(|r| cluster.service_node(r))
            .collect::<Vec<_>>()
    );
    println!("each datacenter holds a multi-version store and a replicated write-ahead log;");
    println!("add client actors with Cluster::add_client and drive them with the simulator.");
}
