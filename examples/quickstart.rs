//! Quickstart: build a three-datacenter cluster, run a small transactional
//! workload under Paxos-CP down both commit routes, and verify one-copy
//! serializability.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paxos_cp::mdstore::{Cluster, ClusterConfig, CommitProtocol, CommitRoute, Topology};
use paxos_cp::workload::{run_experiment, ExperimentSpec};

fn main() {
    // --- The one-call path: describe an experiment and run it. -------------
    //
    // Clients are `mdstore::Session`s: `begin()` hands back a `TxnHandle`,
    // reads/writes/commit take the handle, and several transactions can be
    // open concurrently (`with_max_open`). Commit takes one of two routes:
    // `Direct` drives the paper's client-side Paxos-CP proposer, one
    // instance per transaction; `Submitted` ships the finished transaction
    // to the group home's Transaction Service, whose hosted group committer
    // batches commits from every client into pipelined shared instances.
    for route in [CommitRoute::Direct, CommitRoute::Submitted] {
        let spec = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
            .named(format!("quickstart-{}", route.name()))
            .with_clients(3, 20)
            .with_route(route)
            .with_max_open(2)
            .with_seed(7);
        println!(
            "running {} transactions over a {} cluster with {} (route: {})...",
            spec.total_transactions(),
            spec.topology.name(),
            spec.protocol.name(),
            route.name(),
        );
        let result = run_experiment(&spec);
        println!(
            "committed {}/{} transactions ({} needed a promotion, {} were combined)",
            result.totals.committed,
            result.attempted,
            result.totals.promoted_commits(),
            result.totals.combined_commits
        );
        println!(
            "mean commit latency: {:.1} ms (p95 {:.1} ms)",
            result.totals.commit_latency().mean_ms,
            result.totals.commit_latency().p95_ms
        );
        for (group, report) in &result.check {
            println!(
                "serializability verified for group {group}: {} positions, {} transactions, {} combined entries",
                report.positions, report.transactions, report.combined_positions
            );
        }
        println!();
    }

    // --- The lower-level path: build a cluster by hand and poke at it. -----
    let cluster = Cluster::build(ClusterConfig::new(
        Topology::from_name("VOC").expect("valid cluster name"),
        CommitProtocol::PaxosCp,
    ));
    println!(
        "built a {} cluster with {} datacenters; services at {:?}",
        cluster.config().topology.name(),
        cluster.num_datacenters(),
        (0..cluster.num_datacenters())
            .map(|r| cluster.service_node(r))
            .collect::<Vec<_>>()
    );
    println!("each datacenter holds a multi-version store, a replicated write-ahead log,");
    println!("and a Transaction Service hosting the group commit engine; add `Session`-owning");
    println!("client actors with Cluster::add_client and drive them with the simulator.");
}
