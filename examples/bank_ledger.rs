//! A small "bank ledger" application on top of the transactional datastore:
//! concurrent clients in different datacenters transfer money between
//! accounts of one transaction group. One-copy serializability means no
//! transfer is ever half-applied and the total balance is conserved, even
//! though every client only sees its local datacenter.
//!
//! ```text
//! cargo run --release --example bank_ledger
//! ```

use parking_lot::Mutex;
use paxos_cp::mdstore::{
    ClientAction, Cluster, ClusterConfig, CommitProtocol, Msg, Session, Topology,
};
use paxos_cp::simnet::{Actor, Context, NodeId, SimDuration};
use std::sync::Arc;

const ACCOUNTS: usize = 8;
const INITIAL_BALANCE: i64 = 1_000;
const GROUP: &str = "ledger";
const ROW: &str = "accounts";

#[derive(Default)]
struct Stats {
    transfers_committed: usize,
    transfers_aborted: usize,
}

/// A teller in one datacenter: repeatedly transfers a random amount between
/// two random accounts (aborted transfers are simply dropped — conservation
/// of money never depends on retries, only on serializability).
struct Teller {
    session: Option<Session>,
    transfers_left: usize,
    rng_state: u64,
    stats: Arc<Mutex<Stats>>,
}

impl Teller {
    fn next_rand(&mut self) -> u64 {
        // A small deterministic LCG keeps the example self-contained.
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        self.rng_state >> 16
    }

    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    let mut stats = self.stats.lock();
                    if result.committed {
                        stats.transfers_committed += 1;
                    } else {
                        stats.transfers_aborted += 1;
                    }
                    drop(stats);
                    // Pace tellers slightly apart so the example finishes in
                    // a handful of simulated seconds.
                    ctx.set_timer(SimDuration::from_millis(120), u64::MAX);
                }
            }
        }
    }

    fn start_transfer(&mut self, ctx: &mut Context<Msg>) {
        if self.transfers_left == 0 {
            return;
        }
        self.transfers_left -= 1;
        let from = (self.next_rand() as usize) % ACCOUNTS;
        let mut to = (self.next_rand() as usize) % ACCOUNTS;
        if to == from {
            to = (to + 1) % ACCOUNTS;
        }
        let amount = (self.next_rand() % 50) as i64 + 1;
        let session = self.session.as_mut().unwrap();
        let txn = session.begin(ctx.now(), GROUP);
        let balance = |v: Option<String>| {
            v.and_then(|s| s.parse::<i64>().ok())
                .unwrap_or(INITIAL_BALANCE)
        };
        let from_balance = balance(session.read(txn, ROW, &format!("acct{from}")).unwrap());
        let to_balance = balance(session.read(txn, ROW, &format!("acct{to}")).unwrap());
        session
            .write(
                txn,
                ROW,
                &format!("acct{from}"),
                (from_balance - amount).to_string(),
            )
            .unwrap();
        session
            .write(
                txn,
                ROW,
                &format!("acct{to}"),
                (to_balance + amount).to_string(),
            )
            .unwrap();
        let actions = session.commit(ctx.now(), txn).unwrap();
        self.apply(ctx, actions);
    }
}

impl Actor<Msg> for Teller {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.start_transfer(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let session = self.session.as_mut().unwrap();
        let actions = session.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == u64::MAX {
            self.start_transfer(ctx);
        } else {
            let session = self.session.as_mut().unwrap();
            let actions = session.on_timer(ctx.now(), tag);
            self.apply(ctx, actions);
        }
    }
}

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let stats = Arc::new(Mutex::new(Stats::default()));
    // One teller per datacenter, each issuing 25 transfers.
    for replica in 0..cluster.num_datacenters() {
        let directory = cluster.directory();
        let client_config = cluster.client_config();
        let sink = stats.clone();
        cluster.add_client(replica, |node| {
            Box::new(Teller {
                session: Some(Session::new(node, replica, directory, client_config)),
                transfers_left: 25,
                rng_state: 0xA5A5_0000 + node.0 as u64,
                stats: sink,
            })
        });
    }
    cluster.run_to_completion();

    let stats = stats.lock();
    println!(
        "transfers committed: {}, aborted (conflicting): {}",
        stats.transfers_committed, stats.transfers_aborted
    );

    // Verify serializability, then audit the ledger at every datacenter.
    let reports = cluster
        .verify()
        .expect("ledger history must be serializable");
    println!(
        "serializability verified over {} log positions",
        reports[0].1.positions
    );

    // Resolve the interned ids once for the direct store audit below.
    let symbols = cluster.symbols();
    let group = symbols.group(GROUP);
    let row = symbols.key(ROW);
    for replica in 0..cluster.num_datacenters() {
        let core = cluster.core(replica);
        let mut core = core.lock();
        let position = core.read_position(group);
        let mut total = 0i64;
        for account in 0..ACCOUNTS {
            let attr = symbols.attr(&format!("acct{account}"));
            let value = core
                .read(group, row, attr, position)
                .unwrap()
                .and_then(|s| s.parse::<i64>().ok())
                .unwrap_or(INITIAL_BALANCE);
            total += value;
        }
        println!(
            "datacenter {replica}: total balance across {ACCOUNTS} accounts = {total} (expected {})",
            ACCOUNTS as i64 * INITIAL_BALANCE
        );
        assert_eq!(
            total,
            ACCOUNTS as i64 * INITIAL_BALANCE,
            "money must be conserved"
        );
    }
    println!("money conserved at every datacenter — transfers were serializable.");
}
