//! Availability under a datacenter outage — the scenario that motivates the
//! paper (the 2011 EC2 and Dublin outages): with full replication and a
//! majority-based commit protocol, the loss of one datacenter must not stop
//! transaction processing, and the failed datacenter must converge to the
//! same log once it returns.
//!
//! ```text
//! cargo run --release --example datacenter_outage
//! ```

use parking_lot::Mutex;
use paxos_cp::mdstore::{
    ClientAction, Cluster, ClusterConfig, CommitProtocol, Msg, RunMetrics, Session, Topology,
};
use paxos_cp::simnet::{Actor, Context, NodeId, SimDuration};
use std::sync::Arc;

/// A client that issues short read/write transactions back to back.
struct Writer {
    session: Option<Session>,
    remaining: usize,
    metrics: Arc<Mutex<RunMetrics>>,
    attr: String,
}

impl Writer {
    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    self.metrics.lock().record(&result);
                    self.start_next(ctx);
                }
            }
        }
    }

    fn start_next(&mut self, ctx: &mut Context<Msg>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let session = self
            .session
            .as_mut()
            .expect("session is set at construction");
        let txn = session.begin(ctx.now(), "accounts");
        let current = session
            .read(txn, "balances", &self.attr)
            .expect("read in txn");
        let next = current.and_then(|v| v.parse::<u64>().ok()).unwrap_or(0) + 1;
        session
            .write(txn, "balances", &self.attr, next.to_string())
            .expect("write in txn");
        let actions = session.commit(ctx.now(), txn).expect("commit");
        self.apply(ctx, actions);
    }
}

impl Actor<Msg> for Writer {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.start_next(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let session = self.session.as_mut().unwrap();
        let actions = session.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        let session = self.session.as_mut().unwrap();
        let actions = session.on_timer(ctx.now(), tag);
        self.apply(ctx, actions);
    }
}

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let metrics = Arc::new(Mutex::new(RunMetrics::default()));
    let directory = cluster.directory();
    let client_config = cluster.client_config();
    let sink = metrics.clone();
    cluster.add_client(0, |node| {
        Box::new(Writer {
            session: Some(Session::new(node, 0, directory, client_config)),
            remaining: 200,
            metrics: sink,
            attr: "alice".into(),
        })
    });

    // Let some transactions commit with all three datacenters up.
    cluster.run_for(SimDuration::from_secs(2));
    let before = metrics.lock().committed;
    println!("commits with all datacenters up: {before}");

    // Take California (replica 2) offline: a majority (Virginia + Oregon)
    // remains, so the workload keeps committing.
    println!("\n-- crashing datacenter 2 (california) --");
    cluster.crash_datacenter(2);
    cluster.run_for(SimDuration::from_secs(20));
    let during = metrics.lock().committed;
    println!("commits while california is down: {}", during - before);
    assert!(
        during > before,
        "a majority of datacenters must keep committing"
    );

    // Bring it back; the remaining workload plus read-triggered recovery
    // catches the replica up, and all logs must agree.
    println!("\n-- recovering datacenter 2 --");
    cluster.recover_datacenter(2);
    cluster.run_to_completion();
    let total = metrics.lock().committed;
    println!("total commits: {total} / 200 attempted");

    let symbols = cluster.symbols();
    let reports = cluster
        .verify()
        .expect("logs must agree and be serializable");
    for (group, report) in reports {
        let name = symbols
            .group_name(group)
            .unwrap_or_else(|| group.to_string());
        println!(
            "group {name}: {} log positions, {} committed transactions — replica agreement and one-copy serializability verified",
            report.positions, report.transactions
        );
    }
    let final_balance = {
        let group = symbols.group("accounts");
        let row = symbols.key("balances");
        let attr = symbols.attr("alice");
        let core = cluster.core(0);
        let mut core = core.lock();
        let position = core.read_position(group);
        core.read(group, row, attr, position).ok().flatten()
    };
    println!("final balance of 'alice' at datacenter 0: {final_balance:?}");
}
