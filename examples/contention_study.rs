//! Contention study: how data contention affects basic Paxos vs. Paxos-CP
//! (a miniature of Figure 6 of the paper, runnable in a few seconds).
//!
//! Basic Paxos aborts one of any two transactions racing for the same log
//! position regardless of what they touch — concurrency *prevention*.
//! Paxos-CP only aborts on real read-write conflicts, so its commit rate
//! climbs as the entity group gets wider (less contention).
//!
//! ```text
//! cargo run --release --example contention_study
//! ```

use paxos_cp::mdstore::{CommitProtocol, Topology};
use paxos_cp::workload::{run_experiment, ExperimentSpec};

fn main() {
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "attributes", "paxos commits", "cp commits", "cp promoted", "cp combined"
    );
    for attributes in [10usize, 50, 200] {
        let mut row = Vec::new();
        for protocol in [CommitProtocol::BasicPaxos, CommitProtocol::PaxosCp] {
            let spec = ExperimentSpec::paper_default(Topology::vvv(), protocol)
                .named(format!("contention-{attributes}-{}", protocol.name()))
                .with_clients(4, 30)
                .with_attributes(attributes)
                .with_seed(2024);
            row.push(run_experiment(&spec));
        }
        let (paxos, cp) = (&row[0], &row[1]);
        println!(
            "{:<12} {:>9}/{:<4} {:>9}/{:<4} {:>12} {:>12}",
            attributes,
            paxos.totals.committed,
            paxos.attempted,
            cp.totals.committed,
            cp.attempted,
            cp.totals.promoted_commits(),
            cp.totals.combined_commits,
        );
    }
    println!("\nthe basic protocol's commit count barely moves with contention;");
    println!("Paxos-CP recovers nearly every non-conflicting transaction through promotion.");
}
