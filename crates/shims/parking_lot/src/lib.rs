//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal shim that provides the subset of the `parking_lot` API the
//! codebase uses — `Mutex::lock`, `RwLock::read`/`write` returning guards
//! directly (no `Result`) — implemented on top of the standard-library
//! locks. Lock poisoning is deliberately ignored, matching `parking_lot`'s
//! behaviour: a panicked holder does not poison the lock for later users.

use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
