//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal deterministic RNG with the `rand` surface the codebase uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen` and `Rng::gen_range`.
//!
//! The generator is SplitMix64: not cryptographic, but high-quality enough
//! for simulation jitter, message-loss draws and workload generation, and —
//! crucially for the deterministic simulator — the same seed produces the
//! same stream on every platform.

use std::ops::Range;

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// The workspace's standard RNG: SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

/// Seeding behaviour (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix once so seeds 0 and 1 do not produce near-identical
        // initial outputs.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        rng
    }
}

impl StdRng {
    /// Advance the SplitMix64 state and return the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain (`rand`'s `Standard`
/// distribution subset).
pub trait Standard: Sized {
    /// Draw one value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 high-quality bits mapped to [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> $t {
                bits as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable from a half-open range (`rand`'s `SampleUniform` subset).
pub trait SampleUniform: Sized + Copy {
    /// Draw one value from `range` using `bits` (uniform up to the modulo
    /// bias, which is negligible for the range sizes this workspace uses).
    fn from_range(range: Range<Self>, bits: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_range(range: Range<$t>, bits: u64) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128) - (range.start as u128);
                range.start + ((bits as u128 % span) as $t)
            }
        }
    )*}
}
uniform_int!(u8, u16, u32, u64, usize);

/// The sampling interface (`rand::Rng` subset).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Sample a value uniformly from a half-open range. Panics on an empty
    /// range, like `rand`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::from_range(range, self.next_u64())
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
