//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small wall-clock micro-benchmark harness with the criterion surface the
//! bench targets use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `sample_size`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Differences from real criterion, deliberately accepted: no statistical
//! outlier analysis, no HTML reports. Each benchmark is calibrated to a
//! fixed measurement window, timed over `sample_size` samples, and reported
//! as median/mean ns-per-iteration on stdout. Set the `BENCH_JSON`
//! environment variable to additionally append machine-readable results to
//! that path (used to snapshot `BENCH_baseline.json`).

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A compound id `function/parameter`, as in criterion.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// One measured result.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/name` of the benchmark.
    pub id: String,
    /// Median nanoseconds per iteration over the samples.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration over the samples.
    pub mean_ns: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
    /// Optional unit label carried into the snapshot row (see
    /// [`BenchmarkGroup::unit`]); `None` means plain ns-per-iteration.
    pub unit: Option<String>,
}

/// The benchmark harness root.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Build from CLI arguments: `--test` (passed by `cargo test` to
    /// `harness = false` targets) switches to a one-iteration smoke mode.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            results: Vec::new(),
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            unit: None,
        }
    }

    /// Print the summary and write `BENCH_JSON` output if requested.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        if let Ok(path) = std::env::var("BENCH_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                let comma = if i + 1 == self.results.len() { "" } else { "," };
                let unit = r
                    .unit
                    .as_ref()
                    .map(|u| format!(", \"unit\": \"{u}\""))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"iterations\": {}{unit}}}{comma}\n",
                    r.id, r.median_ns, r.mean_ns, r.iterations
                ));
            }
            out.push_str("]\n");
            let write = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(out.as_bytes()));
            match write {
                Ok(()) => eprintln!("wrote {} results to {path}", self.results.len()),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    unit: Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Shim extension (no criterion equivalent): tag subsequent benchmarks'
    /// snapshot rows with an explicit `"unit"` field describing what one
    /// iteration's ns value measures, per the snapshot schema's value/unit
    /// convention (see `docs/BENCHMARKS.md`). Unset rows are plain
    /// ns-per-iteration.
    pub fn unit(&mut self, unit: impl Into<String>) -> &mut Self {
        self.unit = Some(unit.into());
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        if let Some(mut result) = bencher.result {
            result.id = full.clone();
            result.unit = self.unit.clone();
            println!(
                "{full:<55} median {:>12} mean {:>12}  ({} iters)",
                format_ns(result.median_ns),
                format_ns(result.mean_ns),
                result.iterations
            );
            self.criterion.results.push(result);
        } else {
            println!("{full:<55} (skipped: no measurement)");
        }
        self
    }

    /// Run one parameterized benchmark closure.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    result: Option<BenchResult>,
}

impl Bencher {
    /// Measure a closure: calibrate the per-sample iteration count to a
    /// ~2 ms window, then time `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.result = Some(BenchResult {
                id: String::new(),
                median_ns: 0.0,
                mean_ns: 0.0,
                iterations: 1,
                unit: None,
            });
            return;
        }
        // Calibrate: find an iteration count that takes at least ~2 ms,
        // capped so pathological single-iteration costs still finish.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            total_iters += iters_per_sample;
            samples_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.result = Some(BenchResult {
            id: String::new(),
            median_ns: median,
            mean_ns: mean,
            iterations: total_iters,
            unit: None,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:.3} s", ns / 1_000_000_000.0)
    } else if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generate the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("trivial", |b| b.iter(|| 1 + 1));
            group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &n| b.iter(|| n * 2));
            group.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/trivial");
        assert_eq!(c.results[1].id, "g/param/7");
        assert!(c.results[0].iterations > 0);
        assert_eq!(c.results[0].unit, None);
    }

    #[test]
    fn unit_tags_subsequent_results() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("plain", |b| b.iter(|| 1 + 1));
            group.unit("ns_per_record");
            group.bench_function("tagged", |b| b.iter(|| 2 + 2));
            group.finish();
        }
        assert_eq!(c.results[0].unit, None);
        assert_eq!(c.results[1].unit.as_deref(), Some("ns_per_record"));
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5_000.0).ends_with("µs"));
        assert!(format_ns(5_000_000.0).ends_with("ms"));
        assert!(format_ns(5_000_000_000.0).ends_with(" s"));
    }
}
