//! Shared test scaffolding: self-cleaning temporary directories.
//!
//! Names derive from the process id plus a process-local counter — no wall
//! clock, no randomness — so parallel test binaries never collide and the
//! determinism lint stays happy.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory tagged with `label`.
    pub fn new(label: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("storage-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
