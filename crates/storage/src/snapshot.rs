//! Per-group snapshots: the state needed to restart a replica without the
//! truncated WAL prefix.
//!
//! A snapshot captures, for one transaction group at one decided log
//! prefix: the prefix position, the in-memory log truncation floor that was
//! in force when it was written (restart must restore the same floor so a
//! recovered replica's retained log matches the pre-crash one), the set of
//! committed transaction ids, and every live MVCC version of the group's
//! application rows.
//!
//! Files are written atomically — encode, CRC-frame, write to a `.tmp`
//! sibling, `fsync`, `rename` — so a crash mid-snapshot leaves the previous
//! snapshot intact. One file per group (`snap-g<id>.snap`), always the
//! newest: snapshots are cumulative, not incremental.

use crate::fault::StorageError;
use crate::frame::{append_frame, read_frame, FrameRead};
use std::io::Write;
use std::path::{Path, PathBuf};
use walog::{GroupId, LogPosition, TxnId};

/// One MVCC key with every version retained at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotRow {
    /// The packed store key (group in the high bits, row key in the low).
    pub key: u64,
    /// `(timestamp, attributes)` per retained version, ascending.
    pub versions: Vec<(u64, Vec<(u32, String)>)>,
}

/// A complete per-group snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSnapshot {
    /// The transaction group.
    pub group: GroupId,
    /// Decided log prefix the snapshot covers (rows reflect every entry
    /// applied through this position).
    pub position: LogPosition,
    /// In-memory log truncation floor in force when the snapshot was
    /// written; restart restores the log base to this position.
    pub log_base: LogPosition,
    /// Committed transaction ids indexed for this group.
    pub committed: Vec<TxnId>,
    /// Application rows with their retained versions.
    pub rows: Vec<SnapshotRow>,
}

impl GroupSnapshot {
    /// Encode as an ASCII payload (numbers space-separated, strings
    /// length-prefixed `len:bytes`, mirroring the `walog` entry codec).
    pub fn encode(&self) -> String {
        let mut s = String::from("GS1");
        push_num(&mut s, self.group.0 as u64);
        push_num(&mut s, self.position.0);
        push_num(&mut s, self.log_base.0);
        push_num(&mut s, self.committed.len() as u64);
        for id in &self.committed {
            push_num(&mut s, id.client as u64);
            push_num(&mut s, id.seq);
        }
        push_num(&mut s, self.rows.len() as u64);
        for row in &self.rows {
            push_num(&mut s, row.key);
            push_num(&mut s, row.versions.len() as u64);
            for (ts, attrs) in &row.versions {
                push_num(&mut s, *ts);
                push_num(&mut s, attrs.len() as u64);
                for (attr, value) in attrs {
                    push_num(&mut s, *attr as u64);
                    push_str(&mut s, value);
                }
            }
        }
        s
    }

    /// Decode; `None` for malformed input.
    pub fn decode(input: &str) -> Option<GroupSnapshot> {
        let rest = input.strip_prefix("GS1")?;
        let mut cur = Cursor(rest);
        let group = GroupId(cur.num()? as u32);
        let position = LogPosition(cur.num()?);
        let log_base = LogPosition(cur.num()?);
        let ncommitted = cur.num()?;
        let mut committed = Vec::with_capacity(ncommitted as usize);
        for _ in 0..ncommitted {
            let client = cur.num()? as u32;
            let seq = cur.num()?;
            committed.push(TxnId::new(client, seq));
        }
        let nrows = cur.num()?;
        let mut rows = Vec::with_capacity(nrows as usize);
        for _ in 0..nrows {
            let key = cur.num()?;
            let nvers = cur.num()?;
            let mut versions = Vec::with_capacity(nvers as usize);
            for _ in 0..nvers {
                let ts = cur.num()?;
                let nattrs = cur.num()?;
                let mut attrs = Vec::with_capacity(nattrs as usize);
                for _ in 0..nattrs {
                    let attr = cur.num()? as u32;
                    let value = cur.str()?;
                    attrs.push((attr, value.to_string()));
                }
                versions.push((ts, attrs));
            }
            rows.push(SnapshotRow { key, versions });
        }
        Some(GroupSnapshot {
            group,
            position,
            log_base,
            committed,
            rows,
        })
    }
}

fn push_num(s: &mut String, n: u64) {
    s.push(' ');
    s.push_str(&n.to_string());
}

fn push_str(s: &mut String, v: &str) {
    s.push(' ');
    s.push_str(&v.len().to_string());
    s.push(':');
    s.push_str(v);
}

struct Cursor<'a>(&'a str);

impl<'a> Cursor<'a> {
    fn num(&mut self) -> Option<u64> {
        let s = self.0.strip_prefix(' ')?;
        let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
        if end == 0 {
            return None;
        }
        let n = s[..end].parse().ok()?;
        self.0 = &s[end..];
        Some(n)
    }

    fn str(&mut self) -> Option<&'a str> {
        let s = self.0.strip_prefix(' ')?;
        let (len, rest) = s.split_once(':')?;
        let len: usize = len.parse().ok()?;
        let bytes = rest.get(..len)?;
        self.0 = &rest[len..];
        Some(bytes)
    }
}

/// Directory of per-group snapshot files with atomic replace.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

fn snapshot_path(dir: &Path, group: GroupId) -> PathBuf {
    dir.join(format!("snap-g{}.snap", group.0))
}

impl SnapshotStore {
    /// Open (creating) the snapshot directory.
    pub fn open(dir: &Path) -> Result<SnapshotStore, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io("mkdir", dir, e))?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
        })
    }

    /// Atomically replace the group's snapshot file.
    pub fn save(&self, snap: &GroupSnapshot) -> Result<(), StorageError> {
        let mut framed = Vec::new();
        append_frame(&mut framed, snap.encode().as_bytes());
        let path = snapshot_path(&self.dir, snap.group);
        let tmp = path.with_extension("tmp");
        let mut file =
            std::fs::File::create(&tmp).map_err(|e| StorageError::io("create", &tmp, e))?;
        file.write_all(&framed)
            .map_err(|e| StorageError::io("write", &tmp, e))?;
        file.sync_data().map_err(|_| StorageError::SyncFailed {
            path: tmp.display().to_string(),
            injected: false,
        })?;
        drop(file);
        std::fs::rename(&tmp, &path).map_err(|e| StorageError::io("rename", &path, e))
    }

    /// Load every readable snapshot; files that fail the CRC or the codec
    /// are skipped (a torn snapshot write is survivable — the WAL still
    /// holds everything) and counted in the second return value.
    pub fn load_all(&self) -> Result<(Vec<GroupSnapshot>, usize), StorageError> {
        let mut snaps = Vec::new();
        let mut corrupt = 0;
        let entries =
            std::fs::read_dir(&self.dir).map_err(|e| StorageError::io("readdir", &self.dir, e))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name().is_some_and(|n| {
                    let n = n.to_string_lossy();
                    n.starts_with("snap-g") && n.ends_with(".snap")
                })
            })
            .collect();
        paths.sort();
        for path in paths {
            let data = std::fs::read(&path).map_err(|e| StorageError::io("read", &path, e))?;
            let decoded = match read_frame(&data, 0) {
                FrameRead::Frame { payload, .. } => std::str::from_utf8(payload)
                    .ok()
                    .and_then(GroupSnapshot::decode),
                _ => None,
            };
            match decoded {
                Some(snap) => snaps.push(snap),
                None => corrupt += 1,
            }
        }
        Ok((snaps, corrupt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn sample(group: u32) -> GroupSnapshot {
        GroupSnapshot {
            group: GroupId(group),
            position: LogPosition(40),
            log_base: LogPosition(24),
            committed: vec![TxnId::new(1, 2), TxnId::new(3, 4)],
            rows: vec![SnapshotRow {
                key: (u64::from(group) << 32) | 7,
                versions: vec![
                    (38, vec![(0, "hello world".to_string()), (2, String::new())]),
                    (40, vec![(0, "colon:and space".to_string())]),
                ],
            }],
        }
    }

    #[test]
    fn codec_roundtrips() {
        let snap = sample(3);
        assert_eq!(GroupSnapshot::decode(&snap.encode()).unwrap(), snap);
        assert!(GroupSnapshot::decode("GS9 1").is_none());
        assert!(GroupSnapshot::decode("GS1 1 2").is_none());
    }

    #[test]
    fn save_load_roundtrips_per_group() {
        let dir = TempDir::new("snap-roundtrip");
        let store = SnapshotStore::open(dir.path()).unwrap();
        store.save(&sample(0)).unwrap();
        store.save(&sample(2)).unwrap();
        // Replacing a group's snapshot keeps one file per group.
        let mut newer = sample(0);
        newer.position = LogPosition(99);
        store.save(&newer).unwrap();
        let (snaps, corrupt) = store.load_all().unwrap();
        assert_eq!(corrupt, 0);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].position, LogPosition(99));
        assert_eq!(snaps[1], sample(2));
    }

    #[test]
    fn corrupt_snapshot_is_skipped_not_fatal() {
        let dir = TempDir::new("snap-corrupt");
        let store = SnapshotStore::open(dir.path()).unwrap();
        store.save(&sample(1)).unwrap();
        let victim = snapshot_path(dir.path(), GroupId(1));
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&victim, bytes).unwrap();
        let (snaps, corrupt) = store.load_all().unwrap();
        assert!(snaps.is_empty());
        assert_eq!(corrupt, 1);
    }
}
