//! Fixed-frame buffer pool over a page file, and the cold-version pager
//! that plugs it into `mvkv`.
//!
//! Three layers:
//!
//! * [`DiskManager`] — a flat page file (`pages.db`, 4 KiB pages) with
//!   bump allocation and positioned page I/O;
//! * [`BufferPool`] — a fixed number of in-memory frames over those pages
//!   with pin/unpin, CLOCK (second-chance) eviction and dirty write-back;
//!   hot-path reads never touch the disk once a page is framed;
//! * [`VersionPager`] — implements [`mvkv::ColdStore`]: encodes evicted
//!   MVCC versions, packs small records into shared pages (large records
//!   get a dedicated contiguous page run), and finds them again through an
//!   in-memory `(key, timestamp) → location` index.
//!
//! The pager is a cache of *re-derivable* state: every spilled version is
//! also reachable from snapshot + WAL, so the page file is reset on
//! restart rather than recovered.

use crate::fault::StorageError;
use mvkv::{Attr, ColdStore, Key, Row, Timestamp};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bytes per page.
pub const PAGE_SIZE: usize = 4096;

/// The flat page file: allocation plus positioned whole-page I/O.
#[derive(Debug)]
pub struct DiskManager {
    inner: Mutex<DiskInner>,
    path: PathBuf,
}

#[derive(Debug)]
struct DiskInner {
    file: std::fs::File,
    next_page: u64,
}

impl DiskManager {
    /// Open (truncating) the page file at `path`.
    pub fn open(path: &Path) -> Result<DiskManager, StorageError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| StorageError::io("mkdir", parent, e))?;
        }
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StorageError::io("open", path, e))?;
        Ok(DiskManager {
            inner: Mutex::new(DiskInner { file, next_page: 0 }),
            path: path.to_path_buf(),
        })
    }

    /// Allocate `n` contiguous pages; returns the first page id.
    pub fn alloc(&self, n: u64) -> u64 {
        let mut inner = self.inner.lock();
        let first = inner.next_page;
        inner.next_page += n;
        first
    }

    /// Read one page into `buf` (zero-filled past the end of file).
    pub fn read_page(&self, page: u64, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut inner = self.inner.lock();
        buf.fill(0);
        if inner
            .file
            .seek(SeekFrom::Start(page * PAGE_SIZE as u64))
            .is_ok()
        {
            let mut at = 0;
            while at < buf.len() {
                match inner.file.read(&mut buf[at..]) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => at += n,
                }
            }
        }
    }

    /// Write one page.
    pub fn write_page(&self, page: u64, buf: &[u8]) {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut inner = self.inner.lock();
        if inner
            .file
            .seek(SeekFrom::Start(page * PAGE_SIZE as u64))
            .is_ok()
        {
            let _ = inner.file.write_all(buf);
        }
    }

    /// Pages allocated so far.
    pub fn pages(&self) -> u64 {
        self.inner.lock().next_page
    }

    /// Drop all contents (the pager is a cache; restart starts empty).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        let _ = inner.file.set_len(0);
        inner.next_page = 0;
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Buffer-pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read from disk.
    pub misses: u64,
    /// Frames reclaimed by the CLOCK hand.
    pub evictions: u64,
    /// Dirty frames written back on eviction or flush.
    pub write_backs: u64,
}

#[derive(Debug)]
struct Frame {
    page: Option<u64>,
    data: Vec<u8>,
    pin: u32,
    dirty: bool,
    referenced: bool,
}

#[derive(Debug)]
struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
    stats: PoolStats,
}

/// Fixed-capacity frame cache over a [`DiskManager`].
#[derive(Debug)]
pub struct BufferPool {
    disk: Arc<DiskManager>,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// A pool of `capacity` frames (at least one).
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        let capacity = capacity.max(1);
        let frames = (0..capacity)
            .map(|_| Frame {
                page: None,
                data: vec![0u8; PAGE_SIZE],
                pin: 0,
                dirty: false,
                referenced: false,
            })
            .collect();
        BufferPool {
            disk,
            inner: Mutex::new(PoolInner {
                frames,
                map: HashMap::new(),
                hand: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Run `f` over the page's bytes with the frame pinned.
    pub fn with_page<R>(&self, page: u64, f: impl FnOnce(&[u8]) -> R) -> R {
        let mut inner = self.inner.lock();
        let idx = Self::frame_for(&mut inner, &self.disk, page);
        inner.frames[idx].pin += 1;
        let out = f(&inner.frames[idx].data);
        inner.frames[idx].pin -= 1;
        out
    }

    /// Run `f` over the page's bytes mutably with the frame pinned; the
    /// frame is marked dirty and written back on eviction or flush.
    pub fn with_page_mut<R>(&self, page: u64, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut inner = self.inner.lock();
        let idx = Self::frame_for(&mut inner, &self.disk, page);
        inner.frames[idx].pin += 1;
        inner.frames[idx].dirty = true;
        let out = f(&mut inner.frames[idx].data);
        inner.frames[idx].pin -= 1;
        out
    }

    /// Find or load the frame holding `page`, evicting via CLOCK if full.
    fn frame_for(inner: &mut PoolInner, disk: &DiskManager, page: u64) -> usize {
        if let Some(&idx) = inner.map.get(&page) {
            inner.stats.hits += 1;
            inner.frames[idx].referenced = true;
            return idx;
        }
        inner.stats.misses += 1;
        let idx = Self::victim(inner, disk);
        if let Some(old) = inner.frames[idx].page.take() {
            inner.map.remove(&old);
            inner.stats.evictions += 1;
            if inner.frames[idx].dirty {
                disk.write_page(old, &inner.frames[idx].data);
                inner.stats.write_backs += 1;
            }
        }
        disk.read_page(page, &mut inner.frames[idx].data);
        inner.frames[idx].page = Some(page);
        inner.frames[idx].dirty = false;
        inner.frames[idx].referenced = true;
        inner.map.insert(page, idx);
        idx
    }

    /// CLOCK second-chance sweep: prefer an empty frame, otherwise the
    /// first unpinned, unreferenced frame (clearing reference bits as the
    /// hand passes).
    fn victim(inner: &mut PoolInner, _disk: &DiskManager) -> usize {
        if let Some(idx) = inner.frames.iter().position(|f| f.page.is_none()) {
            return idx;
        }
        let n = inner.frames.len();
        for _ in 0..2 * n {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &mut inner.frames[idx];
            if frame.pin > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return idx;
        }
        panic!("buffer pool exhausted: every frame is pinned");
    }

    /// Write every dirty frame back to disk.
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        for idx in 0..inner.frames.len() {
            if inner.frames[idx].dirty {
                if let Some(page) = inner.frames[idx].page {
                    self.disk.write_page(page, &inner.frames[idx].data);
                    inner.frames[idx].dirty = false;
                    inner.stats.write_backs += 1;
                }
            }
        }
    }

    /// Drop every frame without write-back (used with [`DiskManager::reset`]).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.hand = 0;
        for frame in &mut inner.frames {
            frame.page = None;
            frame.pin = 0;
            frame.dirty = false;
            frame.referenced = false;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().frames.len()
    }
}

/// Where a spilled version lives in the page file.
#[derive(Clone, Copy, Debug)]
enum Loc {
    /// Packed with other small records in a shared page.
    Packed { page: u64, offset: u32, len: u32 },
    /// A dedicated run of contiguous pages (record ≥ one page).
    Run { first: u64, pages: u32, len: u32 },
}

#[derive(Debug, Default)]
struct PagerInner {
    index: BTreeMap<(u64, u64), Loc>,
    open_page: Option<(u64, usize)>,
    free_runs: Vec<(u64, u32)>,
    spilled_bytes: u64,
}

/// The [`ColdStore`] backend: spilled MVCC versions in a buffer-pooled
/// page file.
#[derive(Debug)]
pub struct VersionPager {
    disk: Arc<DiskManager>,
    pool: BufferPool,
    inner: Mutex<PagerInner>,
}

fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::new();
    let attrs: Vec<(Attr, &str)> = row.iter().collect();
    out.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
    for (attr, value) in attrs {
        out.extend_from_slice(&attr.0.to_le_bytes());
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(value.as_bytes());
    }
    out
}

fn decode_row(bytes: &[u8]) -> Option<Row> {
    let mut at = 0;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?);
    let mut row = Row::new();
    for _ in 0..count {
        let attr = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?);
        let len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        let value = std::str::from_utf8(take(&mut at, len)?).ok()?;
        row.set(Attr(attr), value);
    }
    Some(row)
}

impl VersionPager {
    /// Open a pager over `path` with `frames` buffer-pool frames.
    pub fn open(path: &Path, frames: usize) -> Result<Arc<VersionPager>, StorageError> {
        let disk = Arc::new(DiskManager::open(path)?);
        let pool = BufferPool::new(Arc::clone(&disk), frames);
        Ok(Arc::new(VersionPager {
            disk,
            pool,
            inner: Mutex::new(PagerInner::default()),
        }))
    }

    /// Forget everything and truncate the page file (restart path: spilled
    /// versions are rebuilt from snapshot + WAL, not recovered).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.index.clear();
        inner.open_page = None;
        inner.free_runs.clear();
        inner.spilled_bytes = 0;
        self.pool.reset();
        self.disk.reset();
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Versions currently spilled.
    pub fn spilled_versions(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// Bytes of encoded versions currently spilled.
    pub fn spilled_bytes(&self) -> u64 {
        self.inner.lock().spilled_bytes
    }

    fn write_run(&self, first: u64, pages: u32, bytes: &[u8]) {
        for i in 0..pages as u64 {
            let lo = (i as usize) * PAGE_SIZE;
            let hi = bytes.len().min(lo + PAGE_SIZE);
            self.pool.with_page_mut(first + i, |data| {
                data[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            });
        }
    }

    fn read_run(&self, first: u64, pages: u32, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for i in 0..pages as u64 {
            let lo = (i as usize) * PAGE_SIZE;
            if lo >= len {
                break;
            }
            let hi = len.min(lo + PAGE_SIZE);
            self.pool.with_page(first + i, |data| {
                out[lo..hi].copy_from_slice(&data[..hi - lo]);
            });
        }
        out
    }
}

impl ColdStore for VersionPager {
    fn put(&self, key: Key, ts: Timestamp, row: &Row) -> bool {
        let id = (key.0, ts.0);
        let bytes = encode_row(row);
        let mut inner = self.inner.lock();
        if inner.index.contains_key(&id) {
            return true;
        }
        let len = bytes.len();
        let loc = if len >= PAGE_SIZE {
            let pages = len.div_ceil(PAGE_SIZE) as u32;
            // Reuse a freed run of the exact size before growing the file.
            let reuse = inner
                .free_runs
                .iter()
                .position(|&(_, n)| n == pages)
                .map(|i| inner.free_runs.swap_remove(i).0);
            let first = reuse.unwrap_or_else(|| self.disk.alloc(pages as u64));
            self.write_run(first, pages, &bytes);
            Loc::Run {
                first,
                pages,
                len: len as u32,
            }
        } else {
            let (page, used) = match inner.open_page {
                Some((page, used)) if used + len <= PAGE_SIZE => (page, used),
                _ => (self.disk.alloc(1), 0),
            };
            self.pool.with_page_mut(page, |data| {
                data[used..used + len].copy_from_slice(&bytes);
            });
            inner.open_page = Some((page, used + len));
            Loc::Packed {
                page,
                offset: used as u32,
                len: len as u32,
            }
        };
        inner.index.insert(id, loc);
        inner.spilled_bytes += len as u64;
        true
    }

    fn get(&self, key: Key, ts: Timestamp) -> Option<Row> {
        let loc = *self.inner.lock().index.get(&(key.0, ts.0))?;
        let bytes = match loc {
            Loc::Packed { page, offset, len } => self.pool.with_page(page, |data| {
                data[offset as usize..(offset + len) as usize].to_vec()
            }),
            Loc::Run { first, pages, len } => self.read_run(first, pages, len as usize),
        };
        decode_row(&bytes)
    }

    fn evict(&self, key: Key, ts: Timestamp) {
        let mut inner = self.inner.lock();
        if let Some(loc) = inner.index.remove(&(key.0, ts.0)) {
            match loc {
                Loc::Packed { len, .. } => inner.spilled_bytes -= len as u64,
                Loc::Run { first, pages, len } => {
                    inner.spilled_bytes -= len as u64;
                    inner.free_runs.push((first, pages));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn row(tag: &str) -> Row {
        Row::new().with(Attr(0), tag).with(Attr(5), "shared")
    }

    #[test]
    fn row_codec_roundtrips() {
        let r = row("value with spaces");
        assert_eq!(decode_row(&encode_row(&r)).unwrap(), r);
        assert_eq!(decode_row(&encode_row(&Row::new())).unwrap(), Row::new());
        assert!(decode_row(&[1, 2, 3]).is_none());
    }

    #[test]
    fn pool_evicts_with_write_back_and_rereads() {
        let dir = TempDir::new("pool-evict");
        let disk = Arc::new(DiskManager::open(&dir.path().join("pages.db")).unwrap());
        let pool = BufferPool::new(Arc::clone(&disk), 2);
        for page in 0..4u64 {
            disk.alloc(1);
            pool.with_page_mut(page, |data| data[0] = page as u8 + 10);
        }
        let stats = pool.stats();
        assert!(stats.evictions >= 2, "4 pages through 2 frames must evict");
        assert!(stats.write_backs >= 2, "dirty victims are written back");
        // Re-reading evicted pages must see the written bytes.
        for page in 0..4u64 {
            assert_eq!(pool.with_page(page, |data| data[0]), page as u8 + 10);
        }
        assert!(pool.stats().hits + pool.stats().misses >= 8);
    }

    #[test]
    fn pager_roundtrips_under_frame_pressure() {
        let dir = TempDir::new("pager-pressure");
        let pager = VersionPager::open(&dir.path().join("pages.db"), 2).unwrap();
        // Records big enough that 64 of them span many pages: with only
        // 2 frames, reads must cycle through the eviction path.
        let pad = "p".repeat(500);
        for i in 0..64u64 {
            let tag = format!("v{i}-{pad}");
            assert!(pager.put(Key(i % 8), Timestamp(i), &row(&tag)));
        }
        assert_eq!(pager.spilled_versions(), 64);
        for i in 0..64u64 {
            let got = pager.get(Key(i % 8), Timestamp(i)).unwrap();
            assert_eq!(got.get(Attr(0)), Some(format!("v{i}-{pad}").as_str()));
        }
        assert!(pager.pool_stats().evictions > 0);
    }

    #[test]
    fn large_records_span_pages() {
        let dir = TempDir::new("pager-large");
        let pager = VersionPager::open(&dir.path().join("pages.db"), 3).unwrap();
        let big = "x".repeat(3 * PAGE_SIZE);
        let r = Row::new().with(Attr(1), big.as_str());
        assert!(pager.put(Key(1), Timestamp(1), &r));
        assert_eq!(pager.get(Key(1), Timestamp(1)).unwrap(), r);
        // Evict then reuse the freed run for an equally large record.
        pager.evict(Key(1), Timestamp(1));
        assert!(pager.get(Key(1), Timestamp(1)).is_none());
        let pages_before = pager.disk.pages();
        assert!(pager.put(Key(2), Timestamp(2), &r));
        assert_eq!(pager.disk.pages(), pages_before, "freed run is reused");
    }

    #[test]
    fn reset_forgets_everything() {
        let dir = TempDir::new("pager-reset");
        let pager = VersionPager::open(&dir.path().join("pages.db"), 2).unwrap();
        pager.put(Key(1), Timestamp(1), &row("a"));
        pager.reset();
        assert_eq!(pager.spilled_versions(), 0);
        assert!(pager.get(Key(1), Timestamp(1)).is_none());
        assert_eq!(pager.spilled_bytes(), 0);
    }
}
