//! CRC-framed record layout shared by WAL segments and snapshot files.
//!
//! Every durable record is wrapped in a fixed 8-byte header followed by the
//! payload:
//!
//! ```text
//! [ len: u32 LE ][ crc32(payload): u32 LE ][ payload bytes ... ]
//! ```
//!
//! The CRC is the standard IEEE-802.3 polynomial (the table is derived at
//! compile time — the build environment has no registry access, so no
//! external crc crate). A reader walks frames front to back; the first
//! frame whose header is incomplete, whose payload is shorter than its
//! declared length, or whose checksum mismatches terminates the scan as
//! [`FrameRead::Torn`]. That single rule is what makes a crash mid-append
//! recoverable: everything before the torn frame is intact by checksum,
//! everything at and after it is discarded.

/// Bytes of frame header preceding each payload.
pub const FRAME_HEADER: usize = 8;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append one framed record to `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of reading the frame starting at a byte offset.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A complete, checksum-verified frame; `next` is the offset of the
    /// following frame.
    Frame {
        /// The verified payload bytes.
        payload: &'a [u8],
        /// Offset of the next frame.
        next: usize,
    },
    /// Clean end of data (offset exactly at the end).
    End,
    /// A torn or corrupt frame: short header, short payload, or checksum
    /// mismatch. Nothing at or beyond this offset is trustworthy.
    Torn,
}

/// Read the frame at `at` in `data`.
pub fn read_frame(data: &[u8], at: usize) -> FrameRead<'_> {
    if at >= data.len() {
        return FrameRead::End;
    }
    if data.len() - at < FRAME_HEADER {
        return FrameRead::Torn;
    }
    let len = u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]) as usize;
    let crc = u32::from_le_bytes([data[at + 4], data[at + 5], data[at + 6], data[at + 7]]);
    let start = at + FRAME_HEADER;
    if data.len() - start < len {
        return FrameRead::Torn;
    }
    let payload = &data[start..start + len];
    if crc32(payload) != crc {
        return FrameRead::Torn;
    }
    FrameRead::Frame {
        payload,
        next: start + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(data: &[u8]) -> (Vec<Vec<u8>>, bool) {
        let mut out = Vec::new();
        let mut at = 0;
        loop {
            match read_frame(data, at) {
                FrameRead::Frame { payload, next } => {
                    out.push(payload.to_vec());
                    at = next;
                }
                FrameRead::End => return (out, false),
                FrameRead::Torn => return (out, true),
            }
        }
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"alpha");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"beta gamma");
        let (got, torn) = frames(&buf);
        assert!(!torn);
        assert_eq!(
            got,
            vec![b"alpha".to_vec(), b"".to_vec(), b"beta gamma".to_vec()]
        );
    }

    #[test]
    fn short_header_is_torn() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"ok");
        buf.extend_from_slice(&[1, 2, 3]); // 3 stray bytes: not even a header
        let (got, torn) = frames(&buf);
        assert!(torn);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn short_payload_is_torn() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"ok");
        let mut partial = Vec::new();
        append_frame(&mut partial, b"truncated record");
        buf.extend_from_slice(&partial[..partial.len() - 4]);
        let (got, torn) = frames(&buf);
        assert!(torn);
        assert_eq!(got, vec![b"ok".to_vec()]);
    }

    #[test]
    fn checksum_mismatch_is_torn() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        let flip = buf.len() - 1; // corrupt the last payload byte
        append_frame(&mut buf, b"second");
        buf[flip] ^= 0x40;
        let (got, torn) = frames(&buf);
        assert!(torn);
        assert!(got.is_empty());
    }

    #[test]
    fn crc_reference_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
