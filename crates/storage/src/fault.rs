//! Typed storage errors and deterministic disk-fault injection.
//!
//! The chaos harness needs disks that fail on purpose: a crash can tear the
//! final WAL frame, a file can come back short, and `fsync` can report an
//! error. Each shows up here as a typed value — no `panic!`, no stringly
//! `io::Error` guessing — so the recovery paths can be tested the same way
//! the network paths are.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A typed failure from the storage plane.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// What was being attempted (`open`, `write`, `rename`, ...).
        op: &'static str,
        /// File the operation targeted.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// `fsync` failed — the records covered by this sync MUST NOT be
    /// acknowledged (they may or may not be on disk).
    SyncFailed {
        /// File whose sync failed.
        path: String,
        /// True when the failure came from [`FaultPlan`] injection rather
        /// than the operating system.
        injected: bool,
    },
    /// A file's contents failed structural validation (bad frame, bad
    /// record encoding) somewhere replay cannot tolerate.
    Corrupt {
        /// File that failed validation.
        path: String,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, path, detail } => {
                write!(f, "storage i/o failure: {op} {path}: {detail}")
            }
            StorageError::SyncFailed { path, injected } => {
                let how = if *injected { "injected" } else { "os" };
                write!(f, "fsync failed ({how}) on {path}: records not durable")
            }
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt storage file {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    pub(crate) fn io(op: &'static str, path: &Path, err: std::io::Error) -> StorageError {
        StorageError::Io {
            op,
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }
}

/// Deterministic fault schedule for one storage instance.
///
/// Faults are armed by tests and the chaos harness; the storage plane
/// consumes them at well-defined points (currently: sync). The plan is
/// plain counters — no randomness — so failures land at exactly the chosen
/// operations.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    fail_syncs: u32,
    injected_sync_failures: u64,
}

impl FaultPlan {
    /// Arm the next `n` sync calls to fail with [`StorageError::SyncFailed`].
    pub fn fail_next_syncs(&mut self, n: u32) {
        self.fail_syncs += n;
    }

    /// Number of syncs failed by injection so far.
    pub fn injected_sync_failures(&self) -> u64 {
        self.injected_sync_failures
    }

    /// Consume one armed sync failure, if any.
    pub(crate) fn take_sync_failure(&mut self) -> bool {
        if self.fail_syncs > 0 {
            self.fail_syncs -= 1;
            self.injected_sync_failures += 1;
            true
        } else {
            false
        }
    }
}

/// Append a torn (incomplete) frame to `path`: a header promising a 64-byte
/// payload followed by a few garbage bytes, exactly what a crash mid-append
/// leaves behind. Replay must stop cleanly at this point.
pub fn tear_tail(path: &Path) -> Result<(), StorageError> {
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| StorageError::io("open", path, e))?;
    let mut junk = Vec::new();
    junk.extend_from_slice(&64u32.to_le_bytes());
    junk.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    junk.extend_from_slice(&[0xA5, 0x5A, 0x7E, 0x81, 0x3C]);
    file.write_all(&junk)
        .map_err(|e| StorageError::io("write", path, e))
}

/// Truncate `drop` bytes off the end of `path`, simulating a short read of
/// the final record (e.g. a sector that never made it to the platter).
pub fn shorten_tail(path: &Path, drop: u64) -> Result<(), StorageError> {
    let len = std::fs::metadata(path)
        .map_err(|e| StorageError::io("stat", path, e))?
        .len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io("open", path, e))?;
    file.set_len(len.saturating_sub(drop))
        .map_err(|e| StorageError::io("truncate", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_counts_down() {
        let mut plan = FaultPlan::default();
        plan.fail_next_syncs(2);
        assert!(plan.take_sync_failure());
        assert!(plan.take_sync_failure());
        assert!(!plan.take_sync_failure());
        assert_eq!(plan.injected_sync_failures(), 2);
    }

    #[test]
    fn errors_render_their_shape() {
        let e = StorageError::SyncFailed {
            path: "wal-000001.seg".into(),
            injected: true,
        };
        assert!(e.to_string().contains("injected"));
        let e = StorageError::Corrupt {
            path: "snap-g0.snap".into(),
            detail: "bad frame".into(),
        };
        assert!(e.to_string().contains("snap-g0.snap"));
    }
}
