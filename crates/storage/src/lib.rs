//! # storage — the durable storage plane
//!
//! Everything below the replication protocol that touches a disk lives
//! here. The crate gives each datacenter a [`DcStorage`] handle bundling:
//!
//! * a segmented, CRC-framed **write-ahead log** ([`wal`]) through which
//!   acceptor promises, votes and decided log entries become durable
//!   *before* they are acknowledged (persist-before-ack), with batched
//!   group-commit fsync;
//! * **per-group snapshots** ([`snapshot`]) written atomically, which
//!   together with whole-segment WAL truncation bound recovery time and
//!   disk usage — truncation never crosses an open read lease's position
//!   or the MVCC version floor (the caller computes floors from the GC
//!   watermark, which already encodes both);
//! * a **buffer-pooled page store** ([`pool`]) that accepts cold MVCC
//!   versions evicted by `mvkv`, so the hot working set stays in a fixed
//!   number of frames while history spills to disk;
//! * **typed disk faults** ([`fault`]): torn tails, short reads and fsync
//!   failures as first-class, injectable outcomes.
//!
//! The whole plane is optional: [`StorageConfig::InMemory`] (the default)
//! keeps the original purely in-memory behavior, which is what unit tests
//! and most simulations run. [`StorageConfig::Durable`] points at a
//! directory and turns every knob on.
//!
//! This mirrors the Spinnaker design (Rao et al., VLDB 2011) the paper's
//! availability story assumes underneath message-level replication: a
//! replica recovers from local log + snapshot first, then catches up from
//! its peers through the ordinary install path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod frame;
pub mod pool;
pub mod snapshot;
#[cfg(test)]
mod testutil;
pub mod wal;

pub use fault::{FaultPlan, StorageError};
pub use pool::{BufferPool, DiskManager, PoolStats, VersionPager, PAGE_SIZE};
pub use snapshot::{GroupSnapshot, SnapshotRow, SnapshotStore};
pub use wal::{Wal, WalRecord, WalReplay};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use walog::{GroupId, LogPosition};

/// Whether (and how) a datacenter persists its state.
#[derive(Clone, Debug, Default)]
pub enum StorageConfig {
    /// No disk: state lives and dies with the process (the seed behavior).
    #[default]
    InMemory,
    /// Full durability under a directory.
    Durable(DurableConfig),
}

impl StorageConfig {
    /// True when a disk directory is configured.
    pub fn is_durable(&self) -> bool {
        matches!(self, StorageConfig::Durable(_))
    }
}

/// Knobs for the durable plane.
#[derive(Clone, Debug)]
pub struct DurableConfig {
    /// Root directory for this cluster's storage; each datacenter gets a
    /// `dc<replica>` subdirectory.
    pub dir: PathBuf,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Decided entries between per-group snapshots (0 disables snapshots
    /// and therefore WAL truncation).
    pub snapshot_every: u64,
    /// Buffer-pool frames for the cold-version pager.
    pub pool_frames: usize,
    /// Newest versions per key kept hot in `mvkv` (older ones spill to the
    /// pager); the latest version always stays hot.
    pub hot_keep: usize,
}

impl DurableConfig {
    /// Defaults tuned for the simulation workloads: 256 KiB segments,
    /// a snapshot every 32 decided entries, 64 pool frames, 2 hot
    /// versions per key.
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            segment_bytes: 256 * 1024,
            snapshot_every: 32,
            pool_frames: 64,
            hot_keep: 2,
        }
    }
}

/// Counters exposed by a [`DcStorage`] handle.
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageStats {
    /// WAL records made durable.
    pub records_synced: u64,
    /// `fsync` calls issued (group commit: one may cover many records).
    pub syncs: u64,
    /// Sync calls that failed (injected or real); the covered records were
    /// not acknowledged.
    pub sync_failures: u64,
    /// Snapshots written.
    pub snapshots_written: u64,
    /// WAL segments deleted by truncation.
    pub segments_truncated: u64,
    /// WAL segments currently on disk.
    pub segments_on_disk: usize,
    /// Snapshot files that failed validation on the last restart read.
    pub corrupt_snapshots: u64,
}

/// Everything read off disk when a datacenter restarts.
#[derive(Debug)]
pub struct RestartData {
    /// Latest readable snapshot per group.
    pub snapshots: Vec<GroupSnapshot>,
    /// WAL replay: every durable record, in order, up to the first bad
    /// frame.
    pub replay: WalReplay,
    /// Snapshot files skipped as corrupt.
    pub corrupt_snapshots: usize,
}

fn wal_dir(cfg: &DurableConfig) -> PathBuf {
    cfg.dir.join("wal")
}

fn snap_dir(cfg: &DurableConfig) -> PathBuf {
    cfg.dir.join("snapshots")
}

fn pages_path(cfg: &DurableConfig) -> PathBuf {
    cfg.dir.join("pages.db")
}

/// One datacenter's durable storage: WAL + snapshots + cold-version pager.
#[derive(Debug)]
pub struct DcStorage {
    cfg: DurableConfig,
    wal: Wal,
    snaps: SnapshotStore,
    pager: Arc<VersionPager>,
    last_snapshot: BTreeMap<GroupId, LogPosition>,
    sync_failures: u64,
    snapshots_written: u64,
    segments_truncated: u64,
    corrupt_snapshots: u64,
}

impl DcStorage {
    /// Open (creating or re-opening) the storage under `cfg.dir`. Reopening
    /// after a crash repairs a torn WAL tail and starts a fresh segment;
    /// the cold-version page file is always reset (it is a cache of state
    /// reachable from snapshot + WAL).
    pub fn open(cfg: DurableConfig) -> Result<DcStorage, StorageError> {
        let wal = Wal::open(&wal_dir(&cfg), cfg.segment_bytes)?;
        let snaps = SnapshotStore::open(&snap_dir(&cfg))?;
        let pager = VersionPager::open(&pages_path(&cfg), cfg.pool_frames)?;
        let (existing, corrupt) = snaps.load_all()?;
        let last_snapshot = existing
            .into_iter()
            .map(|s| (s.group, s.position))
            .collect();
        Ok(DcStorage {
            cfg,
            wal,
            snaps,
            pager,
            last_snapshot,
            sync_failures: 0,
            snapshots_written: 0,
            segments_truncated: 0,
            corrupt_snapshots: corrupt as u64,
        })
    }

    /// Read snapshots + WAL for a restart, without opening a live handle.
    /// Call before [`DcStorage::open`] so the torn-tail flag of the crashed
    /// run is observed (open repairs the tail).
    pub fn read_for_restart(cfg: &DurableConfig) -> Result<RestartData, StorageError> {
        let snaps = SnapshotStore::open(&snap_dir(cfg))?;
        let (snapshots, corrupt_snapshots) = snaps.load_all()?;
        let replay = wal::replay(&wal_dir(cfg))?;
        Ok(RestartData {
            snapshots,
            replay,
            corrupt_snapshots,
        })
    }

    /// The configuration this handle was opened with.
    pub fn config(&self) -> &DurableConfig {
        &self.cfg
    }

    /// The cold-version pager (shareable with `MvKvStore::set_cold_store`).
    pub fn pager(&self) -> Arc<VersionPager> {
        Arc::clone(&self.pager)
    }

    /// Buffer one WAL record for the next sync (group commit).
    pub fn append(&mut self, record: &WalRecord) {
        self.wal.append(record);
    }

    /// Group commit every buffered record. `false` means the records are
    /// NOT durable and must not be acknowledged.
    pub fn sync(&mut self) -> bool {
        match self.wal.sync() {
            Ok(_) => true,
            Err(_) => {
                self.sync_failures += 1;
                false
            }
        }
    }

    /// Append one record and sync immediately; `false` on sync failure.
    pub fn log(&mut self, record: &WalRecord) -> bool {
        self.append(record);
        self.sync()
    }

    /// True when the group's decided prefix has advanced far enough past
    /// the last snapshot to warrant a new one.
    pub fn snapshot_due(&self, group: GroupId, prefix: LogPosition) -> bool {
        if self.cfg.snapshot_every == 0 {
            return false;
        }
        let last = self
            .last_snapshot
            .get(&group)
            .copied()
            .unwrap_or(LogPosition::ZERO);
        prefix.0 >= last.0 + self.cfg.snapshot_every
    }

    /// Atomically write the group's snapshot.
    pub fn save_snapshot(&mut self, snap: &GroupSnapshot) -> Result<(), StorageError> {
        self.snaps.save(snap)?;
        self.last_snapshot.insert(snap.group, snap.position);
        self.snapshots_written += 1;
        Ok(())
    }

    /// Last snapshot position recorded for `group`.
    pub fn last_snapshot(&self, group: GroupId) -> LogPosition {
        self.last_snapshot
            .get(&group)
            .copied()
            .unwrap_or(LogPosition::ZERO)
    }

    /// Delete sealed WAL segments fully below the per-group floors.
    pub fn truncate_wal(&mut self, floors: &BTreeMap<GroupId, LogPosition>) -> usize {
        match self.wal.truncate_below(floors) {
            Ok(n) => {
                self.segments_truncated += n as u64;
                n
            }
            Err(_) => 0,
        }
    }

    /// Simulate a crash mid-append: leave a torn partial frame at the tail
    /// of the active segment.
    pub fn inject_torn_tail(&mut self) {
        let _ = self.wal.inject_torn_tail();
    }

    /// Fault-injection plan for the WAL.
    pub fn fault_mut(&mut self) -> &mut FaultPlan {
        self.wal.fault_mut()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            records_synced: self.wal.records_synced(),
            syncs: self.wal.syncs(),
            sync_failures: self.sync_failures,
            snapshots_written: self.snapshots_written,
            segments_truncated: self.segments_truncated,
            segments_on_disk: self.wal.segment_count(),
            corrupt_snapshots: self.corrupt_snapshots,
        }
    }
}

/// Create a fresh scratch directory for durable-mode runs, derived from
/// the process id and a monotonic counter (no wall clock — runs stay
/// deterministic). The caller owns cleanup.
pub fn scratch_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("paxos-cp-{label}-{}-{n}", std::process::id()));
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Remove a scratch directory created by [`scratch_dir`]. Refuses paths
/// outside the system temp root.
pub fn remove_scratch_dir(path: &Path) {
    if path.starts_with(std::env::temp_dir()) {
        let _ = std::fs::remove_dir_all(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use walog::{AttrId, ItemRef, KeyId, LogEntry, Transaction, TxnId};

    fn decided(g: u32, p: u64) -> WalRecord {
        let txn = Transaction::builder(TxnId::new(9, p), GroupId(g), LogPosition::ZERO)
            .write(ItemRef::new(KeyId(0), AttrId(0)), "x")
            .build();
        WalRecord::Decided {
            group: GroupId(g),
            position: LogPosition(p),
            entry: Arc::new(LogEntry::single(txn)),
        }
    }

    fn temp_cfg(label: &str) -> DurableConfig {
        DurableConfig::new(scratch_dir(label))
    }

    #[test]
    fn open_log_restart_cycle() {
        let cfg = temp_cfg("dc-cycle");
        {
            let mut dc = DcStorage::open(cfg.clone()).unwrap();
            assert!(dc.log(&decided(0, 1)));
            assert!(dc.log(&decided(0, 2)));
            dc.inject_torn_tail();
        }
        let data = DcStorage::read_for_restart(&cfg).unwrap();
        assert!(data.replay.torn_tail, "injected tear must be observed");
        assert_eq!(data.replay.records.len(), 2);
        assert!(data.snapshots.is_empty());
        // Reopen repairs; a second restart read is clean.
        let dc = DcStorage::open(cfg.clone()).unwrap();
        drop(dc);
        let data = DcStorage::read_for_restart(&cfg).unwrap();
        assert!(!data.replay.torn_tail);
        assert_eq!(data.replay.records.len(), 2);
        remove_scratch_dir(&cfg.dir);
    }

    #[test]
    fn snapshot_cadence_and_truncation() {
        let mut cfg = temp_cfg("dc-snap");
        cfg.snapshot_every = 4;
        cfg.segment_bytes = 64; // force rotation nearly every record
        let mut dc = DcStorage::open(cfg.clone()).unwrap();
        for p in 1..=4 {
            assert!(dc.log(&decided(0, p)));
        }
        assert!(dc.snapshot_due(GroupId(0), LogPosition(4)));
        assert!(!dc.snapshot_due(GroupId(1), LogPosition(3)));
        dc.save_snapshot(&GroupSnapshot {
            group: GroupId(0),
            position: LogPosition(4),
            log_base: LogPosition(4),
            committed: vec![],
            rows: vec![],
        })
        .unwrap();
        assert!(!dc.snapshot_due(GroupId(0), LogPosition(6)));
        let mut floors = BTreeMap::new();
        floors.insert(GroupId(0), LogPosition(5));
        assert!(dc.truncate_wal(&floors) > 0);
        let stats = dc.stats();
        assert_eq!(stats.snapshots_written, 1);
        assert!(stats.segments_truncated > 0);
        // Restart sees the snapshot and only the surviving WAL tail.
        drop(dc);
        let data = DcStorage::read_for_restart(&cfg).unwrap();
        assert_eq!(data.snapshots.len(), 1);
        assert_eq!(data.snapshots[0].position, LogPosition(4));
        // A reopened handle remembers the snapshot position.
        let dc = DcStorage::open(cfg.clone()).unwrap();
        assert_eq!(dc.last_snapshot(GroupId(0)), LogPosition(4));
        remove_scratch_dir(&cfg.dir);
    }

    #[test]
    fn sync_failure_counts_and_blocks_ack() {
        let cfg = temp_cfg("dc-syncfail");
        let mut dc = DcStorage::open(cfg.clone()).unwrap();
        dc.fault_mut().fail_next_syncs(1);
        assert!(!dc.log(&decided(0, 1)), "failed sync must refuse the ack");
        assert_eq!(dc.stats().sync_failures, 1);
        // Retry succeeds and persists the buffered record.
        assert!(dc.sync());
        drop(dc);
        let data = DcStorage::read_for_restart(&cfg).unwrap();
        assert_eq!(data.replay.records.len(), 1);
        remove_scratch_dir(&cfg.dir);
    }
}
