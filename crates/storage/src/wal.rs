//! Segmented write-ahead log with group-commit sync and tolerant replay.
//!
//! One WAL per datacenter records every durable acceptor event as a
//! CRC-framed record (see [`crate::frame`]) in append-only segment files
//! `wal-NNNNNN.seg`. Three record kinds cover the protocol:
//!
//! * [`WalRecord::Promise`] — the acceptor raised its promised ballot for a
//!   position (must be durable before the `PrepareReply` is sent);
//! * [`WalRecord::Vote`] — the acceptor accepted a value (durable before
//!   the `AcceptReply`);
//! * [`WalRecord::Decided`] — a decided log entry was installed locally.
//!
//! Appends buffer in memory; [`Wal::sync`] writes the whole buffer with one
//! `write` + `fsync` pair — the group commit that keeps persist-before-ack
//! off the per-message critical path when a batch of records lands
//! together (e.g. a catch-up install of many decided entries).
//!
//! On reopen after a crash the final segment may end in a torn frame.
//! [`Wal::open`] repairs it — truncating the last segment at the first bad
//! frame — and then always starts a fresh segment, so a bad frame can only
//! ever exist at the tail of the final segment written before a crash.
//! [`replay`] stops cleanly at the first bad frame and reports it.
//!
//! Truncation is whole-segment: a sealed segment is deletable once every
//! group that has records in it has its truncation floor strictly above
//! the segment's highest recorded position for that group.

use crate::fault::{FaultPlan, StorageError};
use crate::frame::{append_frame, read_frame, FrameRead};
use paxos::Ballot;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use walog::{GroupId, LogEntry, LogPosition};

/// One durable acceptor event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Promise made in phase 1: never answer a lower ballot again.
    Promise {
        /// Transaction group.
        group: GroupId,
        /// Log position the promise covers.
        position: LogPosition,
        /// The promised ballot.
        ballot: Ballot,
    },
    /// Vote cast in phase 2 for a concrete value.
    Vote {
        /// Transaction group.
        group: GroupId,
        /// Log position voted on.
        position: LogPosition,
        /// Ballot of the vote.
        ballot: Ballot,
        /// The value voted for.
        entry: Arc<LogEntry>,
    },
    /// A decided entry installed into the local replica of the group log.
    Decided {
        /// Transaction group.
        group: GroupId,
        /// Decided log position.
        position: LogPosition,
        /// The decided value.
        entry: Arc<LogEntry>,
    },
}

impl WalRecord {
    /// The transaction group this record belongs to.
    pub fn group(&self) -> GroupId {
        match self {
            WalRecord::Promise { group, .. }
            | WalRecord::Vote { group, .. }
            | WalRecord::Decided { group, .. } => *group,
        }
    }

    /// The log position this record covers.
    pub fn position(&self) -> LogPosition {
        match self {
            WalRecord::Promise { position, .. }
            | WalRecord::Vote { position, .. }
            | WalRecord::Decided { position, .. } => *position,
        }
    }

    /// Encode as the frame payload: an ASCII record reusing the
    /// [`LogEntry`] codec for values and [`Ballot::encode`] for ballots.
    pub fn encode(&self) -> Vec<u8> {
        let text = match self {
            WalRecord::Promise {
                group,
                position,
                ballot,
            } => format!("P {} {} {}", group.0, position.0, ballot.encode()),
            WalRecord::Vote {
                group,
                position,
                ballot,
                entry,
            } => {
                let e = entry.encode();
                format!(
                    "V {} {} {} {}:{}",
                    group.0,
                    position.0,
                    ballot.encode(),
                    e.len(),
                    e
                )
            }
            WalRecord::Decided {
                group,
                position,
                entry,
            } => {
                let e = entry.encode();
                format!("D {} {} {}:{}", group.0, position.0, e.len(), e)
            }
        };
        text.into_bytes()
    }

    /// Decode a frame payload; `None` for malformed input.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let text = std::str::from_utf8(payload).ok()?;
        let (tag, rest) = text.split_once(' ')?;
        let mut cur = Cursor(rest);
        let group = GroupId(cur.num()? as u32);
        let position = LogPosition(cur.num()?);
        match tag {
            "P" => {
                let ballot = Ballot::decode(cur.rest())?;
                Some(WalRecord::Promise {
                    group,
                    position,
                    ballot,
                })
            }
            "V" => {
                let ballot = Ballot::decode(cur.word()?)?;
                let entry = LogEntry::decode(cur.sized()?)?;
                Some(WalRecord::Vote {
                    group,
                    position,
                    ballot,
                    entry: Arc::new(entry),
                })
            }
            "D" => {
                let entry = LogEntry::decode(cur.sized()?)?;
                Some(WalRecord::Decided {
                    group,
                    position,
                    entry: Arc::new(entry),
                })
            }
            _ => None,
        }
    }
}

/// Minimal space-separated field reader for the record codec.
struct Cursor<'a>(&'a str);

impl<'a> Cursor<'a> {
    fn word(&mut self) -> Option<&'a str> {
        let s = self.0;
        match s.split_once(' ') {
            Some((w, rest)) => {
                self.0 = rest;
                Some(w)
            }
            None if !s.is_empty() => {
                self.0 = "";
                Some(s)
            }
            None => None,
        }
    }

    fn num(&mut self) -> Option<u64> {
        self.word()?.parse().ok()
    }

    /// A `len:bytes` field (the bytes may contain spaces).
    fn sized(&mut self) -> Option<&'a str> {
        let (len, rest) = self.0.split_once(':')?;
        let len: usize = len.parse().ok()?;
        let bytes = rest.get(..len)?;
        self.0 = &rest[len..];
        Some(bytes)
    }

    fn rest(&self) -> &'a str {
        self.0
    }
}

/// Result of replaying a WAL directory.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// All records recovered, in append order.
    pub records: Vec<WalRecord>,
    /// True when replay stopped at a torn or corrupt frame (everything
    /// before it was recovered; nothing after it was trusted).
    pub torn_tail: bool,
    /// Segments scanned.
    pub segments: usize,
}

/// Per-segment index: the highest position recorded per group, used to
/// decide when a sealed segment can be deleted.
type SegmentIndex = BTreeMap<GroupId, LogPosition>;

/// The per-datacenter write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    active: std::fs::File,
    active_seq: u64,
    active_len: u64,
    pending: Vec<u8>,
    pending_count: u64,
    pending_max: SegmentIndex,
    index: BTreeMap<u64, SegmentIndex>,
    fault: FaultPlan,
    records_synced: u64,
    syncs: u64,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.seg"))
}

fn segment_seqs(dir: &Path) -> Result<Vec<u64>, StorageError> {
    let mut seqs = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| StorageError::io("readdir", dir, e))? {
        let entry = entry.map_err(|e| StorageError::io("readdir", dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        {
            if let Ok(seq) = stem.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Scan one segment file: decoded records plus the byte offset of the
/// first bad frame, if any.
fn scan_segment(path: &Path) -> Result<(Vec<WalRecord>, Option<usize>), StorageError> {
    let data = std::fs::read(path).map_err(|e| StorageError::io("read", path, e))?;
    let mut records = Vec::new();
    let mut at = 0;
    loop {
        match read_frame(&data, at) {
            FrameRead::Frame { payload, next } => match WalRecord::decode(payload) {
                Some(rec) => {
                    records.push(rec);
                    at = next;
                }
                // A checksummed frame that fails to decode is treated like
                // a torn frame: stop trusting the file at this offset.
                None => return Ok((records, Some(at))),
            },
            FrameRead::End => return Ok((records, None)),
            FrameRead::Torn => return Ok((records, Some(at))),
        }
    }
}

/// Replay every segment under `dir` in order, stopping cleanly at the
/// first bad frame.
pub fn replay(dir: &Path) -> Result<WalReplay, StorageError> {
    let mut out = WalReplay::default();
    if !dir.is_dir() {
        return Ok(out);
    }
    for seq in segment_seqs(dir)? {
        out.segments += 1;
        let (records, bad) = scan_segment(&segment_path(dir, seq))?;
        out.records.extend(records);
        if bad.is_some() {
            out.torn_tail = true;
            break;
        }
    }
    Ok(out)
}

impl Wal {
    /// Open the WAL under `dir`, repairing a torn tail on the final
    /// existing segment and starting a fresh active segment.
    pub fn open(dir: &Path, segment_bytes: u64) -> Result<Wal, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io("mkdir", dir, e))?;
        let seqs = segment_seqs(dir)?;
        let mut index = BTreeMap::new();
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(dir, seq);
            let (records, bad) = scan_segment(&path)?;
            if let Some(offset) = bad {
                if i + 1 == seqs.len() {
                    // Crash tore the tail of the final segment: truncate the
                    // damage so later replays see only whole frames.
                    let file = std::fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| StorageError::io("open", &path, e))?;
                    file.set_len(offset as u64)
                        .map_err(|e| StorageError::io("truncate", &path, e))?;
                } else {
                    return Err(StorageError::Corrupt {
                        path: path.display().to_string(),
                        detail: format!("bad frame at offset {offset} in a sealed segment"),
                    });
                }
            }
            let mut seg_index = SegmentIndex::new();
            for rec in &records {
                let slot = seg_index.entry(rec.group()).or_insert(LogPosition::ZERO);
                *slot = (*slot).max(rec.position());
            }
            index.insert(seq, seg_index);
        }
        let active_seq = seqs.last().map_or(1, |last| last + 1);
        let path = segment_path(dir, active_seq);
        let active = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StorageError::io("open", &path, e))?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            segment_bytes,
            active,
            active_seq,
            active_len: 0,
            pending: Vec::new(),
            pending_count: 0,
            pending_max: SegmentIndex::new(),
            index,
            fault: FaultPlan::default(),
            records_synced: 0,
            syncs: 0,
        })
    }

    /// Buffer one record for the next [`Wal::sync`].
    pub fn append(&mut self, record: &WalRecord) {
        append_frame(&mut self.pending, &record.encode());
        self.pending_count += 1;
        let slot = self
            .pending_max
            .entry(record.group())
            .or_insert(LogPosition::ZERO);
        *slot = (*slot).max(record.position());
    }

    /// Group commit: write every buffered record and `fsync` once. Returns
    /// the number of records made durable. On failure the buffer is kept —
    /// the records are not durable and MUST NOT be acknowledged, but a
    /// later successful sync may still persist them.
    pub fn sync(&mut self) -> Result<u64, StorageError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let path = segment_path(&self.dir, self.active_seq);
        if self.fault.take_sync_failure() {
            return Err(StorageError::SyncFailed {
                path: path.display().to_string(),
                injected: true,
            });
        }
        self.active
            .write_all(&self.pending)
            .map_err(|e| StorageError::io("write", &path, e))?;
        self.active
            .sync_data()
            .map_err(|_| StorageError::SyncFailed {
                path: path.display().to_string(),
                injected: false,
            })?;
        self.active_len += self.pending.len() as u64;
        let count = self.pending_count;
        self.records_synced += count;
        self.syncs += 1;
        let seg_index = self.index.entry(self.active_seq).or_default();
        for (group, pos) in std::mem::take(&mut self.pending_max) {
            let slot = seg_index.entry(group).or_insert(LogPosition::ZERO);
            *slot = (*slot).max(pos);
        }
        self.pending.clear();
        self.pending_count = 0;
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(count)
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        self.active_seq += 1;
        let path = segment_path(&self.dir, self.active_seq);
        self.active = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StorageError::io("open", &path, e))?;
        self.active_len = 0;
        Ok(())
    }

    /// Delete every sealed segment whose records all fall strictly below
    /// the per-group truncation floors. A segment containing a group with
    /// no floor entry is never deleted. Returns segments removed.
    pub fn truncate_below(
        &mut self,
        floors: &BTreeMap<GroupId, LogPosition>,
    ) -> Result<usize, StorageError> {
        let sealed: Vec<u64> = self
            .index
            .keys()
            .copied()
            .filter(|&seq| seq < self.active_seq)
            .collect();
        let mut removed = 0;
        for seq in sealed {
            let deletable = self.index[&seq]
                .iter()
                .all(|(group, max)| floors.get(group).is_some_and(|floor| *max < *floor));
            if !deletable {
                continue;
            }
            let path = segment_path(&self.dir, seq);
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StorageError::io("remove", &path, e)),
            }
            self.index.remove(&seq);
            removed += 1;
        }
        Ok(removed)
    }

    /// Append a torn partial frame to the active segment, as a crash
    /// mid-append would. The torn bytes are below any unsynced buffered
    /// records, so nothing durable is lost.
    pub fn inject_torn_tail(&mut self) -> Result<(), StorageError> {
        // No rotation: the tear must sit at the tail of the final segment,
        // exactly where a real crash leaves it, so the next open can
        // repair it. The handle is assumed dead after this call (the
        // simulated machine crashed).
        let path = segment_path(&self.dir, self.active_seq);
        crate::fault::tear_tail(&path)
    }

    /// Mutable access to the fault-injection plan.
    pub fn fault_mut(&mut self) -> &mut FaultPlan {
        &mut self.fault
    }

    /// Directory holding the segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the active segment.
    pub fn active_segment(&self) -> u64 {
        self.active_seq
    }

    /// Total records made durable over this handle's lifetime.
    pub fn records_synced(&self) -> u64 {
        self.records_synced
    }

    /// Number of `fsync` calls issued (each may cover many records).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Number of segments currently on disk (sealed + active).
    pub fn segment_count(&self) -> usize {
        // The active segment may not be in the index yet (no sync).
        self.index.len() + usize::from(!self.index.contains_key(&self.active_seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use walog::{AttrId, ItemRef, KeyId, Transaction, TxnId};

    fn entry(seq: u64) -> Arc<LogEntry> {
        let txn = Transaction::builder(TxnId::new(7, seq), GroupId(0), LogPosition::ZERO)
            .write(ItemRef::new(KeyId(1), AttrId(2)), format!("v{seq}"))
            .build();
        Arc::new(LogEntry::single(txn))
    }

    fn promise(g: u32, p: u64, round: u64) -> WalRecord {
        WalRecord::Promise {
            group: GroupId(g),
            position: LogPosition(p),
            ballot: Ballot { round, proposer: 3 },
        }
    }

    fn decided(g: u32, p: u64) -> WalRecord {
        WalRecord::Decided {
            group: GroupId(g),
            position: LogPosition(p),
            entry: entry(p),
        }
    }

    #[test]
    fn record_codec_roundtrips() {
        let records = vec![
            promise(2, 9, 4),
            WalRecord::Vote {
                group: GroupId(1),
                position: LogPosition(5),
                ballot: Ballot {
                    round: 0,
                    proposer: 2,
                },
                entry: entry(11),
            },
            decided(0, 1),
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
        assert!(WalRecord::decode(b"X 1 2").is_none());
        assert!(WalRecord::decode(b"P 1").is_none());
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let dir = TempDir::new("wal-roundtrip");
        let mut wal = Wal::open(dir.path(), 1 << 20).unwrap();
        wal.append(&promise(0, 1, 1));
        wal.append(&decided(0, 1));
        assert_eq!(wal.sync().unwrap(), 2);
        wal.append(&decided(1, 1));
        assert_eq!(wal.sync().unwrap(), 1);
        assert_eq!(wal.syncs(), 2);
        let replayed = replay(dir.path()).unwrap();
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.records.len(), 3);
        assert_eq!(replayed.records[0], promise(0, 1, 1));
    }

    #[test]
    fn unsynced_records_are_not_replayed() {
        let dir = TempDir::new("wal-unsynced");
        let mut wal = Wal::open(dir.path(), 1 << 20).unwrap();
        wal.append(&decided(0, 1));
        wal.sync().unwrap();
        wal.append(&decided(0, 2)); // never synced
        let replayed = replay(dir.path()).unwrap();
        assert_eq!(replayed.records.len(), 1);
    }

    #[test]
    fn segments_rotate_at_the_size_threshold() {
        let dir = TempDir::new("wal-rotate");
        let mut wal = Wal::open(dir.path(), 64).unwrap();
        for p in 1..=8 {
            wal.append(&decided(0, p));
            wal.sync().unwrap();
        }
        assert!(wal.active_segment() > 1, "small segments must rotate");
        let replayed = replay(dir.path()).unwrap();
        assert_eq!(replayed.records.len(), 8);
        assert!(replayed.segments > 1);
    }

    #[test]
    fn replay_stops_cleanly_at_a_torn_tail() {
        let dir = TempDir::new("wal-torn");
        let mut wal = Wal::open(dir.path(), 1 << 20).unwrap();
        wal.append(&decided(0, 1));
        wal.append(&decided(0, 2));
        wal.sync().unwrap();
        crate::fault::tear_tail(&segment_path(dir.path(), wal.active_segment())).unwrap();
        let replayed = replay(dir.path()).unwrap();
        assert!(replayed.torn_tail);
        assert_eq!(replayed.records.len(), 2, "records above the tear survive");
    }

    #[test]
    fn replay_stops_cleanly_at_a_short_read() {
        let dir = TempDir::new("wal-short");
        let mut wal = Wal::open(dir.path(), 1 << 20).unwrap();
        wal.append(&decided(0, 1));
        wal.append(&decided(0, 2));
        wal.sync().unwrap();
        // Drop the final few bytes: the last frame comes back short.
        crate::fault::shorten_tail(&segment_path(dir.path(), wal.active_segment()), 3).unwrap();
        let replayed = replay(dir.path()).unwrap();
        assert!(replayed.torn_tail);
        assert_eq!(replayed.records.len(), 1);
    }

    #[test]
    fn reopen_repairs_the_torn_tail() {
        let dir = TempDir::new("wal-repair");
        {
            let mut wal = Wal::open(dir.path(), 1 << 20).unwrap();
            wal.append(&decided(0, 1));
            wal.sync().unwrap();
            wal.inject_torn_tail().unwrap();
        }
        // Reopen: the torn bytes are truncated away and a fresh segment
        // starts, so a second replay is clean.
        let wal = Wal::open(dir.path(), 1 << 20).unwrap();
        let replayed = replay(dir.path()).unwrap();
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.records.len(), 1);
        drop(wal);
    }

    #[test]
    fn injected_sync_failure_is_typed_and_recoverable() {
        let dir = TempDir::new("wal-syncfail");
        let mut wal = Wal::open(dir.path(), 1 << 20).unwrap();
        wal.append(&decided(0, 1));
        wal.fault_mut().fail_next_syncs(1);
        match wal.sync() {
            Err(StorageError::SyncFailed { injected: true, .. }) => {}
            other => panic!("expected injected SyncFailed, got {other:?}"),
        }
        // The record stayed buffered; the next sync persists it.
        assert_eq!(wal.sync().unwrap(), 1);
        assert_eq!(replay(dir.path()).unwrap().records.len(), 1);
    }

    #[test]
    fn truncation_deletes_only_fully_covered_sealed_segments() {
        let dir = TempDir::new("wal-trunc");
        let mut wal = Wal::open(dir.path(), 32).unwrap();
        for p in 1..=6 {
            wal.append(&decided(0, p));
            wal.sync().unwrap(); // tiny segments: one record each
        }
        let before = segment_seqs(dir.path()).unwrap().len();
        let mut floors = BTreeMap::new();
        floors.insert(GroupId(0), LogPosition(4));
        let removed = wal.truncate_below(&floors).unwrap();
        assert!(removed >= 1, "segments below the floor are deleted");
        assert!(segment_seqs(dir.path()).unwrap().len() < before);
        let replayed = replay(dir.path()).unwrap();
        assert!(replayed.records.iter().all(|r| r.position().0 >= 4));
        // A group with no floor pins its segments.
        wal.append(&decided(1, 1));
        wal.sync().unwrap();
        wal.append(&decided(0, 9));
        wal.sync().unwrap();
        let mut only_g0 = BTreeMap::new();
        only_g0.insert(GroupId(0), LogPosition(100));
        wal.truncate_below(&only_g0).unwrap();
        let replayed = replay(dir.path()).unwrap();
        assert!(
            replayed.records.iter().any(|r| r.group() == GroupId(1)),
            "segment holding group 1 must survive"
        );
    }
}
