//! Wire messages of the commit protocol (Figure 3 of the paper).
//!
//! Groups travel as `Copy` interned ids and decided values as shared
//! `Arc<LogEntry>`s: broadcasting an accept/apply to every replica clones a
//! pointer per recipient, never the transactions inside.

use crate::ballot::Ballot;
use std::sync::Arc;
use walog::{GroupId, LogEntry, LogPosition};

/// Index of a replica (datacenter) in `0..num_replicas`. The embedding layer
/// maps replica ids to concrete transport addresses.
pub type ReplicaId = usize;

/// Messages exchanged between a Transaction Client (proposer) and the
/// Transaction Services (acceptors) for a single log position's instance.
#[derive(Clone, Debug, PartialEq)]
pub enum PaxosMsg {
    /// Step 1: the client asks every replica to promise not to accept lower
    /// ballots for this position.
    Prepare {
        /// Transaction group whose log is being appended to.
        group: GroupId,
        /// Log position the instance decides.
        position: LogPosition,
        /// The client's proposal number.
        ballot: Ballot,
    },
    /// Step 2: a replica's answer to a prepare — its "last vote".
    PrepareReply {
        /// Transaction group.
        group: GroupId,
        /// Log position.
        position: LogPosition,
        /// Ballot this reply answers (echo of the prepare).
        ballot: Ballot,
        /// True when the promise was made; false when a higher ballot was
        /// already promised (the reply still reports that higher ballot so
        /// the client can pick a larger one next time).
        promised: bool,
        /// The highest ballot this replica has promised so far.
        next_bal: Option<Ballot>,
        /// The vote already cast for this position, if any: the ballot at
        /// which the replica accepted, and the accepted value.
        last_vote: Option<(Ballot, Arc<LogEntry>)>,
    },
    /// Step 3: the client asks replicas to accept a concrete value.
    Accept {
        /// Transaction group.
        group: GroupId,
        /// Log position.
        position: LogPosition,
        /// The client's proposal number (must match the replica's promise).
        ballot: Ballot,
        /// Proposed value: one transaction (basic Paxos) or an ordered list
        /// (Paxos-CP combination), or a no-op (recovery).
        value: Arc<LogEntry>,
    },
    /// Step 4: a replica's answer to an accept.
    AcceptReply {
        /// Transaction group.
        group: GroupId,
        /// Log position.
        position: LogPosition,
        /// Ballot this reply answers.
        ballot: Ballot,
        /// Whether the vote was cast.
        accepted: bool,
    },
    /// Step 5: the decided value is pushed to every replica for installation
    /// in its write-ahead log.
    Apply {
        /// Transaction group.
        group: GroupId,
        /// Log position.
        position: LogPosition,
        /// Ballot under which the value was chosen.
        ballot: Ballot,
        /// The decided value.
        value: Arc<LogEntry>,
    },
    /// Leader fast path: ask the leader of this position whether this client
    /// is the first to start the commit protocol for it (§4.1).
    LeaderClaim {
        /// Transaction group.
        group: GroupId,
        /// Log position.
        position: LogPosition,
    },
    /// Leader fast path answer.
    LeaderClaimReply {
        /// Transaction group.
        group: GroupId,
        /// Log position.
        position: LogPosition,
        /// True when the asking client was first and may skip the prepare
        /// phase, proposing directly with the round-0 fast ballot.
        granted: bool,
    },
}

impl PaxosMsg {
    /// The log position this message concerns.
    pub fn position(&self) -> LogPosition {
        match self {
            PaxosMsg::Prepare { position, .. }
            | PaxosMsg::PrepareReply { position, .. }
            | PaxosMsg::Accept { position, .. }
            | PaxosMsg::AcceptReply { position, .. }
            | PaxosMsg::Apply { position, .. }
            | PaxosMsg::LeaderClaim { position, .. }
            | PaxosMsg::LeaderClaimReply { position, .. } => *position,
        }
    }

    /// The transaction group this message concerns.
    pub fn group(&self) -> GroupId {
        match self {
            PaxosMsg::Prepare { group, .. }
            | PaxosMsg::PrepareReply { group, .. }
            | PaxosMsg::Accept { group, .. }
            | PaxosMsg::AcceptReply { group, .. }
            | PaxosMsg::Apply { group, .. }
            | PaxosMsg::LeaderClaim { group, .. }
            | PaxosMsg::LeaderClaimReply { group, .. } => *group,
        }
    }

    /// Short tag for logging/statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            PaxosMsg::Prepare { .. } => "prepare",
            PaxosMsg::PrepareReply { .. } => "prepare_reply",
            PaxosMsg::Accept { .. } => "accept",
            PaxosMsg::AcceptReply { .. } => "accept_reply",
            PaxosMsg::Apply { .. } => "apply",
            PaxosMsg::LeaderClaim { .. } => "leader_claim",
            PaxosMsg::LeaderClaimReply { .. } => "leader_claim_reply",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let g = GroupId(0);
        let msgs = vec![
            PaxosMsg::Prepare {
                group: g,
                position: LogPosition(3),
                ballot: Ballot::initial(1),
            },
            PaxosMsg::PrepareReply {
                group: g,
                position: LogPosition(3),
                ballot: Ballot::initial(1),
                promised: true,
                next_bal: None,
                last_vote: None,
            },
            PaxosMsg::Accept {
                group: g,
                position: LogPosition(3),
                ballot: Ballot::initial(1),
                value: Arc::new(LogEntry::noop()),
            },
            PaxosMsg::AcceptReply {
                group: g,
                position: LogPosition(3),
                ballot: Ballot::initial(1),
                accepted: true,
            },
            PaxosMsg::Apply {
                group: g,
                position: LogPosition(3),
                ballot: Ballot::initial(1),
                value: Arc::new(LogEntry::noop()),
            },
            PaxosMsg::LeaderClaim {
                group: g,
                position: LogPosition(3),
            },
            PaxosMsg::LeaderClaimReply {
                group: g,
                position: LogPosition(3),
                granted: false,
            },
        ];
        let kinds: Vec<_> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), 7);
        for m in &msgs {
            assert_eq!(m.position(), LogPosition(3));
            assert_eq!(m.group(), g);
        }
    }

    #[test]
    fn cloning_an_accept_shares_the_entry() {
        let value = Arc::new(LogEntry::noop());
        let msg = PaxosMsg::Accept {
            group: GroupId(0),
            position: LogPosition(1),
            ballot: Ballot::initial(1),
            value: Arc::clone(&value),
        };
        let copy = msg.clone();
        match (&msg, &copy) {
            (PaxosMsg::Accept { value: a, .. }, PaxosMsg::Accept { value: b, .. }) => {
                assert!(Arc::ptr_eq(a, b), "clone must share, not deep-copy");
            }
            _ => unreachable!(),
        }
    }
}
