//! Value selection for the accept phase: `findWinningVal` (basic Paxos) and
//! `enhancedFindWinningVal` (Paxos-CP), Algorithm 2 lines 66–87.

use crate::ballot::Ballot;
use crate::msg::ReplicaId;
use walog::combine::best_combination;
use walog::{LogEntry, Transaction};

/// One replica's answer collected during the prepare phase.
#[derive(Clone, Debug, PartialEq)]
pub struct Vote {
    /// The replica that answered.
    pub from: ReplicaId,
    /// Whether it promised this ballot.
    pub promised: bool,
    /// Its last cast vote for the position, if any.
    pub last_vote: Option<(Ballot, LogEntry)>,
}

/// What the proposer should do next, as decided by the value-selection rule.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueChoice {
    /// Send `accept` messages carrying this value.
    Propose(LogEntry),
    /// Another value already has a majority of votes: stop competing for
    /// this position (do not send accepts) and consider promotion. The
    /// carried entry is the value observed to have won.
    Promote {
        /// The entry that has already gathered a majority of votes.
        decided: LogEntry,
    },
}

/// `findWinningVal` (Algorithm 2, lines 66–75): the proposer must adopt the
/// vote with the highest proposal number; only when every response carries a
/// null vote may it propose its own value.
pub fn find_winning_val(votes: &[Vote], own: &LogEntry) -> LogEntry {
    votes
        .iter()
        .filter_map(|v| v.last_vote.as_ref())
        .max_by_key(|(ballot, _)| *ballot)
        .map(|(_, value)| value.clone())
        .unwrap_or_else(|| own.clone())
}

/// `enhancedFindWinningVal` (Algorithm 2, lines 76–87): decide between
/// *combination*, *promotion*, and the basic rule.
///
/// * If no value can possibly have gathered a majority of votes yet
///   (`maxVotes + (D − |responseSet|) < majority`), the proposer is free to
///   choose — it proposes the longest valid combination of its own
///   transaction with the transactions seen in other votes.
/// * If some value already has a majority of votes and the proposer's
///   transaction is not part of it, the position is lost: promote.
/// * Otherwise fall back to the basic rule.
pub fn enhanced_find_winning_val(
    votes: &[Vote],
    own_txn: &Transaction,
    num_replicas: usize,
    combination_enabled: bool,
) -> ValueChoice {
    let own_entry = LogEntry::single(own_txn.clone());
    let majority = num_replicas / 2 + 1;
    let responses = votes.len();

    // Count votes per distinct value (non-null votes only).
    let mut tallies: Vec<(&LogEntry, usize)> = Vec::new();
    for vote in votes {
        if let Some((_, value)) = &vote.last_vote {
            match tallies.iter_mut().find(|(v, _)| *v == value) {
                Some((_, count)) => *count += 1,
                None => tallies.push((value, 1)),
            }
        }
    }
    let (max_val, max_votes) = tallies
        .iter()
        .max_by_key(|(_, count)| *count)
        .map(|(v, c)| (Some(*v), *c))
        .unwrap_or((None, 0));

    let missing = num_replicas.saturating_sub(responses);

    if max_votes + missing < majority {
        // No value can have a majority: safe to choose freely, so combine.
        if !combination_enabled {
            return ValueChoice::Propose(find_winning_val(votes, &own_entry));
        }
        let candidates: Vec<Transaction> = votes
            .iter()
            .filter_map(|v| v.last_vote.as_ref())
            .flat_map(|(_, entry)| entry.transactions().iter().cloned())
            .collect();
        let combined = best_combination(own_txn, &candidates);
        return ValueChoice::Propose(LogEntry::combined(combined));
    }

    if max_votes >= majority {
        let decided = max_val.expect("max_votes > 0 implies a value").clone();
        if !decided.contains(own_txn.id) {
            return ValueChoice::Promote { decided };
        }
        // Our transaction is already part of the winning value: push it
        // through with the basic rule (which will select that same value).
        return ValueChoice::Propose(find_winning_val(votes, &own_entry));
    }

    ValueChoice::Propose(find_winning_val(votes, &own_entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use walog::{ItemRef, LogPosition, TxnId};

    fn txn(client: u32, seq: u64, reads: &[&str], writes: &[&str]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(client, seq), "g", LogPosition(0));
        for r in reads {
            b = b.read(ItemRef::new("row", *r), Some("v"));
        }
        for w in writes {
            b = b.write(ItemRef::new("row", *w), "x");
        }
        b.build()
    }

    fn vote(from: ReplicaId, last: Option<(Ballot, LogEntry)>) -> Vote {
        Vote {
            from,
            promised: true,
            last_vote: last,
        }
    }

    fn ballot(round: u64) -> Ballot {
        Ballot { round, proposer: 1 }
    }

    #[test]
    fn find_winning_val_prefers_highest_ballot_vote() {
        let own = LogEntry::single(txn(0, 1, &[], &["own"]));
        let low = LogEntry::single(txn(1, 2, &[], &["low"]));
        let high = LogEntry::single(txn(2, 3, &[], &["high"]));
        let votes = vec![
            vote(0, None),
            vote(1, Some((ballot(1), low))),
            vote(2, Some((ballot(5), high.clone()))),
        ];
        assert_eq!(find_winning_val(&votes, &own), high);
        // All-null votes: own value.
        let votes = vec![vote(0, None), vote(1, None)];
        assert_eq!(find_winning_val(&votes, &own), own);
    }

    #[test]
    fn enhanced_combines_when_no_majority_possible() {
        // D = 3, majority = 2. Two responses, each with a different non-null
        // vote (1 vote each): maxVotes + missing = 1 + 1 = 2, NOT < 2, so the
        // combine window is closed. With all-null votes it is open.
        let own = txn(0, 1, &["a"], &["a"]);
        let other = LogEntry::single(txn(1, 2, &["b"], &["b"]));
        let votes = vec![vote(0, None), vote(1, None), vote(2, None)];
        match enhanced_find_winning_val(&votes, &own, 3, true) {
            ValueChoice::Propose(entry) => {
                assert_eq!(entry.len(), 1);
                assert!(entry.contains(own.id));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Full response set with one minority vote: 1 + 0 < 2 → combine own
        // with the other transaction.
        let votes = vec![
            vote(0, None),
            vote(1, None),
            vote(2, Some((ballot(1), other))),
        ];
        match enhanced_find_winning_val(&votes, &own, 3, true) {
            ValueChoice::Propose(entry) => {
                assert_eq!(entry.len(), 2, "combination should pack both transactions");
                assert!(entry.contains(own.id));
                assert!(entry.contains(TxnId::new(1, 2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enhanced_respects_combination_switch() {
        let own = txn(0, 1, &["a"], &["a"]);
        let other = LogEntry::single(txn(1, 2, &["b"], &["b"]));
        let votes = vec![
            vote(0, None),
            vote(1, None),
            vote(2, Some((ballot(1), other.clone()))),
        ];
        match enhanced_find_winning_val(&votes, &own, 3, false) {
            // With combination disabled the basic rule applies: adopt the
            // highest-ballot non-null vote.
            ValueChoice::Propose(entry) => assert_eq!(entry, other),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enhanced_promotes_when_other_value_has_majority() {
        let own = txn(0, 1, &["a"], &["a"]);
        let winner = LogEntry::single(txn(1, 2, &[], &["b"]));
        let votes = vec![
            vote(0, Some((ballot(2), winner.clone()))),
            vote(1, Some((ballot(2), winner.clone()))),
            vote(2, None),
        ];
        match enhanced_find_winning_val(&votes, &own, 3, true) {
            ValueChoice::Promote { decided } => assert_eq!(decided, winner),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enhanced_does_not_promote_when_own_is_in_winning_value() {
        let own = txn(0, 1, &["a"], &["a"]);
        let winner = LogEntry::combined(vec![txn(1, 2, &[], &["b"]), own.clone()]);
        let votes = vec![
            vote(0, Some((ballot(2), winner.clone()))),
            vote(1, Some((ballot(2), winner.clone()))),
        ];
        match enhanced_find_winning_val(&votes, &own, 3, true) {
            ValueChoice::Propose(entry) => assert_eq!(entry, winner),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enhanced_falls_back_to_basic_rule_in_the_uncertain_window() {
        // D = 5, majority = 3. Three responses, one vote for X: maxVotes +
        // missing = 1 + 2 = 3, not < 3 and not >= majority in responses, so
        // the basic rule applies and X (the only non-null vote) is adopted.
        let own = txn(0, 1, &["a"], &["a"]);
        let x = LogEntry::single(txn(1, 2, &[], &["x"]));
        let votes = vec![
            vote(0, None),
            vote(1, None),
            vote(2, Some((ballot(4), x.clone()))),
        ];
        match enhanced_find_winning_val(&votes, &own, 5, true) {
            ValueChoice::Propose(entry) => assert_eq!(entry, x),
            other => panic!("unexpected {other:?}"),
        }
    }
}
