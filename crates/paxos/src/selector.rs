//! Value selection for the accept phase: `findWinningVal` (basic Paxos) and
//! `enhancedFindWinningVal` (Paxos-CP), Algorithm 2 lines 66–87.
//!
//! Votes carry `Arc<LogEntry>`s, so adopting a previously voted value —
//! the common contended case — is a pointer clone, and the conflict test
//! behind promotion is an integer-set lookup against the entry's cached
//! packed write set.

use crate::ballot::Ballot;
use crate::msg::ReplicaId;
use std::sync::Arc;
use walog::combine::{best_combination, can_append};
use walog::{LogEntry, Transaction};

/// One replica's answer collected during the prepare phase.
#[derive(Clone, Debug, PartialEq)]
pub struct Vote {
    /// The replica that answered.
    pub from: ReplicaId,
    /// Whether it promised this ballot.
    pub promised: bool,
    /// Its last cast vote for the position, if any.
    pub last_vote: Option<(Ballot, Arc<LogEntry>)>,
}

/// What the proposer should do next, as decided by the value-selection rule.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueChoice {
    /// Send `accept` messages carrying this value.
    Propose(Arc<LogEntry>),
    /// Another value already has a majority of votes: stop competing for
    /// this position (do not send accepts) and consider promotion. The
    /// carried entry is the value observed to have won.
    Promote {
        /// The entry that has already gathered a majority of votes.
        decided: Arc<LogEntry>,
    },
}

/// `findWinningVal` (Algorithm 2, lines 66–75): the proposer must adopt the
/// vote with the highest proposal number; only when every response carries a
/// null vote may it propose its own value.
pub fn find_winning_val(votes: &[Vote], own: &Arc<LogEntry>) -> Arc<LogEntry> {
    votes
        .iter()
        .filter_map(|v| v.last_vote.as_ref())
        .max_by_key(|(ballot, _)| *ballot)
        .map(|(_, value)| Arc::clone(value))
        .unwrap_or_else(|| Arc::clone(own))
}

/// `enhancedFindWinningVal` (Algorithm 2, lines 76–87): decide between
/// *combination*, *promotion*, and the basic rule.
///
/// * If no value can possibly have gathered a majority of votes yet
///   (`maxVotes + (D − |responseSet|) < majority`), the proposer is free to
///   choose — it proposes the longest valid combination of its own
///   transaction with the transactions seen in other votes.
/// * If some value already has a majority of votes and the proposer's
///   transaction is not part of it, the position is lost: promote.
/// * Otherwise fall back to the basic rule.
///
/// `own_entry` is the proposer's cached single-transaction entry for
/// `own_txn` (kept by the caller so repeated rounds never rebuild it).
pub fn enhanced_find_winning_val(
    votes: &[Vote],
    own_txn: &Transaction,
    own_entry: &Arc<LogEntry>,
    num_replicas: usize,
    combination_enabled: bool,
) -> ValueChoice {
    enhanced_find_winning_val_batch(
        votes,
        std::slice::from_ref(own_txn),
        own_entry,
        num_replicas,
        combination_enabled,
        false,
    )
}

/// Batch-aware `enhancedFindWinningVal`: the proposer's value is an ordered
/// list of one *or more* mutually compatible transactions (a client-side
/// batch, see [`walog::combine::partition_compatible`]) cached in
/// `own_entry`.
///
/// The decision rules are the same as [`enhanced_find_winning_val`]; the
/// generalizations are:
///
/// * *combination* greedily appends vote-carried transactions to the whole
///   batch (each appended transaction must not read an item written by any
///   batch member or earlier appendee);
/// * *promotion* triggers when some value has a majority of votes and it
///   does not contain **every** batch member — the caller then drops the
///   members the winner invalidates and promotes the survivors.
///
/// `speculative` marks a proposal for a *pipelined* log position: one or
/// more earlier positions are still undecided when the proposer chooses its
/// value (see the `mdstore` commit pipeline). A transaction whose read set
/// is non-empty could be invalidated by whatever wins those earlier
/// positions, so a speculative proposer must not adopt responsibility for
/// committing it: combination is restricted to candidates with empty read
/// sets (blind writes, which no earlier entry can invalidate). Adopting a
/// previously voted value is unrestricted — that is mandated by the Paxos
/// safety rule and the value's serializability remains the obligation of
/// the proposer that first chose it for the position.
pub fn enhanced_find_winning_val_batch(
    votes: &[Vote],
    own_txns: &[Transaction],
    own_entry: &Arc<LogEntry>,
    num_replicas: usize,
    combination_enabled: bool,
    speculative: bool,
) -> ValueChoice {
    debug_assert!(!own_txns.is_empty());
    debug_assert!(own_txns.iter().all(|t| own_entry.contains(t.id)));
    let majority = num_replicas / 2 + 1;
    let responses = votes.len();

    // Count votes per distinct value (non-null votes only).
    let mut tallies: Vec<(&Arc<LogEntry>, usize)> = Vec::new();
    for vote in votes {
        if let Some((_, value)) = &vote.last_vote {
            match tallies
                .iter_mut()
                .find(|(v, _)| Arc::ptr_eq(v, value) || ***v == **value)
            {
                Some((_, count)) => *count += 1,
                None => tallies.push((value, 1)),
            }
        }
    }
    let (max_val, max_votes) = tallies
        .iter()
        .max_by_key(|(_, count)| *count)
        .map(|(v, c)| (Some(*v), *c))
        .unwrap_or((None, 0));

    let missing = num_replicas.saturating_sub(responses);

    if max_votes + missing < majority {
        // No value can have a majority: safe to choose freely, so combine.
        if !combination_enabled {
            return ValueChoice::Propose(find_winning_val(votes, own_entry));
        }
        let candidates: Vec<Transaction> = votes
            .iter()
            .filter_map(|v| v.last_vote.as_ref())
            .flat_map(|(_, entry)| entry.transactions().iter().cloned())
            .filter(|t| !speculative || t.reads().is_empty())
            .collect();
        if candidates.is_empty() {
            // Nothing to combine with: propose the cached own entry as-is.
            return ValueChoice::Propose(Arc::clone(own_entry));
        }
        let combined = if own_txns.len() == 1 {
            best_combination(&own_txns[0], &candidates)
        } else {
            // Batch: keep every member (they are already a valid ordered
            // combination) and greedily append each distinct candidate that
            // still fits.
            let mut list = own_txns.to_vec();
            for cand in candidates {
                if list.iter().all(|t| t.id != cand.id) && can_append(&list, &cand) {
                    list.push(cand);
                }
            }
            list
        };
        if combined.len() == own_txns.len() {
            return ValueChoice::Propose(Arc::clone(own_entry));
        }
        return ValueChoice::Propose(Arc::new(LogEntry::combined(combined)));
    }

    if max_votes >= majority {
        let decided = Arc::clone(max_val.expect("max_votes > 0 implies a value"));
        if !own_txns.iter().all(|t| decided.contains(t.id)) {
            return ValueChoice::Promote { decided };
        }
        // Our transaction is already part of the winning value: push it
        // through with the basic rule (which will select that same value).
        return ValueChoice::Propose(find_winning_val(votes, own_entry));
    }

    ValueChoice::Propose(find_winning_val(votes, own_entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use walog::ident::{AttrId, GroupId, KeyId};
    use walog::{ItemRef, LogPosition, TxnId};

    fn item(a: u32) -> ItemRef {
        ItemRef::new(KeyId(0), AttrId(a))
    }

    fn txn(client: u32, seq: u64, reads: &[u32], writes: &[u32]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(client, seq), GroupId(0), LogPosition(0));
        for r in reads {
            b = b.read(item(*r), Some("v"));
        }
        for w in writes {
            b = b.write(item(*w), "x");
        }
        b.build()
    }

    fn entry(txn: Transaction) -> Arc<LogEntry> {
        Arc::new(LogEntry::single(txn))
    }

    fn vote(from: ReplicaId, last: Option<(Ballot, Arc<LogEntry>)>) -> Vote {
        Vote {
            from,
            promised: true,
            last_vote: last,
        }
    }

    fn ballot(round: u64) -> Ballot {
        Ballot { round, proposer: 1 }
    }

    #[test]
    fn find_winning_val_prefers_highest_ballot_vote() {
        let own = entry(txn(0, 1, &[], &[10]));
        let low = entry(txn(1, 2, &[], &[11]));
        let high = entry(txn(2, 3, &[], &[12]));
        let votes = vec![
            vote(0, None),
            vote(1, Some((ballot(1), low))),
            vote(2, Some((ballot(5), Arc::clone(&high)))),
        ];
        assert!(Arc::ptr_eq(&find_winning_val(&votes, &own), &high));
        // All-null votes: own value.
        let votes = vec![vote(0, None), vote(1, None)];
        assert!(Arc::ptr_eq(&find_winning_val(&votes, &own), &own));
    }

    #[test]
    fn enhanced_combines_when_no_majority_possible() {
        // D = 3, majority = 2. Two responses, each with a different non-null
        // vote (1 vote each): maxVotes + missing = 1 + 1 = 2, NOT < 2, so the
        // combine window is closed. With all-null votes it is open.
        let own = txn(0, 1, &[0], &[0]);
        let own_entry = entry(own.clone());
        let other = entry(txn(1, 2, &[1], &[1]));
        let votes = vec![vote(0, None), vote(1, None), vote(2, None)];
        match enhanced_find_winning_val(&votes, &own, &own_entry, 3, true) {
            ValueChoice::Propose(e) => {
                assert_eq!(e.len(), 1);
                assert!(e.contains(own.id));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Full response set with one minority vote: 1 + 0 < 2 → combine own
        // with the other transaction.
        let votes = vec![
            vote(0, None),
            vote(1, None),
            vote(2, Some((ballot(1), other))),
        ];
        match enhanced_find_winning_val(&votes, &own, &own_entry, 3, true) {
            ValueChoice::Propose(e) => {
                assert_eq!(e.len(), 2, "combination should pack both transactions");
                assert!(e.contains(own.id));
                assert!(e.contains(TxnId::new(1, 2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enhanced_respects_combination_switch() {
        let own = txn(0, 1, &[0], &[0]);
        let own_entry = entry(own.clone());
        let other = entry(txn(1, 2, &[1], &[1]));
        let votes = vec![
            vote(0, None),
            vote(1, None),
            vote(2, Some((ballot(1), Arc::clone(&other)))),
        ];
        match enhanced_find_winning_val(&votes, &own, &own_entry, 3, false) {
            // With combination disabled the basic rule applies: adopt the
            // highest-ballot non-null vote.
            ValueChoice::Propose(e) => assert!(Arc::ptr_eq(&e, &other)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enhanced_promotes_when_other_value_has_majority() {
        let own = txn(0, 1, &[0], &[0]);
        let own_entry = entry(own.clone());
        let winner = entry(txn(1, 2, &[], &[1]));
        let votes = vec![
            vote(0, Some((ballot(2), Arc::clone(&winner)))),
            vote(1, Some((ballot(2), Arc::clone(&winner)))),
            vote(2, None),
        ];
        match enhanced_find_winning_val(&votes, &own, &own_entry, 3, true) {
            ValueChoice::Promote { decided } => assert!(Arc::ptr_eq(&decided, &winner)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn majority_is_recognized_across_distinct_allocations() {
        // The same decided value may arrive in different Arc allocations
        // (e.g. decoded from two acceptors' stores): the tally must count
        // them as one value.
        let own = txn(0, 1, &[0], &[0]);
        let own_entry = entry(own.clone());
        let winner_a = entry(txn(1, 2, &[], &[1]));
        let winner_b = entry(txn(1, 2, &[], &[1]));
        assert!(!Arc::ptr_eq(&winner_a, &winner_b));
        let votes = vec![
            vote(0, Some((ballot(2), winner_a))),
            vote(1, Some((ballot(2), winner_b))),
            vote(2, None),
        ];
        assert!(matches!(
            enhanced_find_winning_val(&votes, &own, &own_entry, 3, true),
            ValueChoice::Promote { .. }
        ));
    }

    #[test]
    fn enhanced_does_not_promote_when_own_is_in_winning_value() {
        let own = txn(0, 1, &[0], &[0]);
        let own_entry = entry(own.clone());
        let winner = Arc::new(LogEntry::combined(vec![txn(1, 2, &[], &[1]), own.clone()]));
        let votes = vec![
            vote(0, Some((ballot(2), Arc::clone(&winner)))),
            vote(1, Some((ballot(2), Arc::clone(&winner)))),
        ];
        match enhanced_find_winning_val(&votes, &own, &own_entry, 3, true) {
            ValueChoice::Propose(e) => assert!(Arc::ptr_eq(&e, &winner)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_combination_keeps_all_members_and_appends_candidates() {
        let members = vec![txn(0, 1, &[0], &[0]), txn(0, 2, &[1], &[1])];
        let own_entry = Arc::new(LogEntry::combined(members.clone()));
        // One minority vote carrying a disjoint transaction: the combine
        // window is open (1 + 0 < 2 with all three responses in).
        let other = entry(txn(1, 5, &[9], &[9]));
        let votes = vec![
            vote(0, None),
            vote(1, None),
            vote(2, Some((ballot(1), other))),
        ];
        match enhanced_find_winning_val_batch(&votes, &members, &own_entry, 3, true, false) {
            ValueChoice::Propose(e) => {
                assert_eq!(e.len(), 3);
                assert!(e.contains(TxnId::new(0, 1)));
                assert!(e.contains(TxnId::new(0, 2)));
                assert!(e.contains(TxnId::new(1, 5)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // A candidate that reads a batch member's write cannot be appended.
        let conflicting = entry(txn(1, 6, &[0], &[9]));
        let votes = vec![
            vote(0, None),
            vote(1, None),
            vote(2, Some((ballot(1), conflicting))),
        ];
        match enhanced_find_winning_val_batch(&votes, &members, &own_entry, 3, true, false) {
            ValueChoice::Propose(e) => assert!(Arc::ptr_eq(&e, &own_entry)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_promotes_unless_winner_contains_every_member() {
        let members = vec![txn(0, 1, &[0], &[0]), txn(0, 2, &[1], &[1])];
        let own_entry = Arc::new(LogEntry::combined(members.clone()));
        // Winner contains only the first member: promote (the second member
        // still needs a position).
        let partial = Arc::new(LogEntry::combined(vec![
            members[0].clone(),
            txn(1, 5, &[9], &[9]),
        ]));
        let votes = vec![
            vote(0, Some((ballot(2), Arc::clone(&partial)))),
            vote(1, Some((ballot(2), Arc::clone(&partial)))),
            vote(2, None),
        ];
        match enhanced_find_winning_val_batch(&votes, &members, &own_entry, 3, true, false) {
            ValueChoice::Promote { decided } => assert!(Arc::ptr_eq(&decided, &partial)),
            other => panic!("unexpected {other:?}"),
        }
        // Winner contains both members: push it through with the basic rule.
        let full = Arc::new(LogEntry::combined(members.clone()));
        let votes = vec![
            vote(0, Some((ballot(2), Arc::clone(&full)))),
            vote(1, Some((ballot(2), Arc::clone(&full)))),
        ];
        match enhanced_find_winning_val_batch(&votes, &members, &own_entry, 3, true, false) {
            ValueChoice::Propose(e) => assert!(Arc::ptr_eq(&e, &full)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn speculative_combination_only_accepts_blind_write_candidates() {
        // Two minority votes: one blind write, one reader. At a speculative
        // (pipelined) position only the blind write may be combined — the
        // reader's reads could be invalidated by a still-undecided earlier
        // position.
        let members = vec![txn(0, 1, &[], &[0])];
        let own_entry = Arc::new(LogEntry::combined(members.clone()));
        let blind = entry(txn(1, 5, &[], &[9]));
        let reader = entry(txn(2, 6, &[3], &[4]));
        let votes = vec![
            vote(0, None),
            vote(1, Some((ballot(1), blind))),
            vote(2, Some((ballot(1), reader))),
        ];
        match enhanced_find_winning_val_batch(&votes, &members, &own_entry, 3, true, true) {
            ValueChoice::Propose(e) => {
                assert_eq!(e.len(), 2);
                assert!(e.contains(TxnId::new(0, 1)));
                assert!(e.contains(TxnId::new(1, 5)), "blind write combines");
                assert!(!e.contains(TxnId::new(2, 6)), "reader must not ride");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The same votes at a non-speculative position combine all three.
        match enhanced_find_winning_val_batch(&votes, &members, &own_entry, 3, true, false) {
            ValueChoice::Propose(e) => assert_eq!(e.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enhanced_falls_back_to_basic_rule_in_the_uncertain_window() {
        // D = 5, majority = 3. Three responses, one vote for X: maxVotes +
        // missing = 1 + 2 = 3, not < 3 and not >= majority in responses, so
        // the basic rule applies and X (the only non-null vote) is adopted.
        let own = txn(0, 1, &[0], &[0]);
        let own_entry = entry(own.clone());
        let x = entry(txn(1, 2, &[], &[7]));
        let votes = vec![
            vote(0, None),
            vote(1, None),
            vote(2, Some((ballot(4), Arc::clone(&x)))),
        ];
        match enhanced_find_winning_val(&votes, &own, &own_entry, 5, true) {
            ValueChoice::Propose(e) => assert!(Arc::ptr_eq(&e, &x)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
