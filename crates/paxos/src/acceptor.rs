//! The acceptor role of the Transaction Service (Algorithm 1).
//!
//! The service is stateless: all Paxos state for a log position —
//! `⟨nextBal, ballotNumber, value⟩` — lives in the local key-value store and
//! is updated with `checkAndWrite`, so any service process in the
//! datacenter can handle any message. This module wraps an [`mvkv`] store
//! with exactly those reads and conditional writes.
//!
//! State rows live in a reserved region of the integer key space (top bit
//! set), so no interned application key can ever collide with protocol
//! metadata, and the row key for `(group, position)` is computed with two
//! shifts — no string formatting on the message-handling hot path. Vote
//! values are persisted with the compact [`LogEntry::encode`] codec.

use crate::ballot::Ballot;
use mvkv::{Attr, Key, MvKvStore, Row};
use std::sync::Arc;
use walog::{GroupId, LogEntry, LogPosition};

/// Reserved attribute ids for acceptor state rows (the paper's `nextBal`,
/// `ballotNumber` and `value` columns). These sit at the top of the
/// attribute space, above everything the interner will ever assign (see
/// `walog::ident::MAX_INTERNED`).
const ATTR_NEXT_BAL: Attr = Attr(u32::MAX);
const ATTR_VOTE_BAL: Attr = Attr(u32::MAX - 1);
const ATTR_VALUE: Attr = Attr(u32::MAX - 2);

/// Key-space layout for acceptor state rows: bit 63 flags protocol
/// metadata, bits 62..38 carry the group id, bits 37..0 the log position.
const PAXOS_KEY_FLAG: u64 = 1 << 63;
const GROUP_SHIFT: u32 = 38;
const MAX_STATE_GROUP: u64 = 1 << 25;
const MAX_STATE_POSITION: u64 = 1 << GROUP_SHIFT;

/// Outcome of handling a prepare message.
#[derive(Clone, Debug, PartialEq)]
pub struct PrepareOutcome {
    /// Whether the promise was made (the prepare's ballot exceeded the
    /// stored `nextBal`).
    pub promised: bool,
    /// The highest promised ballot after handling the message.
    pub next_bal: Option<Ballot>,
    /// The vote already cast for the position, if any.
    pub last_vote: Option<(Ballot, Arc<LogEntry>)>,
}

/// Stateless acceptor operating against a datacenter's key-value store.
///
/// Each `(group, position)` pair has its own state row; the row key embeds
/// both (in the reserved region of the key space) so Paxos metadata never
/// collides with application data.
pub struct AcceptorStore<'a> {
    store: &'a MvKvStore,
}

impl<'a> AcceptorStore<'a> {
    /// Wrap a datacenter's store.
    pub fn new(store: &'a MvKvStore) -> Self {
        AcceptorStore { store }
    }

    /// The row key holding the instance state for `(group, position)`.
    pub fn state_key(group: GroupId, position: LogPosition) -> Key {
        assert!(
            (group.0 as u64) < MAX_STATE_GROUP && position.0 < MAX_STATE_POSITION,
            "acceptor state key space exceeded: {group} at {position}"
        );
        Key(PAXOS_KEY_FLAG | ((group.0 as u64) << GROUP_SHIFT) | position.0)
    }

    fn read_state(
        &self,
        group: GroupId,
        position: LogPosition,
    ) -> (Option<Ballot>, Option<(Ballot, Arc<LogEntry>)>) {
        let key = Self::state_key(group, position);
        let Some(version) = self.store.read(key, None) else {
            return (None, None);
        };
        let next_bal = version.row.get(ATTR_NEXT_BAL).and_then(Ballot::decode);
        let vote = match (version.row.get(ATTR_VOTE_BAL), version.row.get(ATTR_VALUE)) {
            (Some(bal), Some(value)) => {
                Ballot::decode(bal).zip(LogEntry::decode(value).map(Arc::new))
            }
            _ => None,
        };
        (next_bal, vote)
    }

    /// Handle a `prepare` message (Algorithm 1, lines 3–15): promise not to
    /// accept ballots lower than `ballot` if it exceeds the current
    /// `nextBal`, and report the last vote either way.
    ///
    /// The compare-and-swap loop mirrors the pseudocode: the promise is only
    /// recorded if `nextBal` has not changed since it was read, otherwise
    /// the read is retried.
    pub fn handle_prepare(
        &self,
        group: GroupId,
        position: LogPosition,
        ballot: Ballot,
    ) -> PrepareOutcome {
        let key = Self::state_key(group, position);
        loop {
            let (next_bal, last_vote) = self.read_state(group, position);
            let exceeds = match next_bal {
                Some(current) => ballot > current,
                None => true,
            };
            if !exceeds {
                return PrepareOutcome {
                    promised: false,
                    next_bal,
                    last_vote,
                };
            }
            let applied = self
                .store
                .check_and_write(
                    key,
                    ATTR_NEXT_BAL,
                    next_bal.map(Ballot::encode).as_deref(),
                    Row::new().with(ATTR_NEXT_BAL, ballot.encode()),
                )
                .applied();
            if applied {
                return PrepareOutcome {
                    promised: true,
                    next_bal: Some(ballot),
                    last_vote,
                };
            }
            // nextBal changed under us (another service process of the same
            // datacenter raced); re-read and re-evaluate, exactly like the
            // `keepTrying` loop in the paper.
        }
    }

    /// Handle an `accept` message (Algorithm 1, lines 16–19): cast the vote
    /// iff `ballot` equals the most recent promise. A round-0 fast-path
    /// ballot is additionally allowed to be accepted when no promise has
    /// been made yet (the leader optimization skips the prepare phase).
    pub fn handle_accept(
        &self,
        group: GroupId,
        position: LogPosition,
        ballot: Ballot,
        value: &LogEntry,
    ) -> bool {
        let key = Self::state_key(group, position);
        let vote_row = Row::new()
            .with(ATTR_VOTE_BAL, ballot.encode())
            .with(ATTR_VALUE, value.encode())
            .with(ATTR_NEXT_BAL, ballot.encode());
        let (next_bal, _) = self.read_state(group, position);
        match next_bal {
            // Regular path: the accept's ballot must match the promise
            // recorded by the prepare phase.
            Some(current) if current == ballot => self
                .store
                .check_and_write(key, ATTR_NEXT_BAL, Some(&current.encode()), vote_row)
                .applied(),
            // Fast path: nothing promised yet and the proposer used the
            // reserved round-0 ballot granted by the position's leader.
            None if ballot.is_fast() => self
                .store
                .check_and_write(key, ATTR_NEXT_BAL, None, vote_row)
                .applied(),
            _ => false,
        }
    }

    /// Handle an `apply` message (Algorithm 1, lines 20–21): record the
    /// chosen value unconditionally. Returns the decided entry (shared, not
    /// copied) so the embedding service can install it in its write-ahead
    /// log.
    pub fn handle_apply(
        &self,
        group: GroupId,
        position: LogPosition,
        ballot: Ballot,
        value: &Arc<LogEntry>,
    ) -> Arc<LogEntry> {
        let key = Self::state_key(group, position);
        // Unconditional overwrite of the vote attributes, as in the paper.
        let _ = self.store.write(
            key,
            Row::new()
                .with(ATTR_VOTE_BAL, ballot.encode())
                .with(ATTR_VALUE, value.encode()),
            None,
        );
        Arc::clone(value)
    }

    /// Restart path: re-record a promise replayed from the write-ahead
    /// log. Replay is in append order, so an unconditional merge write
    /// reproduces exactly the state the compare-and-swap path built.
    pub fn restore_promise(&self, group: GroupId, position: LogPosition, ballot: Ballot) {
        let key = Self::state_key(group, position);
        let _ = self
            .store
            .write(key, Row::new().with(ATTR_NEXT_BAL, ballot.encode()), None);
    }

    /// Restart path: re-record a vote replayed from the write-ahead log.
    /// A vote also carries the implied promise (`nextBal = ballot`), just
    /// as [`AcceptorStore::handle_accept`] wrote it.
    pub fn restore_vote(
        &self,
        group: GroupId,
        position: LogPosition,
        ballot: Ballot,
        value: &LogEntry,
    ) {
        let key = Self::state_key(group, position);
        let _ = self.store.write(
            key,
            Row::new()
                .with(ATTR_VOTE_BAL, ballot.encode())
                .with(ATTR_VALUE, value.encode())
                .with(ATTR_NEXT_BAL, ballot.encode()),
            None,
        );
    }

    /// The vote currently recorded for `(group, position)`, if any — used by
    /// recovering services and by tests.
    pub fn current_vote(
        &self,
        group: GroupId,
        position: LogPosition,
    ) -> Option<(Ballot, Arc<LogEntry>)> {
        self.read_state(group, position).1
    }

    /// The highest promised ballot for `(group, position)`, if any.
    pub fn promised_ballot(&self, group: GroupId, position: LogPosition) -> Option<Ballot> {
        self.read_state(group, position).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walog::ident::{AttrId, KeyId};
    use walog::{ItemRef, Transaction, TxnId};

    fn entry(seq: u64) -> Arc<LogEntry> {
        Arc::new(LogEntry::single(
            Transaction::builder(TxnId::new(1, seq), group(), LogPosition(0))
                .write(ItemRef::new(KeyId(0), AttrId(0)), seq.to_string())
                .build(),
        ))
    }

    fn group() -> GroupId {
        GroupId(0)
    }

    #[test]
    fn state_keys_are_disjoint_from_application_keys_and_each_other() {
        let k = AcceptorStore::state_key(GroupId(3), LogPosition(7));
        assert!(k.0 & PAXOS_KEY_FLAG != 0);
        assert_ne!(k, AcceptorStore::state_key(GroupId(3), LogPosition(8)));
        assert_ne!(k, AcceptorStore::state_key(GroupId(4), LogPosition(7)));
        // Application keys (interned ids zero-extended) never carry the flag.
        assert_eq!(KeyId(u32::MAX).store_key().0 & PAXOS_KEY_FLAG, 0);
    }

    #[test]
    fn prepare_promises_increasing_ballots_only() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let b1 = Ballot {
            round: 1,
            proposer: 1,
        };
        let b2 = Ballot {
            round: 2,
            proposer: 2,
        };

        let out = acc.handle_prepare(group(), LogPosition(1), b2);
        assert!(out.promised);
        assert_eq!(out.next_bal, Some(b2));
        assert!(out.last_vote.is_none());

        // A lower ballot is refused and told about the higher promise.
        let out = acc.handle_prepare(group(), LogPosition(1), b1);
        assert!(!out.promised);
        assert_eq!(out.next_bal, Some(b2));

        // Re-preparing with a higher ballot works.
        let b3 = Ballot {
            round: 3,
            proposer: 1,
        };
        assert!(acc.handle_prepare(group(), LogPosition(1), b3).promised);
        assert_eq!(acc.promised_ballot(group(), LogPosition(1)), Some(b3));
    }

    #[test]
    fn accept_requires_matching_promise() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let b1 = Ballot {
            round: 1,
            proposer: 1,
        };
        let b2 = Ballot {
            round: 2,
            proposer: 2,
        };
        let value = entry(1);

        // No promise yet: regular ballot refused.
        assert!(!acc.handle_accept(group(), LogPosition(1), b1, &value));

        acc.handle_prepare(group(), LogPosition(1), b1);
        assert!(acc.handle_accept(group(), LogPosition(1), b1, &value));
        let vote = acc.current_vote(group(), LogPosition(1)).unwrap();
        assert_eq!(vote.0, b1);
        assert_eq!(*vote.1, *value);

        // A later promise invalidates the old ballot for accepts.
        acc.handle_prepare(group(), LogPosition(1), b2);
        assert!(!acc.handle_accept(group(), LogPosition(1), b1, &entry(9)));
        // But the vote for b1 is still reported as the last vote.
        let out = acc.handle_prepare(
            group(),
            LogPosition(1),
            Ballot {
                round: 3,
                proposer: 3,
            },
        );
        assert_eq!(*out.last_vote.unwrap().1, *value);
    }

    #[test]
    fn fast_path_accept_works_only_on_untouched_position() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let fast = Ballot::fast(7);
        let value = entry(1);
        assert!(acc.handle_accept(group(), LogPosition(1), fast, &value));
        // A second fast accept for the same position (different proposer)
        // is refused: the position is no longer untouched.
        assert!(!acc.handle_accept(group(), LogPosition(1), Ballot::fast(8), &entry(2)));
        // Regular prepare with round >= 1 supersedes the fast vote but
        // reports it, so the new proposer adopts the old value.
        let out = acc.handle_prepare(group(), LogPosition(1), Ballot::initial(9));
        assert!(out.promised);
        assert_eq!(*out.last_vote.unwrap().1, *value);
    }

    #[test]
    fn apply_records_value_and_returns_it() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let b = Ballot {
            round: 4,
            proposer: 2,
        };
        let value = entry(3);
        let returned = acc.handle_apply(group(), LogPosition(2), b, &value);
        assert!(Arc::ptr_eq(&returned, &value));
        assert_eq!(
            *acc.current_vote(group(), LogPosition(2)).unwrap().1,
            *value
        );
    }

    #[test]
    fn restore_replay_reproduces_promise_and_vote_state() {
        // Build reference state through the live handlers...
        let live = MvKvStore::new();
        let acc = AcceptorStore::new(&live);
        let b1 = Ballot {
            round: 1,
            proposer: 1,
        };
        let b2 = Ballot {
            round: 2,
            proposer: 2,
        };
        let value = entry(5);
        acc.handle_prepare(group(), LogPosition(1), b1);
        acc.handle_accept(group(), LogPosition(1), b1, &value);
        acc.handle_prepare(group(), LogPosition(1), b2);
        // ...then replay the same durable events into a fresh store.
        let restored = MvKvStore::new();
        let racc = AcceptorStore::new(&restored);
        racc.restore_promise(group(), LogPosition(1), b1);
        racc.restore_vote(group(), LogPosition(1), b1, &value);
        racc.restore_promise(group(), LogPosition(1), b2);
        assert_eq!(
            racc.promised_ballot(group(), LogPosition(1)),
            acc.promised_ballot(group(), LogPosition(1))
        );
        let (vb, vv) = racc.current_vote(group(), LogPosition(1)).unwrap();
        assert_eq!(vb, b1);
        assert_eq!(*vv, *value);
        // The restored acceptor behaves identically: refuses b1 accepts,
        // reports the old vote to a higher prepare.
        assert!(!racc.handle_accept(group(), LogPosition(1), b1, &entry(9)));
        let out = racc.handle_prepare(
            group(),
            LogPosition(1),
            Ballot {
                round: 3,
                proposer: 1,
            },
        );
        assert!(out.promised);
        assert_eq!(*out.last_vote.unwrap().1, *value);
    }

    #[test]
    fn instances_for_different_positions_and_groups_are_independent() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let b = Ballot {
            round: 1,
            proposer: 1,
        };
        acc.handle_prepare(group(), LogPosition(1), b);
        assert!(acc.promised_ballot(group(), LogPosition(2)).is_none());
        assert!(acc.promised_ballot(GroupId(9), LogPosition(1)).is_none());
    }
}
