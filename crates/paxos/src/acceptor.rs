//! The acceptor role of the Transaction Service (Algorithm 1).
//!
//! The service is stateless: all Paxos state for a log position —
//! `⟨nextBal, ballotNumber, value⟩` — lives in the local key-value store and
//! is updated with `checkAndWrite`, so any service process in the
//! datacenter can handle any message. This module wraps an [`mvkv`] store
//! with exactly those reads and conditional writes.

use crate::ballot::Ballot;
use mvkv::{MvKvStore, Row};
use walog::{GroupKey, LogEntry, LogPosition};

/// Attribute names used for acceptor state rows.
const ATTR_NEXT_BAL: &str = "nextBal";
const ATTR_VOTE_BAL: &str = "ballotNumber";
const ATTR_VALUE: &str = "value";

/// Outcome of handling a prepare message.
#[derive(Clone, Debug, PartialEq)]
pub struct PrepareOutcome {
    /// Whether the promise was made (the prepare's ballot exceeded the
    /// stored `nextBal`).
    pub promised: bool,
    /// The highest promised ballot after handling the message.
    pub next_bal: Option<Ballot>,
    /// The vote already cast for the position, if any.
    pub last_vote: Option<(Ballot, LogEntry)>,
}

/// Stateless acceptor operating against a datacenter's key-value store.
///
/// Each `(group, position)` pair has its own state row; the row key embeds
/// both so Paxos metadata never collides with application data.
pub struct AcceptorStore<'a> {
    store: &'a MvKvStore,
}

impl<'a> AcceptorStore<'a> {
    /// Wrap a datacenter's store.
    pub fn new(store: &'a MvKvStore) -> Self {
        AcceptorStore { store }
    }

    /// The row key holding the instance state for `(group, position)`.
    pub fn state_key(group: &str, position: LogPosition) -> String {
        format!("__paxos/{group}/{position}")
    }

    fn read_state(
        &self,
        group: &str,
        position: LogPosition,
    ) -> (Option<Ballot>, Option<(Ballot, LogEntry)>) {
        let key = Self::state_key(group, position);
        let Some(version) = self.store.read(&key, None) else {
            return (None, None);
        };
        let next_bal = version.row.get(ATTR_NEXT_BAL).and_then(Ballot::decode);
        let vote = match (version.row.get(ATTR_VOTE_BAL), version.row.get(ATTR_VALUE)) {
            (Some(bal), Some(value)) => Ballot::decode(bal)
                .zip(serde_json::from_str::<LogEntry>(value).ok()),
            _ => None,
        };
        (next_bal, vote)
    }

    /// Handle a `prepare` message (Algorithm 1, lines 3–15): promise not to
    /// accept ballots lower than `ballot` if it exceeds the current
    /// `nextBal`, and report the last vote either way.
    ///
    /// The compare-and-swap loop mirrors the pseudocode: the promise is only
    /// recorded if `nextBal` has not changed since it was read, otherwise
    /// the read is retried.
    pub fn handle_prepare(
        &self,
        group: &GroupKey,
        position: LogPosition,
        ballot: Ballot,
    ) -> PrepareOutcome {
        let key = Self::state_key(group, position);
        loop {
            let (next_bal, last_vote) = self.read_state(group, position);
            let exceeds = match next_bal {
                Some(current) => ballot > current,
                None => true,
            };
            if !exceeds {
                return PrepareOutcome {
                    promised: false,
                    next_bal,
                    last_vote,
                };
            }
            let applied = self
                .store
                .check_and_write(
                    &key,
                    ATTR_NEXT_BAL,
                    next_bal.map(Ballot::encode).as_deref(),
                    Row::new().with(ATTR_NEXT_BAL, ballot.encode()),
                )
                .applied();
            if applied {
                return PrepareOutcome {
                    promised: true,
                    next_bal: Some(ballot),
                    last_vote,
                };
            }
            // nextBal changed under us (another service process of the same
            // datacenter raced); re-read and re-evaluate, exactly like the
            // `keepTrying` loop in the paper.
        }
    }

    /// Handle an `accept` message (Algorithm 1, lines 16–19): cast the vote
    /// iff `ballot` equals the most recent promise. A round-0 fast-path
    /// ballot is additionally allowed to be accepted when no promise has
    /// been made yet (the leader optimization skips the prepare phase).
    pub fn handle_accept(
        &self,
        group: &GroupKey,
        position: LogPosition,
        ballot: Ballot,
        value: &LogEntry,
    ) -> bool {
        let key = Self::state_key(group, position);
        let encoded = serde_json::to_string(value).expect("log entries serialize");
        let vote_row = Row::new()
            .with(ATTR_VOTE_BAL, ballot.encode())
            .with(ATTR_VALUE, encoded)
            .with(ATTR_NEXT_BAL, ballot.encode());
        let (next_bal, _) = self.read_state(group, position);
        match next_bal {
            // Regular path: the accept's ballot must match the promise
            // recorded by the prepare phase.
            Some(current) if current == ballot => self
                .store
                .check_and_write(&key, ATTR_NEXT_BAL, Some(&current.encode()), vote_row)
                .applied(),
            // Fast path: nothing promised yet and the proposer used the
            // reserved round-0 ballot granted by the position's leader.
            None if ballot.is_fast() => self
                .store
                .check_and_write(&key, ATTR_NEXT_BAL, None, vote_row)
                .applied(),
            _ => false,
        }
    }

    /// Handle an `apply` message (Algorithm 1, lines 20–21): record the
    /// chosen value unconditionally. Returns the decided entry so the
    /// embedding service can install it in its write-ahead log.
    pub fn handle_apply(
        &self,
        group: &GroupKey,
        position: LogPosition,
        ballot: Ballot,
        value: &LogEntry,
    ) -> LogEntry {
        let key = Self::state_key(group, position);
        let encoded = serde_json::to_string(value).expect("log entries serialize");
        // Unconditional overwrite of the vote attributes, as in the paper.
        let _ = self.store.write(
            &key,
            Row::new()
                .with(ATTR_VOTE_BAL, ballot.encode())
                .with(ATTR_VALUE, encoded),
            None,
        );
        value.clone()
    }

    /// The vote currently recorded for `(group, position)`, if any — used by
    /// recovering services and by tests.
    pub fn current_vote(
        &self,
        group: &GroupKey,
        position: LogPosition,
    ) -> Option<(Ballot, LogEntry)> {
        self.read_state(group, position).1
    }

    /// The highest promised ballot for `(group, position)`, if any.
    pub fn promised_ballot(&self, group: &GroupKey, position: LogPosition) -> Option<Ballot> {
        self.read_state(group, position).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walog::{ItemRef, Transaction, TxnId};

    fn entry(seq: u64) -> LogEntry {
        LogEntry::single(
            Transaction::builder(TxnId::new(1, seq), "g", LogPosition(0))
                .write(ItemRef::new("row", "a"), seq.to_string())
                .build(),
        )
    }

    fn group() -> GroupKey {
        "g".to_string()
    }

    #[test]
    fn prepare_promises_increasing_ballots_only() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let b1 = Ballot { round: 1, proposer: 1 };
        let b2 = Ballot { round: 2, proposer: 2 };

        let out = acc.handle_prepare(&group(), LogPosition(1), b2);
        assert!(out.promised);
        assert_eq!(out.next_bal, Some(b2));
        assert!(out.last_vote.is_none());

        // A lower ballot is refused and told about the higher promise.
        let out = acc.handle_prepare(&group(), LogPosition(1), b1);
        assert!(!out.promised);
        assert_eq!(out.next_bal, Some(b2));

        // Re-preparing with a higher ballot works.
        let b3 = Ballot { round: 3, proposer: 1 };
        assert!(acc.handle_prepare(&group(), LogPosition(1), b3).promised);
        assert_eq!(acc.promised_ballot(&group(), LogPosition(1)), Some(b3));
    }

    #[test]
    fn accept_requires_matching_promise() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let b1 = Ballot { round: 1, proposer: 1 };
        let b2 = Ballot { round: 2, proposer: 2 };
        let value = entry(1);

        // No promise yet: regular ballot refused.
        assert!(!acc.handle_accept(&group(), LogPosition(1), b1, &value));

        acc.handle_prepare(&group(), LogPosition(1), b1);
        assert!(acc.handle_accept(&group(), LogPosition(1), b1, &value));
        let vote = acc.current_vote(&group(), LogPosition(1)).unwrap();
        assert_eq!(vote.0, b1);
        assert_eq!(vote.1, value);

        // A later promise invalidates the old ballot for accepts.
        acc.handle_prepare(&group(), LogPosition(1), b2);
        assert!(!acc.handle_accept(&group(), LogPosition(1), b1, &entry(9)));
        // But the vote for b1 is still reported as the last vote.
        let out = acc.handle_prepare(&group(), LogPosition(1), Ballot { round: 3, proposer: 3 });
        assert_eq!(out.last_vote.unwrap().1, value);
    }

    #[test]
    fn fast_path_accept_works_only_on_untouched_position() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let fast = Ballot::fast(7);
        let value = entry(1);
        assert!(acc.handle_accept(&group(), LogPosition(1), fast, &value));
        // A second fast accept for the same position (different proposer)
        // is refused: the position is no longer untouched.
        assert!(!acc.handle_accept(&group(), LogPosition(1), Ballot::fast(8), &entry(2)));
        // Regular prepare with round >= 1 supersedes the fast vote but
        // reports it, so the new proposer adopts the old value.
        let out = acc.handle_prepare(&group(), LogPosition(1), Ballot::initial(9));
        assert!(out.promised);
        assert_eq!(out.last_vote.unwrap().1, value);
    }

    #[test]
    fn apply_records_value_and_returns_it() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let b = Ballot { round: 4, proposer: 2 };
        let value = entry(3);
        let returned = acc.handle_apply(&group(), LogPosition(2), b, &value);
        assert_eq!(returned, value);
        assert_eq!(acc.current_vote(&group(), LogPosition(2)).unwrap().1, value);
    }

    #[test]
    fn instances_for_different_positions_and_groups_are_independent() {
        let store = MvKvStore::new();
        let acc = AcceptorStore::new(&store);
        let b = Ballot { round: 1, proposer: 1 };
        acc.handle_prepare(&group(), LogPosition(1), b);
        assert!(acc.promised_ballot(&group(), LogPosition(2)).is_none());
        assert!(acc.promised_ballot(&"other".to_string(), LogPosition(1)).is_none());
    }
}
