//! # paxos — the commit protocols of the paper
//!
//! One Synod (single-decree Paxos) instance decides the value of each
//! write-ahead-log position. This crate implements both sides of that
//! protocol exactly as given in the paper:
//!
//! * the **acceptor** role of the Transaction Service (Algorithm 1), whose
//!   entire state lives in the local key-value store and is updated with
//!   `checkAndWrite`, keeping the service itself stateless;
//! * the **proposer** role of the Transaction Client (Algorithm 2), as a
//!   driver-agnostic state machine that consumes replies/timeouts and emits
//!   messages/timer requests;
//! * the value-selection rules: `findWinningVal` for basic Paxos and
//!   `enhancedFindWinningVal` for **Paxos-CP**, whose *combination* and
//!   *promotion* enhancements provide true concurrency control (§5);
//! * the leader-per-log-position fast path that skips the prepare phase for
//!   the first, uncontended proposer (§4.1, "Paxos Optimizations").
//!
//! The crate is deliberately independent of the simulator: the state
//! machines speak in terms of [`ReplicaId`]s, abstract messages and timer
//! requests, and the `mdstore` crate binds them to simulated datacenters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acceptor;
mod ballot;
mod config;
mod msg;
mod proposer;
mod selector;

pub use acceptor::{AcceptorStore, PrepareOutcome};
pub use ballot::Ballot;
pub use config::{CommitProtocol, ProposerConfig};
pub use msg::{PaxosMsg, ReplicaId};
pub use proposer::{
    AbortReason, CommitOutcome, Proposer, ProposerAction, ProposerEvent, TimerKind,
};
pub use selector::{enhanced_find_winning_val, find_winning_val, ValueChoice, Vote};
