//! Proposer configuration: protocol variant and tuning knobs.

/// Which commit protocol the Transaction Client runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitProtocol {
    /// The basic Paxos commit protocol of §4: one transaction per log
    /// position, losers abort.
    BasicPaxos,
    /// Paxos-CP (§5): combination and promotion enabled.
    PaxosCp,
}

impl CommitProtocol {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CommitProtocol::BasicPaxos => "paxos",
            CommitProtocol::PaxosCp => "paxos-cp",
        }
    }

    /// Whether this protocol may combine or promote.
    pub fn is_cp(self) -> bool {
        matches!(self, CommitProtocol::PaxosCp)
    }
}

/// Configuration of a single commit attempt (one proposer run).
#[derive(Clone, Debug, PartialEq)]
pub struct ProposerConfig {
    /// Protocol variant.
    pub protocol: CommitProtocol,
    /// Number of replicas (datacenters) participating in the instance.
    pub num_replicas: usize,
    /// Maximum number of promotion attempts before giving up; `None` means
    /// unlimited (the setting used in the paper's evaluation).
    pub max_promotions: Option<u32>,
    /// Whether the combination enhancement is enabled (Paxos-CP only); the
    /// ablation harness turns it off to isolate promotion's contribution.
    pub combination_enabled: bool,
    /// Whether the leader-per-position fast path is attempted.
    pub fast_path: bool,
    /// Give up on the whole commit after this many prepare/accept rounds for
    /// a single position without a decision (safety valve against pathological
    /// message loss; generous enough to never trigger in normal runs).
    pub max_rounds_per_position: u32,
}

impl ProposerConfig {
    /// Configuration for basic Paxos over `num_replicas` datacenters.
    pub fn basic(num_replicas: usize) -> Self {
        ProposerConfig {
            protocol: CommitProtocol::BasicPaxos,
            num_replicas,
            max_promotions: Some(0),
            combination_enabled: false,
            fast_path: true,
            max_rounds_per_position: 64,
        }
    }

    /// Configuration for Paxos-CP over `num_replicas` datacenters with
    /// unlimited promotions (the paper's evaluation setting).
    pub fn cp(num_replicas: usize) -> Self {
        ProposerConfig {
            protocol: CommitProtocol::PaxosCp,
            num_replicas,
            max_promotions: None,
            combination_enabled: true,
            fast_path: true,
            max_rounds_per_position: 64,
        }
    }

    /// The majority quorum size `⌊D/2⌋ + 1`.
    pub fn majority(&self) -> usize {
        self.num_replicas / 2 + 1
    }

    /// Builder-style override of the promotion cap.
    pub fn with_max_promotions(mut self, cap: Option<u32>) -> Self {
        self.max_promotions = cap;
        self
    }

    /// Builder-style override of the combination switch.
    pub fn with_combination(mut self, enabled: bool) -> Self {
        self.combination_enabled = enabled;
        self
    }

    /// Builder-style override of the fast path switch.
    pub fn with_fast_path(mut self, enabled: bool) -> Self {
        self.fast_path = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_matches_paper_formula() {
        assert_eq!(ProposerConfig::basic(2).majority(), 2);
        assert_eq!(ProposerConfig::basic(3).majority(), 2);
        assert_eq!(ProposerConfig::basic(4).majority(), 3);
        assert_eq!(ProposerConfig::basic(5).majority(), 3);
    }

    #[test]
    fn presets_reflect_protocol() {
        let b = ProposerConfig::basic(3);
        assert_eq!(b.protocol, CommitProtocol::BasicPaxos);
        assert_eq!(b.max_promotions, Some(0));
        assert!(!b.combination_enabled);
        let cp = ProposerConfig::cp(3);
        assert!(cp.protocol.is_cp());
        assert_eq!(cp.max_promotions, None);
        assert!(cp.combination_enabled);
        assert_eq!(CommitProtocol::BasicPaxos.name(), "paxos");
        assert_eq!(CommitProtocol::PaxosCp.name(), "paxos-cp");
    }

    #[test]
    fn builder_overrides() {
        let cfg = ProposerConfig::cp(5)
            .with_max_promotions(Some(2))
            .with_combination(false)
            .with_fast_path(false);
        assert_eq!(cfg.max_promotions, Some(2));
        assert!(!cfg.combination_enabled);
        assert!(!cfg.fast_path);
    }
}
