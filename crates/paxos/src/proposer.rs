//! The proposer role of the Transaction Client (Algorithm 2), including the
//! Paxos-CP promotion loop and client-side proposal batching, as a
//! driver-agnostic state machine.
//!
//! The embedding layer (the `mdstore` transaction client or the batching
//! [`mdstore` group committer]) feeds the machine with [`ProposerEvent`]s —
//! replica replies and timer expirations — and executes the
//! [`ProposerAction`]s it returns: broadcasting messages, arming timers,
//! installing learned log entries, and finally reporting the
//! [`CommitOutcome`] to the application.
//!
//! # Batching
//!
//! A proposer built with [`Proposer::new_batch`] commits an *ordered batch*
//! of mutually compatible transactions (validated by
//! [`walog::combine::partition_compatible`]) in **one** Paxos-CP instance:
//! one prepare/accept round trip and one piggybacked apply broadcast decide
//! the whole batch, amortizing the wide-area round trips that dominate
//! geo-replicated commit latency. The state machine handles partial fates:
//! members a competing winner invalidates are dropped (aborted with
//! [`AbortReason::Conflict`]) while the surviving sub-batch promotes to the
//! next position, and members that another proposer's combined entry already
//! committed are recognized and never proposed twice. The per-member fates
//! are reported in [`CommitOutcome::committed_txns`] /
//! [`CommitOutcome::aborted_txns`].
//!
//! The proposer's own value is built once per batch composition as an
//! `Arc<LogEntry>` and shared with every accept/apply message and
//! learned-entry installation (it is only rebuilt when members leave the
//! batch); the promotion conflict test runs as integer-set lookups against
//! the winning entry's cached write set.
//!
//! [`mdstore` group committer]: ../../mdstore/batch/index.html

use crate::ballot::Ballot;
use crate::config::{CommitProtocol, ProposerConfig};
use crate::msg::{PaxosMsg, ReplicaId};
use crate::selector::{enhanced_find_winning_val_batch, find_winning_val, ValueChoice, Vote};
use std::collections::BTreeMap;
use std::sync::Arc;
use walog::{GroupId, LogEntry, LogPosition, Transaction, TxnId};

/// Which timer a [`ProposerAction::ArmTimer`] request refers to. The driver
/// chooses the concrete durations (the paper uses a 2 s reply timeout and a
/// short randomized backoff).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerKind {
    /// Waiting for prepare/accept/fast-path replies.
    ReplyTimeout,
    /// Randomized backoff before retrying the prepare phase.
    Backoff,
    /// Paxos-CP only: a majority has promised but other replicas have not
    /// answered yet and the answers received carry votes. The proposer
    /// waits a short extra window so `enhancedFindWinningVal` sees "more
    /// than a simple majority" of responses (§5), then chooses.
    Gather,
}

/// Inputs to the proposer state machine.
#[derive(Clone, Debug)]
pub enum ProposerEvent {
    /// Reply to the leader fast-path claim.
    FastPathReply {
        /// Position the claim was for.
        position: LogPosition,
        /// Whether this client was first and may skip the prepare phase.
        granted: bool,
    },
    /// A replica's reply to a prepare message.
    PrepareReply {
        /// Answering replica.
        from: ReplicaId,
        /// Position of the instance.
        position: LogPosition,
        /// Ballot the reply answers.
        ballot: Ballot,
        /// Whether the promise was made.
        promised: bool,
        /// The replica's current highest promise.
        next_bal: Option<Ballot>,
        /// The replica's last cast vote.
        last_vote: Option<(Ballot, Arc<LogEntry>)>,
    },
    /// A replica's reply to an accept message.
    AcceptReply {
        /// Answering replica.
        from: ReplicaId,
        /// Position of the instance.
        position: LogPosition,
        /// Ballot the reply answers.
        ballot: Ballot,
        /// Whether the vote was cast.
        accepted: bool,
    },
    /// A previously armed timer fired.
    Timer {
        /// Token returned by the matching [`ProposerAction::ArmTimer`].
        token: u64,
    },
}

/// Effects requested by the proposer state machine.
#[derive(Clone, Debug, PartialEq)]
pub enum ProposerAction {
    /// Send the message to every replica (including the client's own site).
    Broadcast(PaxosMsg),
    /// Send the message to the leader of the current position (the driver
    /// knows which replica that is).
    SendToLeader(PaxosMsg),
    /// Arm a timer of the given kind; deliver `ProposerEvent::Timer { token }`
    /// when it fires. Arming implicitly cancels any earlier timer.
    ArmTimer {
        /// Token to echo back on expiry.
        token: u64,
        /// Which duration class the driver should use.
        kind: TimerKind,
    },
    /// The proposer has learned that `entry` is the decided value of
    /// `position`; the driver should install it in the local write-ahead log.
    Learned {
        /// Decided position.
        position: LogPosition,
        /// Decided value.
        entry: Arc<LogEntry>,
    },
    /// The commit attempt finished; report the outcome to the application.
    Finished(CommitOutcome),
}

/// Why a transaction was aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The log position was won by a conflicting value: the transaction's
    /// reads were invalidated, so neither commit nor promotion is possible.
    Conflict,
    /// The configured promotion cap was reached.
    PromotionLimit,
    /// The per-position round safety valve was exceeded (pathological
    /// message loss or partition).
    RoundLimit,
    /// The commit request could not be decided in time: a submitted-route
    /// client gave up waiting for the group home's `CommitReply` (service
    /// unreachable or reply lost). The transaction may be retried as a new
    /// transaction; proposers never report this reason themselves.
    Unavailable,
}

/// Result of a commit attempt (a single transaction or a whole batch).
#[derive(Clone, Debug, PartialEq)]
pub struct CommitOutcome {
    /// Whether anything committed: the transaction itself for a single-
    /// transaction proposer, at least one member for a batch.
    pub committed: bool,
    /// The position of the last decide that committed members (when
    /// committed). For a batch that split across promotions this is where
    /// the final surviving members landed.
    pub position: Option<LogPosition>,
    /// Number of promotions performed before the final outcome.
    pub promotions: u32,
    /// Whether the committing log entry held more than one transaction
    /// (client-side batch and/or Paxos-CP combination).
    pub combined: bool,
    /// Total prepare/accept rounds executed across positions.
    pub rounds: u32,
    /// Abort reason (when nothing committed): the fate of the first member
    /// to abort.
    pub abort_reason: Option<AbortReason>,
    /// Ids of the members that committed, in batch order (empty for
    /// recovery proposers).
    pub committed_txns: Vec<TxnId>,
    /// Ids of the members that aborted, each with its reason.
    pub aborted_txns: Vec<(TxnId, AbortReason)>,
    /// Members that lost the position but remain committable (their reads
    /// were not invalidated by the winning entry). Only a proposer built
    /// with [`Proposer::new_batch_pipelined`] reports survivors — instead
    /// of promoting inline to `position + 1` (which a pipelined committer
    /// may already be driving), it hands them back so the embedding
    /// pipeline can reschedule them at its tail. Always empty otherwise.
    pub survivors: Vec<Transaction>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    FastWait,
    Prepare,
    Accept,
    Backoff,
    Done,
}

#[derive(Clone, Debug, Default)]
struct RoundState {
    prepare_replies: BTreeMap<ReplicaId, Vote>,
    accept_acks: usize,
    accept_rejects: usize,
    proposed: Option<Arc<LogEntry>>,
    gathering: bool,
}

/// What the proposer is trying to get decided.
#[derive(Clone, Debug)]
enum Goal {
    /// Commit an ordered batch of mutually compatible application
    /// transactions (a single transaction is a batch of one). The list
    /// shrinks as members commit or abort.
    Commit(Vec<Transaction>),
    /// Learn (or force) the value of a position by proposing a no-op — the
    /// recovery path of §4.1: a Transaction Service with a log gap runs a
    /// Paxos instance to learn the missing entry.
    Recover,
}

/// The proposer state machine for one transaction's commit attempt.
pub struct Proposer {
    cfg: ProposerConfig,
    group: GroupId,
    client_id: u64,
    goal: Goal,
    /// The value this proposer wants decided: `LogEntry::single` of its
    /// transaction, or a no-op for recovery. Built once, shared everywhere.
    own_entry: Arc<LogEntry>,
    position: LogPosition,
    ballot: Ballot,
    highest_seen: Option<Ballot>,
    phase: Phase,
    round: RoundState,
    promotions: u32,
    rounds_this_position: u32,
    total_rounds: u32,
    timer_token: u64,
    finished: bool,
    /// Members already committed (by our decide or by another proposer's
    /// combined entry), in the order they were observed committed.
    committed_ids: Vec<TxnId>,
    /// Members dropped along the way, each with its reason.
    aborted_ids: Vec<(TxnId, AbortReason)>,
    /// Position of the last decide that committed members.
    committed_position: Option<LogPosition>,
    /// Whether any committing entry held more than one transaction.
    committed_combined: bool,
    /// Pipelined mode: on loss, report survivors through the outcome
    /// instead of promoting inline to the next position (which the
    /// embedding pipeline may already be driving with another instance).
    defer_promotion: bool,
    /// Pipelined mode: this instance's position sits above still-undecided
    /// positions, so combination is restricted to blind-write candidates
    /// (see [`enhanced_find_winning_val_batch`]).
    speculative: bool,
    /// Survivors collected by a deferred loss, handed over in the outcome.
    deferred_survivors: Vec<Transaction>,
}

impl Proposer {
    /// Create a proposer that will try to commit `own_txn` to
    /// `commit_position` (= the transaction's read position + 1).
    pub fn new(
        cfg: ProposerConfig,
        group: GroupId,
        client_id: u64,
        own_txn: Transaction,
        commit_position: LogPosition,
    ) -> Self {
        Self::with_goal(
            cfg,
            group,
            client_id,
            Goal::Commit(vec![own_txn]),
            commit_position,
        )
    }

    /// Create a proposer that commits an ordered batch of transactions in a
    /// single Paxos-CP instance: the whole batch is proposed as one combined
    /// log entry, so one prepare/accept exchange and one apply broadcast
    /// decide every member.
    ///
    /// The batch must be a valid combination in the order given — no member
    /// may read an item written by an earlier member (callers build such
    /// batches with the [`walog::combine::can_append`] /
    /// [`walog::combine::partition_compatible`] rule).
    pub fn new_batch(
        cfg: ProposerConfig,
        group: GroupId,
        client_id: u64,
        batch: Vec<Transaction>,
        commit_position: LogPosition,
    ) -> Self {
        assert!(!batch.is_empty(), "a batch needs at least one transaction");
        debug_assert!(
            walog::combine::is_valid_combination(&batch),
            "batch members must form a valid combination; partition first"
        );
        Self::with_goal(cfg, group, client_id, Goal::Commit(batch), commit_position)
    }

    /// Create a proposer for one slot of a commit *pipeline*: it competes
    /// for exactly `commit_position` and never moves. On losing the
    /// position it does not promote inline — the next position may already
    /// be driven by another pipeline slot — but instead reports the
    /// still-committable members in [`CommitOutcome::survivors`] so the
    /// embedding pipeline can reschedule them at its tail. Losses are also
    /// resolved pessimistically: where a flush-and-wait proposer stops
    /// competing as soon as a majority of votes favours another value, a
    /// pipelined slot pushes the winning value through the accept phase
    /// first (Paxos's adoption rule), so the position is *decided and
    /// installed* before its members are rescheduled and the local log
    /// prefix keeps advancing.
    ///
    /// `prior_promotions` carries the number of positions the batch already
    /// lost in earlier slots (for the promotion cap and reporting), and
    /// `speculative` marks a slot above still-undecided positions, which
    /// restricts combination to blind-write candidates.
    pub fn new_batch_pipelined(
        cfg: ProposerConfig,
        group: GroupId,
        client_id: u64,
        batch: Vec<Transaction>,
        commit_position: LogPosition,
        prior_promotions: u32,
        speculative: bool,
    ) -> Self {
        let mut proposer = Self::new_batch(cfg, group, client_id, batch, commit_position);
        proposer.defer_promotion = true;
        proposer.speculative = speculative;
        proposer.promotions = prior_promotions;
        proposer
    }

    /// Create a recovery proposer that proposes a no-op for `position` in
    /// order to learn (or force) its decided value. Recovery always runs the
    /// basic protocol: there is nothing to combine or promote.
    pub fn new_recovery(
        mut cfg: ProposerConfig,
        group: GroupId,
        client_id: u64,
        position: LogPosition,
    ) -> Self {
        cfg.protocol = CommitProtocol::BasicPaxos;
        cfg.fast_path = false;
        Self::with_goal(cfg, group, client_id, Goal::Recover, position)
    }

    fn with_goal(
        cfg: ProposerConfig,
        group: GroupId,
        client_id: u64,
        goal: Goal,
        commit_position: LogPosition,
    ) -> Self {
        let own_entry = match &goal {
            Goal::Commit(txns) => Arc::new(LogEntry::combined(txns.clone())),
            Goal::Recover => Arc::new(LogEntry::noop()),
        };
        Proposer {
            cfg,
            group,
            client_id,
            goal,
            own_entry,
            position: commit_position,
            ballot: Ballot::initial(client_id),
            highest_seen: None,
            phase: Phase::Idle,
            round: RoundState::default(),
            promotions: 0,
            rounds_this_position: 0,
            total_rounds: 0,
            timer_token: 0,
            finished: false,
            committed_ids: Vec::new(),
            aborted_ids: Vec::new(),
            committed_position: None,
            committed_combined: false,
            defer_promotion: false,
            speculative: false,
            deferred_survivors: Vec::new(),
        }
    }

    fn own_value(&self) -> Arc<LogEntry> {
        Arc::clone(&self.own_entry)
    }

    /// True when this proposer is a recovery (no-op) proposer.
    pub fn is_recovery(&self) -> bool {
        matches!(self.goal, Goal::Recover)
    }

    /// The position currently being competed for.
    pub fn current_position(&self) -> LogPosition {
        self.position
    }

    /// The transactions still being committed, in batch order (empty for
    /// recovery proposers; shrinks as members commit or abort).
    pub fn transactions(&self) -> &[Transaction] {
        match &self.goal {
            Goal::Commit(txns) => txns,
            Goal::Recover => &[],
        }
    }

    /// The first transaction still being committed (`None` for recovery
    /// proposers).
    pub fn transaction(&self) -> Option<&Transaction> {
        self.transactions().first()
    }

    /// Number of promotions performed so far.
    pub fn promotions(&self) -> u32 {
        self.promotions
    }

    /// Whether the state machine has emitted its final outcome.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Begin the commit attempt. Returns the initial batch of actions.
    pub fn start(&mut self) -> Vec<ProposerAction> {
        debug_assert_eq!(self.phase, Phase::Idle);
        let mut out = Vec::new();
        if self.cfg.fast_path {
            self.phase = Phase::FastWait;
            out.push(ProposerAction::SendToLeader(PaxosMsg::LeaderClaim {
                group: self.group,
                position: self.position,
            }));
            out.push(self.arm_timer(TimerKind::ReplyTimeout));
        } else {
            self.begin_prepare(&mut out);
        }
        out
    }

    /// Feed an event into the state machine.
    pub fn on_event(&mut self, event: ProposerEvent) -> Vec<ProposerAction> {
        if self.finished {
            return Vec::new();
        }
        let mut out = Vec::new();
        match event {
            ProposerEvent::FastPathReply { position, granted } => {
                if self.phase == Phase::FastWait && position == self.position {
                    if granted {
                        self.ballot = Ballot::fast(self.client_id);
                        let value = self.own_value();
                        self.begin_accept(value, &mut out);
                    } else {
                        self.begin_prepare(&mut out);
                    }
                }
            }
            ProposerEvent::PrepareReply {
                from,
                position,
                ballot,
                promised,
                next_bal,
                last_vote,
            } => {
                if self.phase == Phase::Prepare
                    && position == self.position
                    && ballot == self.ballot
                {
                    self.note_ballot(next_bal);
                    self.round.prepare_replies.insert(
                        from,
                        Vote {
                            from,
                            promised,
                            last_vote,
                        },
                    );
                    self.maybe_finish_prepare(&mut out);
                }
            }
            ProposerEvent::AcceptReply {
                from: _,
                position,
                ballot,
                accepted,
            } => {
                if self.phase == Phase::Accept && position == self.position && ballot == self.ballot
                {
                    if accepted {
                        self.round.accept_acks += 1;
                    } else {
                        self.round.accept_rejects += 1;
                    }
                    self.maybe_finish_accept(&mut out);
                }
            }
            ProposerEvent::Timer { token } => {
                if token == self.timer_token {
                    self.on_timeout(&mut out);
                }
            }
        }
        out
    }

    fn arm_timer(&mut self, kind: TimerKind) -> ProposerAction {
        self.timer_token += 1;
        ProposerAction::ArmTimer {
            token: self.timer_token,
            kind,
        }
    }

    fn note_ballot(&mut self, seen: Option<Ballot>) {
        if let Some(b) = seen {
            if Some(b) > self.highest_seen {
                self.highest_seen = Some(b);
            }
        }
    }

    fn begin_prepare(&mut self, out: &mut Vec<ProposerAction>) {
        self.rounds_this_position += 1;
        self.total_rounds += 1;
        if self.rounds_this_position > self.cfg.max_rounds_per_position {
            self.finish_abort(AbortReason::RoundLimit, out);
            return;
        }
        self.ballot = self.ballot.advance_past(self.highest_seen);
        self.round = RoundState::default();
        self.phase = Phase::Prepare;
        out.push(ProposerAction::Broadcast(PaxosMsg::Prepare {
            group: self.group,
            position: self.position,
            ballot: self.ballot,
        }));
        out.push(self.arm_timer(TimerKind::ReplyTimeout));
    }

    fn begin_accept(&mut self, value: Arc<LogEntry>, out: &mut Vec<ProposerAction>) {
        self.phase = Phase::Accept;
        self.round.accept_acks = 0;
        self.round.accept_rejects = 0;
        self.round.proposed = Some(Arc::clone(&value));
        out.push(ProposerAction::Broadcast(PaxosMsg::Accept {
            group: self.group,
            position: self.position,
            ballot: self.ballot,
            value,
        }));
        out.push(self.arm_timer(TimerKind::ReplyTimeout));
    }

    fn maybe_finish_prepare(&mut self, out: &mut Vec<ProposerAction>) {
        let promised = self
            .round
            .prepare_replies
            .values()
            .filter(|v| v.promised)
            .count();
        let replied = self.round.prepare_replies.len();
        if promised >= self.cfg.majority() {
            if replied == self.cfg.num_replicas {
                self.choose_and_accept(out);
                return;
            }
            // A majority has promised but some replicas are still silent.
            // Basic Paxos proceeds immediately (the paper's Algorithm 2).
            // Paxos-CP benefits from seeing more than a bare majority of
            // responses, so if the answers received carry votes — i.e. the
            // position is contended and combination/promotion information is
            // at stake — it waits a short gather window for stragglers.
            let has_votes = self
                .round
                .prepare_replies
                .values()
                .any(|v| v.last_vote.is_some());
            let conclusive = !self.cfg.protocol.is_cp() || !has_votes;
            if conclusive {
                self.choose_and_accept(out);
                return;
            }
            // Promotion decisions are already conclusive at a majority: if a
            // value has a majority of votes, waiting cannot change the fact.
            let Goal::Commit(own_txns) = &self.goal else {
                self.choose_and_accept(out);
                return;
            };
            let votes: Vec<Vote> = self.round.prepare_replies.values().cloned().collect();
            if let ValueChoice::Promote { decided } = enhanced_find_winning_val_batch(
                &votes,
                own_txns,
                &self.own_entry,
                self.cfg.num_replicas,
                self.cfg.combination_enabled,
                self.speculative,
            ) {
                if self.defer_promotion {
                    // A pipelined slot resolves the position pessimistically:
                    // push the winner through the accept phase (the position
                    // decides and installs) and defer the loss to the decide.
                    self.choose_and_accept(out);
                } else {
                    self.handle_loss(&decided, out);
                }
                return;
            }
            if !self.round.gathering {
                self.round.gathering = true;
                out.push(self.arm_timer(TimerKind::Gather));
            }
        } else if replied == self.cfg.num_replicas {
            // Everyone answered but a competing proposer has a higher
            // ballot: back off and retry with a larger one.
            self.enter_backoff(out);
        }
    }

    fn choose_and_accept(&mut self, out: &mut Vec<ProposerAction>) {
        let votes: Vec<Vote> = self.round.prepare_replies.values().cloned().collect();
        match (&self.goal, self.cfg.protocol) {
            (Goal::Recover, _) | (_, CommitProtocol::BasicPaxos) => {
                let value = find_winning_val(&votes, &self.own_entry);
                self.begin_accept(value, out);
            }
            (Goal::Commit(own_txns), CommitProtocol::PaxosCp) => {
                match enhanced_find_winning_val_batch(
                    &votes,
                    own_txns,
                    &self.own_entry,
                    self.cfg.num_replicas,
                    self.cfg.combination_enabled,
                    self.speculative,
                ) {
                    ValueChoice::Propose(value) => self.begin_accept(value, out),
                    ValueChoice::Promote { decided } if !self.defer_promotion => {
                        // Stop competing for this position (no accepts are
                        // sent) and either promote or abort.
                        self.handle_loss(&decided, out);
                    }
                    ValueChoice::Promote { .. } => {
                        // Pipelined slot: adopt per the Paxos safety rule and
                        // push the winner through, so the position decides
                        // (and installs locally) before the loss is handled
                        // at `on_decided` — the pipeline's apply prefix must
                        // keep advancing even through lost slots.
                        let value = find_winning_val(&votes, &self.own_entry);
                        self.begin_accept(value, out);
                    }
                }
            }
        }
    }

    fn maybe_finish_accept(&mut self, out: &mut Vec<ProposerAction>) {
        let acks = self.round.accept_acks;
        let rejects = self.round.accept_rejects;
        let outstanding = self.cfg.num_replicas - acks - rejects;
        // A fast (round-0) ballot needs *every* replica's accept before it
        // may decide. Fast votes are first-come-first-served rather than
        // ordered by ballot, so two proposers racing for a virgin position
        // can split the fast votes between them; if a bare majority sufficed,
        // a later prepare that reaches only the minority voter could adopt
        // the losing value over the decided one (the classic Fast Paxos
        // recovery hazard). Unanimity restores the invariant a recovering
        // prepare relies on: a decided fast value has a vote on every
        // replica, so any quorum the prepare reaches either sees it or sees
        // two conflicting round-0 votes — in which case neither was decided
        // and the choice is free.
        let needed = self.quorum_for_ballot();
        if acks >= needed {
            self.on_decided(out);
        } else if acks + outstanding < needed {
            if self.ballot.is_fast() {
                // The fast round cannot reach unanimity (a replica already
                // voted for a rival or promised a higher ballot): recover
                // through the classic prepare path at a regular ballot.
                self.begin_prepare(out);
            } else {
                // A majority can no longer be reached in this round.
                self.enter_backoff(out);
            }
        }
    }

    /// Accepts required to decide at the current ballot: all replicas for a
    /// fast (round-0) ballot, a simple majority otherwise.
    fn quorum_for_ballot(&self) -> usize {
        if self.ballot.is_fast() {
            self.cfg.num_replicas
        } else {
            self.cfg.majority()
        }
    }

    fn on_decided(&mut self, out: &mut Vec<ProposerAction>) {
        let decided = self
            .round
            .proposed
            .clone()
            .expect("accept phase always has a proposed value");
        // The decide broadcast *is* the apply: one message per replica
        // installs the whole (possibly multi-transaction) entry, so a batch
        // piggybacks every member's apply on a single broadcast.
        out.push(ProposerAction::Broadcast(PaxosMsg::Apply {
            group: self.group,
            position: self.position,
            ballot: self.ballot,
            value: Arc::clone(&decided),
        }));
        out.push(ProposerAction::Learned {
            position: self.position,
            entry: Arc::clone(&decided),
        });
        let Goal::Commit(members) = &mut self.goal else {
            // Recovery: the position is now learned; report a non-commit
            // outcome (nothing of ours was committed).
            self.finish_final(out);
            return;
        };
        // Partition the batch by whether the decided entry committed it.
        let before = self.committed_ids.len();
        let mut rest = Vec::new();
        for txn in members.drain(..) {
            if decided.contains(txn.id) {
                self.committed_ids.push(txn.id);
            } else {
                rest.push(txn);
            }
        }
        if self.committed_ids.len() > before {
            self.committed_position = Some(self.position);
            if decided.len() > 1 {
                self.committed_combined = true;
            }
        }
        if rest.is_empty() {
            self.finish_final(out);
            return;
        }
        // We pushed a value through (mandated by the Paxos safety rule) that
        // did not include these members: they lost this position.
        *members = rest;
        match self.cfg.protocol {
            CommitProtocol::BasicPaxos => self.finish_abort(AbortReason::Conflict, out),
            CommitProtocol::PaxosCp => self.handle_loss(&decided, out),
        }
    }

    /// The current position was (or will be) won by `winner` without (all
    /// of) our members: drop the members whose reads `winner` invalidates,
    /// then promote the survivors to the next position if the cap allows.
    fn handle_loss(&mut self, winner: &LogEntry, out: &mut Vec<ProposerAction>) {
        let Goal::Commit(members) = &mut self.goal else {
            // Recovery proposers never lose anything of their own.
            self.finish_final(out);
            return;
        };
        // A member the winner itself contains (another proposer combined it
        // into its entry) is committed — it must be recognized here, before
        // the conflict test, and never proposed again. Members whose reads
        // the winner invalidates can be neither combined with nor promoted
        // past it: they abort. Everyone else survives and promotes.
        let before = self.committed_ids.len();
        let mut survivors = Vec::with_capacity(members.len());
        for txn in members.drain(..) {
            if winner.contains(txn.id) {
                self.committed_ids.push(txn.id);
            } else if winner.invalidates_reads_of(&txn) {
                self.aborted_ids.push((txn.id, AbortReason::Conflict));
            } else {
                survivors.push(txn);
            }
        }
        if self.committed_ids.len() > before {
            // The winner is (or will be) the decided value of the current
            // position: that is where these members committed.
            self.committed_position = Some(self.position);
            if winner.len() > 1 {
                self.committed_combined = true;
            }
        }
        if survivors.is_empty() {
            self.finish_final(out);
            return;
        }
        if let Some(cap) = self.cfg.max_promotions {
            if self.promotions >= cap {
                for txn in &survivors {
                    self.aborted_ids.push((txn.id, AbortReason::PromotionLimit));
                }
                self.finish_final(out);
                return;
            }
        }
        if self.defer_promotion {
            // Pipelined slot: the next position may already be in flight in
            // another slot, so hand the survivors back through the outcome —
            // the embedding pipeline reschedules them at its tail, in order.
            self.promotions += 1;
            self.deferred_survivors = survivors;
            self.finish_final(out);
            return;
        }
        // The survivors promote together as a (still valid) batch. The
        // proposed value is rebuilt only when the batch actually shrank
        // (members committed elsewhere or dropped — here or in
        // `on_decided`); an intact batch keeps sharing the same
        // `Arc<LogEntry>` across promotions. Survivors are always a subset
        // of the entry's transactions, so an equal count means an equal
        // set.
        *members = survivors;
        if members.len() != self.own_entry.len() {
            self.own_entry = Arc::new(LogEntry::combined(members.clone()));
        }
        self.promotions += 1;
        self.position = self.position.next();
        self.rounds_this_position = 0;
        self.highest_seen = None;
        self.ballot = Ballot::initial(self.client_id);
        // Promotion re-enters the protocol at Step 1 (prepare) for the next
        // position; the fast path is not consulted again.
        self.begin_prepare(out);
    }

    fn enter_backoff(&mut self, out: &mut Vec<ProposerAction>) {
        self.phase = Phase::Backoff;
        out.push(self.arm_timer(TimerKind::Backoff));
    }

    fn on_timeout(&mut self, out: &mut Vec<ProposerAction>) {
        match self.phase {
            Phase::FastWait => {
                // Leader unreachable: fall back to the full protocol.
                self.begin_prepare(out);
            }
            Phase::Prepare => {
                let promised = self
                    .round
                    .prepare_replies
                    .values()
                    .filter(|v| v.promised)
                    .count();
                if promised >= self.cfg.majority() {
                    self.choose_and_accept(out);
                } else {
                    self.enter_backoff(out);
                }
            }
            Phase::Accept => {
                if self.round.accept_acks >= self.quorum_for_ballot() {
                    self.on_decided(out);
                } else if self.ballot.is_fast() {
                    // An incomplete fast round is never decided; recover it
                    // through the classic prepare path rather than backing
                    // off to retry the (already lost) fast ballot.
                    self.begin_prepare(out);
                } else {
                    self.enter_backoff(out);
                }
            }
            Phase::Backoff => {
                self.begin_prepare(out);
            }
            Phase::Idle | Phase::Done => {}
        }
    }

    /// Abort every member still in flight with `reason`, then finish.
    fn finish_abort(&mut self, reason: AbortReason, out: &mut Vec<ProposerAction>) {
        if let Goal::Commit(members) = &mut self.goal {
            for txn in members.drain(..) {
                self.aborted_ids.push((txn.id, reason));
            }
        }
        self.finish_final(out);
    }

    /// Emit the final [`CommitOutcome`] from the per-member fates collected
    /// along the way.
    fn finish_final(&mut self, out: &mut Vec<ProposerAction>) {
        self.phase = Phase::Done;
        self.finished = true;
        let committed = !self.committed_ids.is_empty();
        out.push(ProposerAction::Finished(CommitOutcome {
            committed,
            position: self.committed_position,
            promotions: self.promotions,
            combined: self.committed_combined,
            rounds: self.total_rounds,
            abort_reason: if committed {
                None
            } else {
                self.aborted_ids.first().map(|(_, reason)| *reason)
            },
            committed_txns: std::mem::take(&mut self.committed_ids),
            aborted_txns: std::mem::take(&mut self.aborted_ids),
            survivors: std::mem::take(&mut self.deferred_survivors),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walog::ident::{AttrId, KeyId};
    use walog::{ItemRef, TxnId};

    fn item(a: u32) -> ItemRef {
        ItemRef::new(KeyId(0), AttrId(a))
    }

    // Attribute ids standing in for the original string names.
    const A: u32 = 0;
    const Z: u32 = 25;
    const Q: u32 = 16;

    fn own_txn(reads: &[u32], writes: &[u32]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(7, 1), GroupId(0), LogPosition(0));
        for r in reads {
            b = b.read(item(*r), Some("v"));
        }
        for w in writes {
            b = b.write(item(*w), "x");
        }
        b.build()
    }

    fn other_entry(writes: &[u32]) -> Arc<LogEntry> {
        let mut b = Transaction::builder(TxnId::new(9, 50), GroupId(0), LogPosition(0));
        for w in writes {
            b = b.write(item(*w), "y");
        }
        Arc::new(LogEntry::single(b.build()))
    }

    fn proposer(cfg: ProposerConfig) -> Proposer {
        Proposer::new(cfg, GroupId(0), 7, own_txn(&[A], &[A]), LogPosition(1))
    }

    fn prepare_reply(
        p: &Proposer,
        from: ReplicaId,
        promised: bool,
        last_vote: Option<(Ballot, Arc<LogEntry>)>,
    ) -> ProposerEvent {
        ProposerEvent::PrepareReply {
            from,
            position: p.current_position(),
            ballot: current_ballot(p),
            promised,
            next_bal: None,
            last_vote,
        }
    }

    fn accept_reply(p: &Proposer, from: ReplicaId, accepted: bool) -> ProposerEvent {
        ProposerEvent::AcceptReply {
            from,
            position: p.current_position(),
            ballot: current_ballot(p),
            accepted,
        }
    }

    fn current_ballot(p: &Proposer) -> Ballot {
        p.ballot
    }

    fn finished(actions: &[ProposerAction]) -> Option<&CommitOutcome> {
        actions.iter().find_map(|a| match a {
            ProposerAction::Finished(o) => Some(o),
            _ => None,
        })
    }

    #[test]
    fn uncontended_commit_through_full_protocol() {
        let mut p = proposer(ProposerConfig::basic(3).with_fast_path(false));
        let actions = p.start();
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Prepare { .. })
        ));
        // Two promises reach the majority and trigger the accept phase.
        assert!(p.on_event(prepare_reply(&p, 0, true, None)).is_empty());
        let actions = p.on_event(prepare_reply(&p, 1, true, None));
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Accept { .. })
        ));
        // Two accept acks decide the value.
        assert!(p.on_event(accept_reply(&p, 0, true)).is_empty());
        let actions = p.on_event(accept_reply(&p, 1, true));
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Apply { .. })
        ));
        assert!(matches!(actions[1], ProposerAction::Learned { .. }));
        let outcome = finished(&actions).unwrap();
        assert!(outcome.committed);
        assert_eq!(outcome.position, Some(LogPosition(1)));
        assert_eq!(outcome.promotions, 0);
        assert!(p.is_finished());
        // Further events are ignored once finished.
        assert!(p.on_event(accept_reply(&p, 2, true)).is_empty());
    }

    #[test]
    fn decided_value_is_shared_not_copied() {
        let mut p = proposer(ProposerConfig::basic(3).with_fast_path(false));
        p.start();
        p.on_event(prepare_reply(&p, 0, true, None));
        p.on_event(prepare_reply(&p, 1, true, None));
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        let apply_value = actions.iter().find_map(|a| match a {
            ProposerAction::Broadcast(PaxosMsg::Apply { value, .. }) => Some(value),
            _ => None,
        });
        let learned_value = actions.iter().find_map(|a| match a {
            ProposerAction::Learned { entry, .. } => Some(entry),
            _ => None,
        });
        assert!(Arc::ptr_eq(apply_value.unwrap(), learned_value.unwrap()));
    }

    #[test]
    fn fast_path_grant_skips_prepare() {
        let mut p = proposer(ProposerConfig::basic(3));
        let actions = p.start();
        assert!(matches!(
            actions[0],
            ProposerAction::SendToLeader(PaxosMsg::LeaderClaim { .. })
        ));
        let actions = p.on_event(ProposerEvent::FastPathReply {
            position: LogPosition(1),
            granted: true,
        });
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Accept { ballot, .. }) => {
                assert!(ballot.is_fast())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fast_round_decides_only_on_unanimous_accepts() {
        let mut p = proposer(ProposerConfig::basic(3));
        p.start();
        p.on_event(ProposerEvent::FastPathReply {
            position: LogPosition(1),
            granted: true,
        });
        // A bare majority of fast accepts must NOT decide: the third replica
        // may hold a rival round-0 vote, and a recovering prepare that only
        // reaches that replica would adopt the rival value.
        assert!(p.on_event(accept_reply(&p, 0, true)).is_empty());
        assert!(p.on_event(accept_reply(&p, 1, true)).is_empty());
        let actions = p.on_event(accept_reply(&p, 2, true));
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Apply { .. })
        ));
        assert!(finished(&actions).unwrap().committed);
    }

    #[test]
    fn fast_round_reject_falls_back_to_classic_prepare() {
        let mut p = proposer(ProposerConfig::basic(3));
        p.start();
        p.on_event(ProposerEvent::FastPathReply {
            position: LogPosition(1),
            granted: true,
        });
        p.on_event(accept_reply(&p, 0, true));
        // One reject makes unanimity unreachable: the fast round is lost and
        // the proposer re-enters the protocol at the prepare phase with a
        // regular (round >= 1) ballot instead of backing off.
        let actions = p.on_event(accept_reply(&p, 1, false));
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Prepare { ballot, .. }) => {
                assert!(!ballot.is_fast())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fast_path_denied_falls_back_to_prepare() {
        let mut p = proposer(ProposerConfig::basic(3));
        p.start();
        let actions = p.on_event(ProposerEvent::FastPathReply {
            position: LogPosition(1),
            granted: false,
        });
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Prepare { .. })
        ));
    }

    #[test]
    fn basic_paxos_aborts_when_losing_to_decided_value() {
        let mut p = proposer(ProposerConfig::basic(3).with_fast_path(false));
        p.start();
        let winner = other_entry(&[Z]);
        // Both replies carry a vote for the other value: the basic rule
        // forces us to re-propose it; when it decides, we abort.
        p.on_event(prepare_reply(
            &p,
            0,
            true,
            Some((
                Ballot {
                    round: 9,
                    proposer: 1,
                },
                Arc::clone(&winner),
            )),
        ));
        let actions = p.on_event(prepare_reply(
            &p,
            1,
            true,
            Some((
                Ballot {
                    round: 9,
                    proposer: 1,
                },
                Arc::clone(&winner),
            )),
        ));
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Accept { value, .. }) => {
                assert!(Arc::ptr_eq(value, &winner))
            }
            other => panic!("unexpected {other:?}"),
        }
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        let outcome = finished(&actions).unwrap();
        assert!(!outcome.committed);
        assert_eq!(outcome.abort_reason, Some(AbortReason::Conflict));
    }

    #[test]
    fn paxos_cp_promotes_after_losing_to_non_conflicting_value() {
        let mut p = proposer(ProposerConfig::cp(3).with_fast_path(false));
        p.start();
        // Own txn reads/writes a0; winner writes a25 (no conflict).
        let winner = other_entry(&[Z]);
        let vote = Some((
            Ballot {
                round: 3,
                proposer: 2,
            },
            winner,
        ));
        p.on_event(prepare_reply(&p, 0, true, vote.clone()));
        let actions = p.on_event(prepare_reply(&p, 1, true, vote));
        // Majority already voted for the winner: promotion, so the next
        // action is a prepare for position 2, with no accept for position 1.
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Prepare { position, .. }) => {
                assert_eq!(*position, LogPosition(2))
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.promotions(), 1);
        assert_eq!(p.current_position(), LogPosition(2));
        // Clean prepare/accept on position 2 commits the transaction.
        p.on_event(prepare_reply(&p, 0, true, None));
        let actions = p.on_event(prepare_reply(&p, 1, true, None));
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Accept { .. })
        ));
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        let outcome = finished(&actions).unwrap();
        assert!(outcome.committed);
        assert_eq!(outcome.promotions, 1);
        assert_eq!(outcome.position, Some(LogPosition(2)));
    }

    #[test]
    fn paxos_cp_aborts_when_winner_invalidates_reads() {
        let mut p = proposer(ProposerConfig::cp(3).with_fast_path(false));
        p.start();
        // Own txn reads a0; winner writes a0: conflict, no promotion.
        let winner = other_entry(&[A]);
        let vote = Some((
            Ballot {
                round: 3,
                proposer: 2,
            },
            winner,
        ));
        p.on_event(prepare_reply(&p, 0, true, vote.clone()));
        let actions = p.on_event(prepare_reply(&p, 1, true, vote));
        let outcome = finished(&actions).unwrap();
        assert!(!outcome.committed);
        assert_eq!(outcome.abort_reason, Some(AbortReason::Conflict));
        assert_eq!(outcome.promotions, 0);
    }

    #[test]
    fn promotion_cap_is_enforced() {
        let mut p = Proposer::new(
            ProposerConfig::cp(3)
                .with_fast_path(false)
                .with_max_promotions(Some(0)),
            GroupId(0),
            7,
            own_txn(&[A], &[A]),
            LogPosition(1),
        );
        p.start();
        let winner = other_entry(&[Z]);
        let vote = Some((
            Ballot {
                round: 3,
                proposer: 2,
            },
            winner,
        ));
        p.on_event(prepare_reply(&p, 0, true, vote.clone()));
        let actions = p.on_event(prepare_reply(&p, 1, true, vote));
        let outcome = finished(&actions).unwrap();
        assert!(!outcome.committed);
        assert_eq!(outcome.abort_reason, Some(AbortReason::PromotionLimit));
    }

    #[test]
    fn prepare_timeout_without_majority_backs_off_and_retries_with_higher_ballot() {
        let mut p = proposer(ProposerConfig::basic(3).with_fast_path(false));
        let actions = p.start();
        let first_ballot = current_ballot(&p);
        let token = match actions[1] {
            ProposerAction::ArmTimer { token, .. } => token,
            _ => panic!("expected timer"),
        };
        // Only one promise arrives, then the reply timeout fires.
        p.on_event(prepare_reply(&p, 0, true, None));
        let actions = p.on_event(ProposerEvent::Timer { token });
        let backoff_token = match actions[0] {
            ProposerAction::ArmTimer { token, kind } => {
                assert_eq!(kind, TimerKind::Backoff);
                token
            }
            _ => panic!("expected backoff"),
        };
        let actions = p.on_event(ProposerEvent::Timer {
            token: backoff_token,
        });
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Prepare { ballot, .. }) => {
                assert!(*ballot > first_ballot);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejected_prepare_advances_past_competing_ballot() {
        let mut p = proposer(ProposerConfig::basic(3).with_fast_path(false));
        p.start();
        let big = Ballot {
            round: 40,
            proposer: 2,
        };
        // All three replicas answer: two refuse because of a higher promise.
        p.on_event(ProposerEvent::PrepareReply {
            from: 0,
            position: LogPosition(1),
            ballot: current_ballot(&p),
            promised: false,
            next_bal: Some(big),
            last_vote: None,
        });
        p.on_event(ProposerEvent::PrepareReply {
            from: 1,
            position: LogPosition(1),
            ballot: current_ballot(&p),
            promised: false,
            next_bal: Some(big),
            last_vote: None,
        });
        let actions = p.on_event(prepare_reply(&p, 2, true, None));
        let backoff_token = match actions[0] {
            ProposerAction::ArmTimer { token, kind } => {
                assert_eq!(kind, TimerKind::Backoff);
                token
            }
            _ => panic!("expected backoff"),
        };
        let actions = p.on_event(ProposerEvent::Timer {
            token: backoff_token,
        });
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Prepare { ballot, .. }) => {
                assert!(*ballot > big, "new ballot {ballot:?} must exceed {big:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn accept_rejections_force_retry() {
        let mut p = proposer(ProposerConfig::basic(3).with_fast_path(false));
        p.start();
        p.on_event(prepare_reply(&p, 0, true, None));
        p.on_event(prepare_reply(&p, 1, true, None));
        // Two rejections make a majority impossible in this round.
        p.on_event(accept_reply(&p, 0, false));
        let actions = p.on_event(accept_reply(&p, 1, false));
        assert!(matches!(
            actions[0],
            ProposerAction::ArmTimer {
                kind: TimerKind::Backoff,
                ..
            }
        ));
    }

    #[test]
    fn stale_replies_for_old_ballots_or_positions_are_ignored() {
        let mut p = proposer(ProposerConfig::basic(3).with_fast_path(false));
        p.start();
        let wrong_ballot = ProposerEvent::PrepareReply {
            from: 0,
            position: LogPosition(1),
            ballot: Ballot {
                round: 99,
                proposer: 99,
            },
            promised: true,
            next_bal: None,
            last_vote: None,
        };
        assert!(p.on_event(wrong_ballot).is_empty());
        let wrong_position = ProposerEvent::PrepareReply {
            from: 0,
            position: LogPosition(9),
            ballot: current_ballot(&p),
            promised: true,
            next_bal: None,
            last_vote: None,
        };
        assert!(p.on_event(wrong_position).is_empty());
        // Stale timer tokens are ignored too.
        assert!(p.on_event(ProposerEvent::Timer { token: 9999 }).is_empty());
    }

    #[test]
    fn round_limit_aborts_eventually() {
        let mut p = Proposer::new(
            ProposerConfig::basic(3).with_fast_path(false),
            GroupId(0),
            7,
            own_txn(&[], &[A]),
            LogPosition(1),
        );
        let mut actions = p.start();
        // Repeatedly time out every phase; the round safety valve must fire.
        for _ in 0..200 {
            if p.is_finished() {
                break;
            }
            let token = actions
                .iter()
                .find_map(|a| match a {
                    ProposerAction::ArmTimer { token, .. } => Some(*token),
                    _ => None,
                })
                .expect("each batch arms a timer until finished");
            actions = p.on_event(ProposerEvent::Timer { token });
        }
        assert!(p.is_finished());
        let outcome = actions
            .iter()
            .find_map(|a| match a {
                ProposerAction::Finished(o) => Some(o),
                _ => None,
            })
            .unwrap();
        assert_eq!(outcome.abort_reason, Some(AbortReason::RoundLimit));
    }

    fn batch(txns: Vec<Transaction>) -> Proposer {
        Proposer::new_batch(
            ProposerConfig::cp(3).with_fast_path(false),
            GroupId(0),
            7,
            txns,
            LogPosition(1),
        )
    }

    fn batch_txn(seq: u64, reads: &[u32], writes: &[u32]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(7, seq), GroupId(0), LogPosition(0));
        for r in reads {
            b = b.read(item(*r), Some("v"));
        }
        for w in writes {
            b = b.write(item(*w), "x");
        }
        b.build()
    }

    #[test]
    fn batch_commits_every_member_in_one_instance() {
        let mut p = batch(vec![batch_txn(1, &[0], &[0]), batch_txn(2, &[1], &[1])]);
        let actions = p.start();
        // One prepare broadcast for the whole batch.
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Prepare { .. })
        ));
        p.on_event(prepare_reply(&p, 0, true, None));
        let actions = p.on_event(prepare_reply(&p, 1, true, None));
        // The proposed value carries both members.
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Accept { value, .. }) => {
                assert_eq!(value.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        // One apply broadcast decides (and installs) every member at once.
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Apply { .. })
        ));
        let outcome = finished(&actions).unwrap();
        assert!(outcome.committed);
        assert!(outcome.combined);
        assert_eq!(outcome.position, Some(LogPosition(1)));
        assert_eq!(
            outcome.committed_txns,
            vec![TxnId::new(7, 1), TxnId::new(7, 2)]
        );
        assert!(outcome.aborted_txns.is_empty());
        assert_eq!(outcome.rounds, 1);
    }

    #[test]
    fn batch_splits_on_loss_conflicting_member_aborts_survivor_promotes() {
        // Member 1 reads a0, member 2 reads a1; the winner writes a0:
        // member 1 is invalidated and aborts, member 2 promotes alone.
        let mut p = batch(vec![batch_txn(1, &[0], &[0]), batch_txn(2, &[1], &[1])]);
        p.start();
        let winner = other_entry(&[A]);
        let vote = Some((
            Ballot {
                round: 3,
                proposer: 2,
            },
            winner,
        ));
        p.on_event(prepare_reply(&p, 0, true, vote.clone()));
        let actions = p.on_event(prepare_reply(&p, 1, true, vote));
        // Promotion for the survivor: a prepare for position 2.
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Prepare { position, .. }) => {
                assert_eq!(*position, LogPosition(2))
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.transactions().len(), 1);
        assert_eq!(p.transactions()[0].id, TxnId::new(7, 2));
        // Clean prepare/accept on position 2 commits the survivor.
        p.on_event(prepare_reply(&p, 0, true, None));
        p.on_event(prepare_reply(&p, 1, true, None));
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        let outcome = finished(&actions).unwrap();
        assert!(outcome.committed);
        assert_eq!(outcome.position, Some(LogPosition(2)));
        assert_eq!(outcome.committed_txns, vec![TxnId::new(7, 2)]);
        assert_eq!(
            outcome.aborted_txns,
            vec![(TxnId::new(7, 1), AbortReason::Conflict)]
        );
        assert_eq!(outcome.promotions, 1);
    }

    #[test]
    fn batch_whose_members_all_conflict_with_winner_aborts_entirely() {
        let mut p = batch(vec![batch_txn(1, &[0], &[5]), batch_txn(2, &[0], &[6])]);
        p.start();
        let winner = other_entry(&[A]);
        let vote = Some((
            Ballot {
                round: 3,
                proposer: 2,
            },
            winner,
        ));
        p.on_event(prepare_reply(&p, 0, true, vote.clone()));
        let actions = p.on_event(prepare_reply(&p, 1, true, vote));
        let outcome = finished(&actions).unwrap();
        assert!(!outcome.committed);
        assert_eq!(outcome.abort_reason, Some(AbortReason::Conflict));
        assert_eq!(outcome.aborted_txns.len(), 2);
        assert!(outcome.committed_txns.is_empty());
    }

    #[test]
    fn pipelined_slot_pushes_winner_through_and_reports_survivors() {
        // Member 1 reads a0 (invalidated by the winner), member 2 is a blind
        // write (survives). A pipelined slot must not promote inline:
        // instead it adopts the winner, pushes it through accept so the
        // position decides and installs, and hands the survivor back.
        let mut p = Proposer::new_batch_pipelined(
            ProposerConfig::cp(3).with_fast_path(false),
            GroupId(0),
            7,
            vec![batch_txn(1, &[0], &[0]), batch_txn(2, &[], &[1])],
            LogPosition(1),
            0,
            false,
        );
        p.start();
        let winner = other_entry(&[A]);
        let vote = Some((
            Ballot {
                round: 3,
                proposer: 2,
            },
            Arc::clone(&winner),
        ));
        p.on_event(prepare_reply(&p, 0, true, vote.clone()));
        let actions = p.on_event(prepare_reply(&p, 1, true, vote));
        // Majority voted for the winner: instead of an early promotion the
        // slot adopts it and sends accepts — no prepare for position 2.
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Accept {
                position, value, ..
            }) => {
                assert_eq!(*position, LogPosition(1));
                assert!(Arc::ptr_eq(value, &winner));
            }
            other => panic!("unexpected {other:?}"),
        }
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        // The winner decides: Apply broadcast + local install, then the
        // final outcome carries the per-member fates and the survivor.
        assert!(matches!(
            actions[0],
            ProposerAction::Broadcast(PaxosMsg::Apply { .. })
        ));
        assert!(
            matches!(&actions[1], ProposerAction::Learned { position, entry }
                if *position == LogPosition(1) && Arc::ptr_eq(entry, &winner)),
            "the lost slot must still install the decided winner"
        );
        let outcome = finished(&actions).unwrap();
        assert!(!outcome.committed);
        assert_eq!(
            outcome.aborted_txns,
            vec![(TxnId::new(7, 1), AbortReason::Conflict)]
        );
        assert_eq!(outcome.survivors.len(), 1);
        assert_eq!(outcome.survivors[0].id, TxnId::new(7, 2));
        assert_eq!(outcome.promotions, 1, "the deferred loss counts as one");
        assert_eq!(
            p.current_position(),
            LogPosition(1),
            "a pipelined slot never moves"
        );
    }

    #[test]
    fn pipelined_slot_honours_the_promotion_cap_across_slots() {
        // The batch already lost one slot (prior promotions = 1) and the cap
        // is 1: the next loss aborts the survivors with PromotionLimit
        // instead of handing them back for yet another slot.
        let mut p = Proposer::new_batch_pipelined(
            ProposerConfig::cp(3)
                .with_fast_path(false)
                .with_max_promotions(Some(1)),
            GroupId(0),
            7,
            vec![batch_txn(2, &[], &[1])],
            LogPosition(4),
            1,
            true,
        );
        p.start();
        let winner = other_entry(&[Z]);
        let vote = Some((
            Ballot {
                round: 3,
                proposer: 2,
            },
            Arc::clone(&winner),
        ));
        p.on_event(prepare_reply(&p, 0, true, vote.clone()));
        p.on_event(prepare_reply(&p, 1, true, vote));
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        let outcome = finished(&actions).unwrap();
        assert!(!outcome.committed);
        assert!(outcome.survivors.is_empty());
        assert_eq!(
            outcome.aborted_txns,
            vec![(TxnId::new(7, 2), AbortReason::PromotionLimit)]
        );
    }

    #[test]
    fn member_committed_by_someone_elses_combined_entry_is_not_proposed_twice() {
        // Another proposer's combined entry that already contains member 1
        // wins the position: member 1 must be recognized as committed and
        // only member 2 may promote.
        let m1 = batch_txn(1, &[0], &[0]);
        let m2 = batch_txn(2, &[1], &[1]);
        let mut p = batch(vec![m1.clone(), m2.clone()]);
        p.start();
        let foreign = Transaction::builder(TxnId::new(9, 50), GroupId(0), LogPosition(0))
            .write(item(Z), "y")
            .build();
        let winner = Arc::new(LogEntry::combined(vec![foreign, m1.clone()]));
        let vote = Some((
            Ballot {
                round: 3,
                proposer: 2,
            },
            Arc::clone(&winner),
        ));
        // Majority votes for the foreign combined entry: it has the
        // position, member 1 rides in it (committed, not re-proposed), and
        // member 2 promotes alone.
        p.on_event(prepare_reply(&p, 0, true, vote.clone()));
        let actions = p.on_event(prepare_reply(&p, 1, true, vote));
        match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Prepare { position, .. }) => {
                assert_eq!(*position, LogPosition(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        let in_flight: Vec<TxnId> = p.transactions().iter().map(|t| t.id).collect();
        assert_eq!(in_flight, vec![m2.id], "only member 2 may be re-proposed");
        // Commit the survivor at position 2 and check the combined outcome.
        p.on_event(prepare_reply(&p, 0, true, None));
        p.on_event(prepare_reply(&p, 1, true, None));
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        let outcome = finished(&actions).unwrap();
        assert!(outcome.committed);
        assert_eq!(outcome.committed_txns, vec![m1.id, m2.id]);
        assert!(outcome.aborted_txns.is_empty());
        assert!(
            outcome.combined,
            "member 1 committed inside a multi-transaction entry"
        );
    }

    #[test]
    fn commit_in_combined_entry_is_flagged() {
        let mut p = proposer(ProposerConfig::cp(3).with_fast_path(false));
        p.start();
        // One replica has a vote for a disjoint transaction with only one
        // vote: the combine window is open, so the proposal packs both.
        let other = other_entry(&[Q]);
        p.on_event(prepare_reply(&p, 0, true, None));
        let actions = p.on_event(prepare_reply(
            &p,
            1,
            true,
            Some((
                Ballot {
                    round: 1,
                    proposer: 2,
                },
                other,
            )),
        ));
        // A majority has promised but a vote was seen: the proposer waits a
        // gather window for the remaining replica instead of choosing early.
        assert!(matches!(
            actions[0],
            ProposerAction::ArmTimer {
                kind: TimerKind::Gather,
                ..
            }
        ));
        let actions = p.on_event(prepare_reply(&p, 2, true, None));
        let proposed = match &actions[0] {
            ProposerAction::Broadcast(PaxosMsg::Accept { value, .. }) => Arc::clone(value),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(proposed.len(), 2);
        p.on_event(accept_reply(&p, 0, true));
        let actions = p.on_event(accept_reply(&p, 1, true));
        let outcome = finished(&actions).unwrap();
        assert!(outcome.committed);
        assert!(outcome.combined);
    }
}
