//! Proposal (ballot) numbers.

use std::fmt;

/// A proposal number: globally unique and totally ordered.
///
/// Uniqueness comes from embedding the proposing client's id; ordering is by
/// round first, then client id. Round 0 is reserved for the leader fast
/// path: an accept with a round-0 ballot may be accepted by a replica that
/// has not yet promised anything (skipping the prepare phase).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ballot {
    /// Monotonically increasing round chosen by the proposer.
    pub round: u64,
    /// Node id of the proposing client (tie-breaker and uniqueness).
    pub proposer: u64,
}

impl Ballot {
    /// The fast-path ballot for a proposer: round 0.
    pub fn fast(proposer: u64) -> Self {
        Ballot { round: 0, proposer }
    }

    /// The first regular (non-fast-path) ballot for a proposer.
    pub fn initial(proposer: u64) -> Self {
        Ballot { round: 1, proposer }
    }

    /// A ballot strictly greater than both `self` and `other` (if any),
    /// keeping this proposer's identity. Implements `nextPropNumber`.
    pub fn advance_past(self, other: Option<Ballot>) -> Ballot {
        let floor = other.map(|b| b.round).unwrap_or(0).max(self.round);
        Ballot {
            round: floor + 1,
            proposer: self.proposer,
        }
    }

    /// True for the round-0 fast-path ballot.
    pub fn is_fast(self) -> bool {
        self.round == 0
    }

    /// Encode for storage as a key-value attribute.
    pub fn encode(self) -> String {
        format!("{}:{}", self.round, self.proposer)
    }

    /// Decode from the attribute encoding; `None` for malformed input.
    pub fn decode(s: &str) -> Option<Ballot> {
        let (round, proposer) = s.split_once(':')?;
        Some(Ballot {
            round: round.parse().ok()?,
            proposer: proposer.parse().ok()?,
        })
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.proposer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_round_then_proposer() {
        assert!(
            Ballot {
                round: 2,
                proposer: 1
            } > Ballot {
                round: 1,
                proposer: 9
            }
        );
        assert!(
            Ballot {
                round: 1,
                proposer: 2
            } > Ballot {
                round: 1,
                proposer: 1
            }
        );
        assert!(Ballot::fast(3) < Ballot::initial(1));
    }

    #[test]
    fn advance_past_exceeds_both_inputs() {
        let mine = Ballot {
            round: 2,
            proposer: 7,
        };
        let seen = Ballot {
            round: 9,
            proposer: 1,
        };
        let next = mine.advance_past(Some(seen));
        assert!(next > mine && next > seen);
        assert_eq!(next.proposer, 7);
        let next2 = mine.advance_past(None);
        assert_eq!(next2.round, 3);
    }

    #[test]
    fn encode_decode_round_trips() {
        let b = Ballot {
            round: 42,
            proposer: 17,
        };
        assert_eq!(Ballot::decode(&b.encode()), Some(b));
        assert_eq!(Ballot::decode("garbage"), None);
        assert_eq!(Ballot::decode("1:x"), None);
    }

    #[test]
    fn fast_path_detection() {
        assert!(Ballot::fast(1).is_fast());
        assert!(!Ballot::initial(1).is_fast());
    }
}
