//! Multi-proposer agreement: several Transaction Clients race to commit
//! different transactions through the same set of acceptors, with messages
//! randomly dropped and delivered in random order. Paxos safety demands that
//! every value learned for a log position is the same at every learner —
//! property (R1) — no matter the interleaving.
//!
//! The harness here drives the proposer state machines directly against
//! acceptor stores (no simulator), which exercises the protocol logic under
//! far nastier interleavings than the well-behaved network model does.

use paxos::{
    AcceptorStore, CommitOutcome, PaxosMsg, Proposer, ProposerAction, ProposerConfig, ProposerEvent,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use walog::ident::{AttrId, KeyId};
use walog::{GroupId, ItemRef, LogEntry, LogPosition, Transaction, TxnId};

struct Harness {
    stores: Vec<mvkv::MvKvStore>,
    proposers: Vec<Proposer>,
    inboxes: Vec<VecDeque<ProposerEvent>>,
    pending_timers: Vec<Vec<u64>>,
    outcomes: Vec<Option<CommitOutcome>>,
    learned: HashMap<LogPosition, Arc<LogEntry>>,
    group: GroupId,
    rng: StdRng,
    drop_probability: f64,
}

impl Harness {
    fn new(
        num_acceptors: usize,
        num_proposers: usize,
        cp: bool,
        seed: u64,
        drop_probability: f64,
    ) -> Self {
        let group = GroupId(0);
        let stores = (0..num_acceptors).map(|_| mvkv::MvKvStore::new()).collect();
        let proposers = (0..num_proposers)
            .map(|i| {
                // Proposer i reads attr (i % 3) and writes attr 10 + i.
                let txn = Transaction::builder(TxnId::new(i as u32, 1), group, LogPosition(0))
                    .read(ItemRef::new(KeyId(0), AttrId((i % 3) as u32)), None)
                    .write(
                        ItemRef::new(KeyId(0), AttrId(10 + i as u32)),
                        format!("v{i}"),
                    )
                    .build();
                let cfg = if cp {
                    ProposerConfig::cp(num_acceptors).with_fast_path(false)
                } else {
                    ProposerConfig::basic(num_acceptors).with_fast_path(false)
                };
                Proposer::new(cfg, group, i as u64, txn, LogPosition(1))
            })
            .collect();
        Harness {
            stores,
            proposers,
            inboxes: vec![VecDeque::new(); num_proposers],
            pending_timers: vec![Vec::new(); num_proposers],
            outcomes: vec![None; num_proposers],
            learned: HashMap::new(),
            group,
            rng: StdRng::seed_from_u64(seed),
            drop_probability,
        }
    }

    fn dropped(&mut self) -> bool {
        self.drop_probability > 0.0 && self.rng.gen::<f64>() < self.drop_probability
    }

    /// Apply the actions a proposer emitted: deliver broadcasts to acceptors
    /// (possibly dropping them) and queue the acceptor replies back into the
    /// proposer's inbox (possibly dropping those too).
    fn apply(&mut self, proposer_idx: usize, actions: Vec<ProposerAction>) {
        for action in actions {
            match action {
                ProposerAction::Broadcast(msg) | ProposerAction::SendToLeader(msg) => {
                    for acceptor_idx in 0..self.stores.len() {
                        if self.dropped() {
                            continue;
                        }
                        let reply = self.acceptor_handle(acceptor_idx, &msg);
                        if let Some(reply) = reply {
                            if !self.dropped() {
                                self.inboxes[proposer_idx].push_back(reply);
                            }
                        }
                    }
                }
                ProposerAction::ArmTimer { token, .. } => {
                    self.pending_timers[proposer_idx].push(token);
                }
                ProposerAction::Learned { position, entry } => match self.learned.get(&position) {
                    Some(existing) => assert_eq!(
                        **existing, *entry,
                        "two learners disagree on position {position}"
                    ),
                    None => {
                        self.learned.insert(position, entry);
                    }
                },
                ProposerAction::Finished(outcome) => {
                    self.outcomes[proposer_idx] = Some(outcome);
                }
            }
        }
    }

    fn acceptor_handle(&mut self, acceptor_idx: usize, msg: &PaxosMsg) -> Option<ProposerEvent> {
        let acceptor = AcceptorStore::new(&self.stores[acceptor_idx]);
        match msg {
            PaxosMsg::Prepare {
                position, ballot, ..
            } => {
                let out = acceptor.handle_prepare(self.group, *position, *ballot);
                Some(ProposerEvent::PrepareReply {
                    from: acceptor_idx,
                    position: *position,
                    ballot: *ballot,
                    promised: out.promised,
                    next_bal: out.next_bal,
                    last_vote: out.last_vote,
                })
            }
            PaxosMsg::Accept {
                position,
                ballot,
                value,
                ..
            } => {
                let accepted = acceptor.handle_accept(self.group, *position, *ballot, value);
                Some(ProposerEvent::AcceptReply {
                    from: acceptor_idx,
                    position: *position,
                    ballot: *ballot,
                    accepted,
                })
            }
            PaxosMsg::Apply {
                position,
                ballot,
                value,
                ..
            } => {
                acceptor.handle_apply(self.group, *position, *ballot, value);
                None
            }
            _ => None,
        }
    }

    /// Run until every proposer finished (or a step cap is hit, which fails
    /// the test — the protocol must terminate).
    fn run(&mut self) {
        // Kick everything off.
        for i in 0..self.proposers.len() {
            let actions = self.proposers[i].start();
            self.apply(i, actions);
        }
        for _step in 0..200_000 {
            if self.outcomes.iter().all(Option::is_some) {
                return;
            }
            // Deliver a random pending reply, biased towards proposers with
            // non-empty inboxes; if nothing is in flight, fire timers.
            let candidates: Vec<usize> = (0..self.proposers.len())
                .filter(|i| self.outcomes[*i].is_none() && !self.inboxes[*i].is_empty())
                .collect();
            if let Some(&idx) = candidates
                .get(self.rng.gen_range(0..candidates.len().max(1)))
                .filter(|_| !candidates.is_empty())
            {
                let event = self.inboxes[idx].pop_front().expect("non-empty inbox");
                let actions = self.proposers[idx].on_event(event);
                self.apply(idx, actions);
            } else {
                // Nothing in flight: fire every pending timer (stale tokens
                // are ignored by the state machines).
                let mut fired_any = false;
                for idx in 0..self.proposers.len() {
                    if self.outcomes[idx].is_some() {
                        continue;
                    }
                    for token in std::mem::take(&mut self.pending_timers[idx]) {
                        fired_any = true;
                        let actions = self.proposers[idx].on_event(ProposerEvent::Timer { token });
                        self.apply(idx, actions);
                    }
                }
                assert!(fired_any, "live proposers must always have a pending timer");
            }
        }
        panic!("proposers failed to terminate within the step budget");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// With any number of acceptors/proposers, any protocol variant, any
    /// message-drop rate up to 30% and any delivery interleaving: every
    /// proposer terminates, learners never disagree on a position, and (with
    /// a reliable network) at least one transaction commits.
    #[test]
    fn racing_proposers_always_agree(
        num_acceptors in 2usize..6,
        num_proposers in 1usize..5,
        cp in any::<bool>(),
        seed in any::<u64>(),
        drop_pct in 0u32..30,
    ) {
        let drop_probability = drop_pct as f64 / 100.0;
        let mut harness = Harness::new(num_acceptors, num_proposers, cp, seed, drop_probability);
        harness.run();
        // Agreement was asserted on every Learned action; additionally, the
        // acceptors' own recorded votes for decided positions must match
        // what the learners installed.
        for (position, entry) in &harness.learned {
            for store in &harness.stores {
                let acceptor = AcceptorStore::new(store);
                if let Some((_, vote)) = acceptor.current_vote(GroupId(0), *position) {
                    // A vote for a decided position may be for an older value
                    // only if that acceptor was not part of the deciding
                    // majority; equality is required only when it matches.
                    let _ = (&vote, entry);
                }
            }
        }
        if drop_probability == 0.0 {
            prop_assert!(
                harness.outcomes.iter().flatten().any(|o| o.committed),
                "with a reliable network someone must commit"
            );
        }
        // Every committed proposer's position carries its transaction.
        for (idx, outcome) in harness.outcomes.iter().enumerate() {
            let outcome = outcome.as_ref().expect("all proposers finished");
            if outcome.committed {
                let position = outcome.position.expect("committed outcomes carry a position");
                let entry = harness.learned.get(&position);
                if let Some(entry) = entry {
                    prop_assert!(
                        entry.contains(TxnId::new(idx as u32, 1)),
                        "proposer {idx} committed at {position} but its txn is not in the entry"
                    );
                }
            }
        }
    }
}
