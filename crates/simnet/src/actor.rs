//! The actor abstraction: protocol participants driven by messages and timers.

use crate::sim::NodeId;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Identifier for a pending timer, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

/// An effect requested by an actor during a callback.
///
/// Actions are buffered in the [`Context`] and applied by the simulation
/// after the callback returns, which keeps actor callbacks free of borrows
/// into the simulation state.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to `to` over the simulated network.
    Send {
        /// Destination node.
        to: NodeId,
        /// Message payload.
        msg: M,
    },
    /// Fire a timer for the requesting actor after `delay`, carrying `tag`.
    SetTimer {
        /// Timer id assigned at request time.
        id: TimerId,
        /// How long from now the timer fires.
        delay: SimDuration,
        /// Actor-interpreted payload distinguishing timer purposes.
        tag: u64,
    },
    /// Cancel a previously set timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    CancelTimer(TimerId),
}

/// The execution context handed to actor callbacks.
///
/// Provides the current virtual time, the actor's own node id, a seeded RNG
/// slice (deterministic per simulation), and buffers for outgoing actions.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) actions: &'a mut Vec<Action<M>>,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node id of the actor being invoked.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send a message to another node (or to self) over the network.
    ///
    /// Delivery is subject to the network model: latency, jitter, loss,
    /// partitions and destination liveness.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Schedule a timer that fires after `delay` with the given `tag`.
    ///
    /// Returns a [`TimerId`] that can be passed to [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer { id, delay, tag });
        id
    }

    /// Cancel a pending timer. No-op if the timer already fired.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }

    /// Draw a uniformly distributed `f64` in `[0, 1)` from the simulation RNG.
    pub fn rand_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Draw a uniformly distributed integer in `[0, bound)`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }

    /// A random duration in `[0, max)`, used for randomized backoff.
    pub fn rand_backoff(&mut self, max: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.rand_below(max.as_micros().max(1)))
    }
}

/// A simulated process: a transaction service, a transaction client, a
/// workload driver, or any other protocol participant.
///
/// All callbacks run to completion atomically at a single virtual instant;
/// effects they request are applied afterwards.
pub trait Actor<M> {
    /// Invoked once when the simulation starts (or when the node is added to
    /// an already-running simulation).
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Invoked when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);

    /// Invoked when a timer set by this actor fires.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _tag: u64) {}

    /// Invoked when the node is brought back up after a crash. State kept in
    /// the actor itself is preserved (it models durable state plus the
    /// process image); messages and timers that targeted the node while it
    /// was down have been dropped.
    fn on_recover(&mut self, _ctx: &mut Context<M>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_buffers_actions_in_order() {
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut next_timer = 0;
        let mut ctx = Context {
            now: SimTime::from_micros(5),
            node: NodeId(3),
            actions: &mut actions,
            rng: &mut rng,
            next_timer_id: &mut next_timer,
        };
        ctx.send(NodeId(1), 10);
        let t = ctx.set_timer(SimDuration::from_millis(2), 99);
        ctx.cancel_timer(t);
        assert_eq!(actions.len(), 3);
        assert!(matches!(
            actions[0],
            Action::Send {
                to: NodeId(1),
                msg: 10
            }
        ));
        assert!(matches!(
            actions[1],
            Action::SetTimer {
                tag: 99,
                id: TimerId(0),
                ..
            }
        ));
        assert!(matches!(actions[2], Action::CancelTimer(TimerId(0))));
    }

    #[test]
    fn timer_ids_are_unique_and_monotonic() {
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut next_timer = 0;
        let mut ctx = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            actions: &mut actions,
            rng: &mut rng,
            next_timer_id: &mut next_timer,
        };
        let a = ctx.set_timer(SimDuration::from_millis(1), 0);
        let b = ctx.set_timer(SimDuration::from_millis(1), 0);
        assert!(b > a);
    }

    #[test]
    fn rand_below_zero_bound_is_zero() {
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut next_timer = 0;
        let mut ctx = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            actions: &mut actions,
            rng: &mut rng,
            next_timer_id: &mut next_timer,
        };
        assert_eq!(ctx.rand_below(0), 0);
        let v = ctx.rand_f64();
        assert!((0.0..1.0).contains(&v));
    }
}
