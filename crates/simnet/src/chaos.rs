//! Seeded rolling-failure schedules.
//!
//! A [`ChaosSpec`] declares a *continuous* fault scenario — rolling site
//! crashes with staggered restarts, a flapping inter-site partition,
//! periodic churn on a harness-owned placement map — and
//! [`ChaosSchedule::generate`] expands it into a deterministic, seeded
//! timeline of [`ChaosEvent`]s. The harness that owns the simulation
//! drives the schedule between [`Simulation::run_until`] slices: pop the
//! events that came due, apply the network-level ones with
//! [`ChaosSchedule::apply_network`], and interpret the rest (e.g.
//! [`ChaosEvent::MoveHome`]) against whatever placement state it owns.
//!
//! The schedule is data, not an actor: actors cannot mutate the network
//! model from inside the run loop, and keeping the timeline explicit makes
//! every run reproducible from `(spec, seed)` alone.

use crate::network::SiteId;
use crate::sim::Simulation;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault (or repair) of a rolling-failure scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Take a whole site (datacenter) offline.
    CrashSite(SiteId),
    /// Restart a crashed site (its actors get `on_recover`).
    RecoverSite(SiteId),
    /// Partition two sites from each other.
    Partition(SiteId, SiteId),
    /// Heal the partition between two sites.
    Heal(SiteId, SiteId),
    /// Move the home of the `group`-th group to `replica`. Not a
    /// network-level event: [`ChaosSchedule::apply_network`] ignores it and
    /// the harness owning the group-home map must interpret it.
    MoveHome {
        /// Index of the group whose home moves (harness-defined order).
        group: usize,
        /// Replica (site) index the home moves to.
        replica: usize,
    },
}

impl ChaosEvent {
    /// Whether the event injects a fault (crashes, partitions and placement
    /// churn count; repairs do not).
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            ChaosEvent::CrashSite(_) | ChaosEvent::Partition(..) | ChaosEvent::MoveHome { .. }
        )
    }
}

/// Declarative spec of a rolling-failure scenario over a fixed duration.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// How long faults keep being injected (repairs may land later so the
    /// cluster always ends healthy).
    pub duration: SimDuration,
    /// Number of sites the rolling crashes cycle over (sites `0..n`).
    pub crash_sites: usize,
    /// Cadence of rolling crashes (`None` disables them).
    pub crash_period: Option<SimDuration>,
    /// How long each crashed site stays down before its staggered restart.
    pub crash_downtime: SimDuration,
    /// Fraction of the crash period each crash instant is jittered by
    /// (drawn from the schedule's seeded RNG).
    pub stagger: f64,
    /// Site pair whose link flaps (`None` disables flapping).
    pub flap_pair: Option<(SiteId, SiteId)>,
    /// Flap cadence: each period the pair partitions, then heals after
    /// `flap_down` within the same period.
    pub flap_period: Option<SimDuration>,
    /// How long each flap keeps the pair partitioned.
    pub flap_down: SimDuration,
    /// Cadence of group-home churn events (`None` disables churn).
    pub home_churn_period: Option<SimDuration>,
    /// Number of groups churn events pick from (indices `0..n`).
    pub home_churn_groups: usize,
}

impl ChaosSpec {
    /// A scenario of the given length with every fault family disabled.
    pub fn new(duration: SimDuration) -> Self {
        ChaosSpec {
            duration,
            crash_sites: 0,
            crash_period: None,
            crash_downtime: SimDuration::from_millis(400),
            stagger: 0.25,
            flap_pair: None,
            flap_period: None,
            flap_down: SimDuration::from_millis(300),
            home_churn_period: None,
            home_churn_groups: 0,
        }
    }

    /// Builder-style: rolling crashes cycling over sites `0..sites`, one
    /// crash per `period`, each down for `downtime` before restarting.
    pub fn with_rolling_crashes(
        mut self,
        sites: usize,
        period: SimDuration,
        downtime: SimDuration,
    ) -> Self {
        self.crash_sites = sites;
        self.crash_period = Some(period);
        self.crash_downtime = downtime;
        self
    }

    /// Builder-style: set the crash-instant jitter fraction.
    pub fn with_stagger(mut self, stagger: f64) -> Self {
        self.stagger = stagger.clamp(0.0, 1.0);
        self
    }

    /// Builder-style: flap the link between `a` and `b` once per `period`,
    /// keeping it partitioned for `down` each time.
    pub fn with_flapping(
        mut self,
        a: SiteId,
        b: SiteId,
        period: SimDuration,
        down: SimDuration,
    ) -> Self {
        self.flap_pair = Some((a, b));
        self.flap_period = Some(period);
        self.flap_down = down;
        self
    }

    /// Builder-style: move a random one of `groups` group homes to a random
    /// one of `crash_sites` replicas once per `period`.
    pub fn with_home_churn(mut self, groups: usize, period: SimDuration) -> Self {
        self.home_churn_groups = groups;
        self.home_churn_period = Some(period);
        self
    }
}

/// A deterministic timeline of [`ChaosEvent`]s expanded from a
/// [`ChaosSpec`] and a seed, consumed in time order by the harness.
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    events: Vec<(SimTime, ChaosEvent)>,
    cursor: usize,
    faults_injected: u64,
}

impl ChaosSchedule {
    /// Expand `spec` into a sorted event timeline. The same `(spec, seed)`
    /// pair always yields the same timeline.
    pub fn generate(spec: &ChaosSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events: Vec<(SimTime, ChaosEvent)> = Vec::new();
        let horizon = spec.duration.as_micros();

        if let (Some(period), true) = (spec.crash_period, spec.crash_sites > 0) {
            let period_us = period.as_micros().max(1);
            let mut site = 0usize;
            let mut t = period_us;
            while t < horizon {
                let jitter = (rng.gen::<f64>() * spec.stagger * period_us as f64).round() as u64;
                let crash_at = SimTime::from_micros(t + jitter);
                let recover_at = crash_at + spec.crash_downtime;
                let target = SiteId((site % spec.crash_sites) as u32);
                events.push((crash_at, ChaosEvent::CrashSite(target)));
                events.push((recover_at, ChaosEvent::RecoverSite(target)));
                site += 1;
                t += period_us;
            }
        }

        if let (Some((a, b)), Some(period)) = (spec.flap_pair, spec.flap_period) {
            let period_us = period.as_micros().max(1);
            let mut t = period_us / 2;
            while t < horizon {
                let cut_at = SimTime::from_micros(t);
                events.push((cut_at, ChaosEvent::Partition(a, b)));
                events.push((cut_at + spec.flap_down, ChaosEvent::Heal(a, b)));
                t += period_us;
            }
        }

        if let (Some(period), true) = (spec.home_churn_period, spec.home_churn_groups > 0) {
            let period_us = period.as_micros().max(1);
            let replicas = spec.crash_sites.max(1);
            let mut t = period_us;
            while t < horizon {
                let group = rng.gen_range(0..spec.home_churn_groups);
                let replica = rng.gen_range(0..replicas);
                events.push((
                    SimTime::from_micros(t),
                    ChaosEvent::MoveHome { group, replica },
                ));
                t += period_us;
            }
        }

        events.sort_by_key(|(time, _)| *time);
        ChaosSchedule {
            events,
            cursor: 0,
            faults_injected: 0,
        }
    }

    /// The full timeline, in time order.
    pub fn events(&self) -> &[(SimTime, ChaosEvent)] {
        &self.events
    }

    /// Instant of the next event not yet popped, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|(time, _)| *time)
    }

    /// Pop every event due at or before `now`, counting the faults among
    /// them into [`ChaosSchedule::faults_injected`].
    pub fn pop_due(&mut self, now: SimTime) -> Vec<ChaosEvent> {
        let mut due = Vec::new();
        while let Some((time, event)) = self.events.get(self.cursor) {
            if *time > now {
                break;
            }
            if event.is_fault() {
                self.faults_injected += 1;
            }
            due.push(*event);
            self.cursor += 1;
        }
        due
    }

    /// Whether every event has been popped.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Faults popped so far (crashes, partitions, home moves; repairs are
    /// not counted).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Apply a network-level event to a simulation. Returns `false` for
    /// events the simulation cannot interpret ([`ChaosEvent::MoveHome`]),
    /// which the harness must handle itself.
    pub fn apply_network<M: Clone + 'static>(event: ChaosEvent, sim: &mut Simulation<M>) -> bool {
        match event {
            ChaosEvent::CrashSite(site) => {
                sim.crash_site(site);
                true
            }
            ChaosEvent::RecoverSite(site) => {
                sim.recover_site(site);
                true
            }
            ChaosEvent::Partition(a, b) => {
                sim.network_mut().partition(a, b);
                true
            }
            ChaosEvent::Heal(a, b) => {
                sim.network_mut().heal(a, b);
                true
            }
            ChaosEvent::MoveHome { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rolling_spec() -> ChaosSpec {
        ChaosSpec::new(SimDuration::from_secs(10))
            .with_rolling_crashes(3, SimDuration::from_secs(2), SimDuration::from_millis(400))
            .with_flapping(
                SiteId(0),
                SiteId(1),
                SimDuration::from_secs(2),
                SimDuration::from_millis(300),
            )
            .with_home_churn(4, SimDuration::from_secs(3))
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ChaosSchedule::generate(&rolling_spec(), 7);
        let b = ChaosSchedule::generate(&rolling_spec(), 7);
        assert_eq!(a.events(), b.events());
        let c = ChaosSchedule::generate(&rolling_spec(), 8);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn every_crash_gets_a_staggered_restart() {
        let schedule = ChaosSchedule::generate(&rolling_spec(), 1);
        let crashes: Vec<_> = schedule
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, ChaosEvent::CrashSite(_)))
            .collect();
        let recoveries: Vec<_> = schedule
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, ChaosEvent::RecoverSite(_)))
            .collect();
        assert!(!crashes.is_empty());
        assert_eq!(crashes.len(), recoveries.len());
        // Sites cycle: within the horizon every site is crashed at least once.
        for site in 0..3 {
            assert!(
                crashes
                    .iter()
                    .any(|(_, e)| *e == ChaosEvent::CrashSite(SiteId(site))),
                "site {site} never crashed"
            );
        }
    }

    #[test]
    fn pop_due_is_in_order_and_counts_faults() {
        let mut schedule = ChaosSchedule::generate(&rolling_spec(), 3);
        let total = schedule.events().len();
        let first_due = schedule.next_due().unwrap();
        assert!(schedule.pop_due(SimTime::ZERO).is_empty());
        let due = schedule.pop_due(first_due);
        assert!(!due.is_empty());
        let rest = schedule.pop_due(SimTime::from_micros(u64::MAX));
        assert_eq!(due.len() + rest.len(), total);
        assert!(schedule.exhausted());
        let faults = due.iter().chain(&rest).filter(|e| e.is_fault()).count();
        assert_eq!(schedule.faults_injected(), faults as u64);
        assert!(schedule.faults_injected() > 0);
    }

    #[test]
    fn network_events_apply_to_a_simulation() {
        let mut sim: Simulation<()> = Simulation::new(crate::network::NetworkConfig::default(), 1);
        let a = sim.add_site("a");
        let b = sim.add_site("b");
        assert!(ChaosSchedule::apply_network(
            ChaosEvent::Partition(a, b),
            &mut sim
        ));
        assert!(ChaosSchedule::apply_network(
            ChaosEvent::CrashSite(a),
            &mut sim
        ));
        assert!(ChaosSchedule::apply_network(
            ChaosEvent::RecoverSite(a),
            &mut sim
        ));
        assert!(ChaosSchedule::apply_network(
            ChaosEvent::Heal(a, b),
            &mut sim
        ));
        assert!(!ChaosSchedule::apply_network(
            ChaosEvent::MoveHome {
                group: 0,
                replica: 1
            },
            &mut sim
        ));
    }
}
