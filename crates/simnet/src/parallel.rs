//! The parallel runtime: the same actors, sharded over OS worker threads.
//!
//! The deterministic [`Simulation`](crate::Simulation) executes every actor
//! on one thread under virtual time — perfect for reproducibility, but "as
//! fast as the hardware allows" means one core. [`ParallelRuntime`] is the
//! second execution mode: actors are partitioned across worker threads
//! (the caller picks the worker when adding a node — e.g. shard by
//! transaction-group home), each worker runs its own event loop with a
//! local timer heap, and cross-worker messages travel over bounded MPSC
//! channels stamped with a wall-clock delivery deadline.
//!
//! The [`Actor`]/[`Context`] surface is identical to the simulation's, so
//! protocol code runs unmodified on either runtime; the only extra
//! requirement is `Send` (an actor moves to its worker's thread). Virtual
//! time maps to wall-clock time: `ctx.now()` is the microseconds elapsed
//! since the run started, and latencies from the [`NetworkConfig`] become
//! real delays on the per-worker timer heaps. There is no crash/partition
//! injection and no determinism here — the single-threaded simulation
//! remains the canonical test and repro mode.
//!
//! ## Backpressure, not deadlock
//!
//! Cross-worker channels are bounded. A worker never blocks on a send:
//! when a peer's channel is full the wire message parks in a local outbox
//! that is retried at the top of every loop iteration (counted in
//! [`ParallelReport::backpressure`]). Since workers only block in
//! `recv_timeout` while their outbox is empty, a full cycle of workers
//! waiting on each other's channels cannot form.

use crate::actor::{Action, Actor, Context};
use crate::network::{NetworkConfig, SiteId};
use crate::sim::NodeId;
use crate::stats::NetStats;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
// lint:allow(determinism): the parallel runtime is the real-time execution
// mode — wall-clock time IS simulation time here; replayable runs use the
// single-threaded `Simulation` instead (see docs/ANALYSIS.md).
use std::time::{Duration, Instant};

/// Capacity of each worker's inbound wire channel. Deep enough that
/// backpressure is rare under normal load; shallow enough that a stalled
/// worker propagates pressure instead of buffering unboundedly.
const CHANNEL_CAPACITY: usize = 16_384;

/// Per-iteration cap on wires drained from the inbound channel.
const DRAIN_BATCH: usize = 1_024;

/// Per-iteration cap on due events dispatched before rechecking the
/// channel and the stop flag.
const DISPATCH_BATCH: usize = 4_096;

/// A message crossing between workers: deliver `msg` from `from` to `to`
/// no earlier than `at_us` microseconds after the run started.
struct Wire<M> {
    at_us: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// What a due heap entry does when it fires.
enum DueKind<M> {
    /// Deliver a network message to the owning node.
    Deliver { from: NodeId, msg: M },
    /// Fire a timer (raw id + actor tag) on the owning node.
    Timer { id: u64, tag: u64 },
}

/// An entry in a worker's local heap, ordered by `(at_us, seq)` so ties
/// break in scheduling order.
struct Due<M> {
    at_us: u64,
    seq: u64,
    node: NodeId,
    kind: DueKind<M>,
}

impl<M> PartialEq for Due<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl<M> Eq for Due<M> {}

impl<M> PartialOrd for Due<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Due<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// State shared by every worker thread (read-only after launch, except the
/// atomics).
struct Shared<M> {
    config: NetworkConfig,
    /// Site of each node, indexed by raw node id.
    node_site: Vec<SiteId>,
    /// Owning worker of each node, indexed by raw node id.
    node_worker: Vec<usize>,
    /// Inbound channel of each worker.
    senders: Vec<SyncSender<Wire<M>>>,
    /// Messages routed but not yet delivered, across all workers.
    in_flight: AtomicI64,
    /// Set once by the control thread; workers exit their loops on it.
    stop: AtomicBool,
}

/// Counters one worker hands back when its loop exits.
struct WorkerReport {
    stats: NetStats,
    backpressure: u64,
}

/// One worker: the actors it owns, its timer/delivery heap, its RNG and
/// its inbound channel.
struct Worker<M> {
    index: usize,
    actors: BTreeMap<u32, Box<dyn Actor<M> + Send>>,
    heap: BinaryHeap<Reverse<Due<M>>>,
    seq: u64,
    rng: StdRng,
    next_timer_id: u64,
    cancelled: HashSet<u64>,
    rx: Receiver<Wire<M>>,
    outbox: VecDeque<(usize, Wire<M>)>,
    stats: NetStats,
    backpressure: u64,
}

impl<M: Send> Worker<M> {
    /// Run one actor callback at the current wall-mapped time and apply the
    /// actions it buffered.
    // lint:allow(determinism): wall-mapped time is this runtime's contract
    fn invoke<F>(&mut self, shared: &Shared<M>, start: Instant, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<M>),
    {
        let Some(mut actor) = self.actors.remove(&node.0) else {
            return;
        };
        let now = SimTime::from_micros(start.elapsed().as_micros() as u64);
        let mut actions: Vec<Action<M>> = Vec::new();
        {
            let mut ctx = Context {
                now,
                node,
                actions: &mut actions,
                rng: &mut self.rng,
                next_timer_id: &mut self.next_timer_id,
            };
            f(actor.as_mut(), &mut ctx);
        }
        self.actors.insert(node.0, actor);
        let now_us = now.as_micros();
        for action in actions {
            self.apply(shared, now_us, node, action);
        }
    }

    fn apply(&mut self, shared: &Shared<M>, now_us: u64, from: NodeId, action: Action<M>) {
        match action {
            Action::Send { to, msg } => self.route(shared, now_us, from, to, msg),
            Action::SetTimer { id, delay, tag } => {
                self.seq += 1;
                self.heap.push(Reverse(Due {
                    at_us: now_us + delay.as_micros().max(1),
                    seq: self.seq,
                    node: from,
                    kind: DueKind::Timer { id: id.0, tag },
                }));
            }
            Action::CancelTimer(id) => {
                self.stats.timers_cancelled += 1;
                self.cancelled.insert(id.0);
            }
        }
    }

    /// Apply the network model (latency, jitter, loss) and schedule the
    /// delivery locally or ship it to the destination's worker.
    fn route(&mut self, shared: &Shared<M>, now_us: u64, from: NodeId, to: NodeId, msg: M) {
        self.stats.sent += 1;
        if to.0 as usize >= shared.node_site.len() {
            return;
        }
        let p = shared.config.loss_probability;
        if p > 0.0 && self.rng.gen::<f64>() < p {
            self.stats.dropped_loss += 1;
            return;
        }
        let base = shared.config.latency.one_way(
            shared.node_site[from.0 as usize],
            shared.node_site[to.0 as usize],
        );
        let mut lat_us = base.as_micros();
        if shared.config.jitter > 0.0 {
            let factor = 1.0 + shared.config.jitter * (2.0 * self.rng.gen::<f64>() - 1.0);
            lat_us = (lat_us as f64 * factor) as u64;
        }
        let at_us = now_us + lat_us.max(1);
        let dest = shared.node_worker[to.0 as usize];
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        if dest == self.index {
            self.seq += 1;
            self.heap.push(Reverse(Due {
                at_us,
                seq: self.seq,
                node: to,
                kind: DueKind::Deliver { from, msg },
            }));
        } else {
            self.post(
                shared,
                dest,
                Wire {
                    at_us,
                    from,
                    to,
                    msg,
                },
            );
        }
    }

    /// Non-blocking cross-worker send; parks in the outbox on backpressure.
    fn post(&mut self, shared: &Shared<M>, dest: usize, wire: Wire<M>) {
        if !self.outbox.is_empty() {
            // Preserve send order behind already-parked wires.
            self.outbox.push_back((dest, wire));
            return;
        }
        match shared.senders[dest].try_send(wire) {
            Ok(()) => {}
            Err(TrySendError::Full(wire)) => {
                self.backpressure += 1;
                self.outbox.push_back((dest, wire));
            }
            Err(TrySendError::Disconnected(_)) => {
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    fn flush_outbox(&mut self, shared: &Shared<M>) {
        while let Some((dest, wire)) = self.outbox.pop_front() {
            match shared.senders[dest].try_send(wire) {
                Ok(()) => {}
                Err(TrySendError::Full(wire)) => {
                    self.outbox.push_front((dest, wire));
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

    /// Move a received wire onto the local heap.
    fn accept(&mut self, wire: Wire<M>) {
        self.seq += 1;
        self.heap.push(Reverse(Due {
            at_us: wire.at_us,
            seq: self.seq,
            node: wire.to,
            kind: DueKind::Deliver {
                from: wire.from,
                msg: wire.msg,
            },
        }));
    }

    // lint:allow(determinism): wall-mapped time is this runtime's contract
    fn dispatch(&mut self, shared: &Shared<M>, start: Instant, due: Due<M>) {
        match due.kind {
            DueKind::Deliver { from, msg } => {
                self.stats.delivered += 1;
                self.invoke(shared, start, due.node, |actor, ctx| {
                    actor.on_message(ctx, from, msg)
                });
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            DueKind::Timer { id, tag } => {
                if self.cancelled.remove(&id) {
                    return;
                }
                self.stats.timers_fired += 1;
                self.invoke(shared, start, due.node, |actor, ctx| {
                    actor.on_timer(ctx, tag)
                });
            }
        }
    }

    /// The worker's event loop: flush the outbox, drain the channel,
    /// dispatch everything due, then sleep until the next deadline (or the
    /// next inbound wire, whichever comes first).
    // lint:allow(determinism): wall-mapped time is this runtime's contract
    fn run(mut self, shared: &Shared<M>, start: Instant) -> WorkerReport {
        let ids: Vec<u32> = self.actors.keys().copied().collect();
        for id in ids {
            self.invoke(shared, start, NodeId(id), |actor, ctx| actor.on_start(ctx));
        }
        while !shared.stop.load(Ordering::Relaxed) {
            self.flush_outbox(shared);
            let mut drained = 0;
            while drained < DRAIN_BATCH {
                match self.rx.try_recv() {
                    Ok(wire) => {
                        self.accept(wire);
                        drained += 1;
                    }
                    Err(_) => break,
                }
            }
            let now_us = start.elapsed().as_micros() as u64;
            let mut fired = 0;
            while fired < DISPATCH_BATCH {
                match self.heap.peek() {
                    Some(Reverse(due)) if due.at_us <= now_us => {}
                    _ => break,
                }
                let Reverse(due) = self.heap.pop().expect("peeked entry exists");
                self.dispatch(shared, start, due);
                fired += 1;
            }
            if drained == 0 && fired == 0 && self.outbox.is_empty() {
                let wait_us = match self.heap.peek() {
                    Some(Reverse(due)) => due
                        .at_us
                        .saturating_sub(start.elapsed().as_micros() as u64)
                        .clamp(20, 1_000),
                    None => 1_000,
                };
                match self.rx.recv_timeout(Duration::from_micros(wait_us)) {
                    Ok(wire) => self.accept(wire),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        WorkerReport {
            stats: self.stats,
            backpressure: self.backpressure,
        }
    }
}

/// What a [`ParallelRuntime`] run measured.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// Number of worker threads the run used.
    pub workers: usize,
    /// Wall-clock time from launch to the last worker joining.
    pub elapsed: Duration,
    /// Network counters merged over all workers.
    pub stats: NetStats,
    /// Cross-worker sends that found the destination channel full and had
    /// to park in an outbox (each parked wire counts once).
    pub backpressure: u64,
    /// Messages still routed-but-undelivered when the run stopped.
    pub undelivered: u64,
}

/// A multi-threaded actor runtime: the caller assigns each node to a
/// worker thread at registration time, then [`ParallelRuntime::run`]
/// drives every worker's event loop until a stop condition holds.
///
/// Node ids are assigned densely in registration order, exactly like
/// [`Simulation::add_node`](crate::Simulation::add_node), so directory
/// wiring built for the simulation works unchanged.
pub struct ParallelRuntime<M> {
    config: NetworkConfig,
    seed: u64,
    sites: Vec<String>,
    node_site: Vec<SiteId>,
    node_worker: Vec<usize>,
    staged: Vec<Vec<StagedActor<M>>>,
}

/// An actor staged for a worker thread, keyed by its node id.
type StagedActor<M> = (NodeId, Box<dyn Actor<M> + Send>);

impl<M: Send + 'static> ParallelRuntime<M> {
    /// Create a runtime with `workers` threads (clamped to at least 1).
    /// The seed derives each worker's RNG; scheduling is *not*
    /// deterministic (wall-clock interleavings differ run to run).
    pub fn new(config: NetworkConfig, workers: usize, seed: u64) -> Self {
        let workers = workers.max(1);
        ParallelRuntime {
            config,
            seed,
            sites: Vec::new(),
            node_site: Vec::new(),
            node_worker: Vec::new(),
            staged: (0..workers).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.staged.len()
    }

    /// Register a site (a latency-matrix endpoint, e.g. one datacenter of
    /// one shard).
    pub fn add_site(&mut self, name: impl Into<String>) -> SiteId {
        self.sites.push(name.into());
        SiteId(self.sites.len() as u32 - 1)
    }

    /// Register an actor at `site`, owned by worker `worker`. Returns the
    /// node's dense id. Panics if the site or worker is unknown.
    pub fn add_node(
        &mut self,
        site: SiteId,
        worker: usize,
        actor: Box<dyn Actor<M> + Send>,
    ) -> NodeId {
        assert!((site.0 as usize) < self.sites.len(), "unknown site");
        assert!(worker < self.staged.len(), "unknown worker");
        let node = NodeId(self.node_site.len() as u32);
        self.node_site.push(site);
        self.node_worker.push(worker);
        self.staged[worker].push((node, actor));
        node
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.node_site.len()
    }

    /// Launch the worker threads and run until `done()` returns true or
    /// `max_wall` elapses, whichever comes first. `done` is polled every
    /// millisecond on the control thread; share state with your actors
    /// (e.g. an `Arc<AtomicUsize>` of finished drivers) to signal it.
    pub fn run<F>(self, max_wall: Duration, mut done: F) -> ParallelReport
    where
        F: FnMut() -> bool,
    {
        let workers = self.num_workers();
        let mut senders = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Wire<M>>(CHANNEL_CAPACITY);
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            config: self.config,
            node_site: self.node_site,
            node_worker: self.node_worker,
            senders,
            in_flight: AtomicI64::new(0),
            stop: AtomicBool::new(false),
        });
        let mut worker_states: Vec<Worker<M>> = Vec::with_capacity(workers);
        for (index, (staged, rx)) in self.staged.into_iter().zip(receivers).enumerate() {
            worker_states.push(Worker {
                index,
                actors: staged.into_iter().map(|(n, a)| (n.0, a)).collect(),
                heap: BinaryHeap::new(),
                seq: 0,
                rng: StdRng::seed_from_u64(
                    self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (index as u64 + 1),
                ),
                // Worker-local counters offset into disjoint ranges so
                // TimerIds are globally unique.
                next_timer_id: (index as u64) << 48,
                cancelled: HashSet::new(),
                rx,
                outbox: VecDeque::new(),
                stats: NetStats::default(),
                backpressure: 0,
            });
        }

        // lint:allow(determinism): the run's epoch is real time by design
        let start = Instant::now();
        let mut reports: Vec<WorkerReport> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in worker_states.drain(..) {
                let shared = Arc::clone(&shared);
                handles.push(scope.spawn(move || worker.run(&shared, start)));
            }
            while start.elapsed() < max_wall && !done() {
                std::thread::sleep(Duration::from_millis(1));
            }
            shared.stop.store(true, Ordering::SeqCst);
            for handle in handles {
                reports.push(handle.join().expect("worker thread panicked"));
            }
        });
        let elapsed = start.elapsed();

        let mut stats = NetStats::default();
        let mut backpressure = 0;
        for report in &reports {
            let s = &report.stats;
            stats.sent += s.sent;
            stats.delivered += s.delivered;
            stats.dropped_loss += s.dropped_loss;
            stats.timers_fired += s.timers_fired;
            stats.timers_cancelled += s.timers_cancelled;
            backpressure += report.backpressure;
        }
        let undelivered = shared.in_flight.load(Ordering::SeqCst).max(0) as u64;
        ParallelReport {
            workers,
            elapsed,
            stats,
            backpressure,
            undelivered,
        }
    }

    /// Run for a fixed wall-clock span with no early-stop condition.
    pub fn run_for(self, wall: Duration) -> ParallelReport {
        self.run(wall, || false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::sync::atomic::AtomicUsize;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        target: NodeId,
        rounds: u32,
        done: Arc<AtomicUsize>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            ctx.send(self.target, Msg::Ping(0));
        }
        fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                if n + 1 < self.rounds {
                    ctx.send(self.target, Msg::Ping(n + 1));
                } else {
                    self.done.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }

    struct Ponger;

    impl Actor<Msg> for Ponger {
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    #[test]
    fn cross_worker_ping_pong_completes() {
        let config = NetworkConfig::uniform(SimDuration::from_micros(50));
        let mut rt: ParallelRuntime<Msg> = ParallelRuntime::new(config, 2, 7);
        let a = rt.add_site("a");
        let b = rt.add_site("b");
        let done = Arc::new(AtomicUsize::new(0));
        let ponger = rt.add_node(a, 0, Box::new(Ponger));
        rt.add_node(
            b,
            1,
            Box::new(Pinger {
                target: ponger,
                rounds: 25,
                done: done.clone(),
            }),
        );
        let flag = done.clone();
        let report = rt.run(Duration::from_secs(10), move || {
            flag.load(Ordering::SeqCst) == 1
        });
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(report.workers, 2);
        assert!(report.stats.delivered >= 50, "all rounds delivered");
        assert_eq!(report.stats.dropped_loss, 0);
    }

    struct TimerChain {
        left: u32,
        done: Arc<AtomicUsize>,
    }

    impl Actor<Msg> for TimerChain {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            let keep = ctx.set_timer(SimDuration::from_micros(200), 1);
            let drop = ctx.set_timer(SimDuration::from_micros(100), 2);
            let _ = keep;
            ctx.cancel_timer(drop);
        }
        fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, _msg: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
            assert_eq!(tag, 1, "cancelled timer must not fire");
            self.left -= 1;
            if self.left == 0 {
                self.done.fetch_add(1, Ordering::SeqCst);
            } else {
                let t = ctx.set_timer(SimDuration::from_micros(200), 1);
                let dead = ctx.set_timer(SimDuration::from_micros(100), 2);
                let _ = t;
                ctx.cancel_timer(dead);
            }
        }
    }

    #[test]
    fn timers_fire_and_cancel_per_worker() {
        let config = NetworkConfig::uniform(SimDuration::from_micros(50));
        let mut rt: ParallelRuntime<Msg> = ParallelRuntime::new(config, 1, 3);
        let site = rt.add_site("only");
        let done = Arc::new(AtomicUsize::new(0));
        rt.add_node(
            site,
            0,
            Box::new(TimerChain {
                left: 5,
                done: done.clone(),
            }),
        );
        let flag = done.clone();
        let report = rt.run(Duration::from_secs(10), move || {
            flag.load(Ordering::SeqCst) == 1
        });
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(report.stats.timers_fired, 5);
        assert_eq!(report.stats.timers_cancelled, 5);
    }
}
