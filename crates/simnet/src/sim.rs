//! The simulation driver: event queue, actor registry and run loop.

use crate::actor::{Action, Actor, Context, TimerId};
use crate::network::{Delivery, DropReason, Network, NetworkConfig, SiteId};
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Identifier of a node (an actor instance) in the simulation.
///
/// Node ids are dense and assigned in registration order, which makes them
/// usable as vector indices in protocol crates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, tag: u64 },
    Start { node: NodeId },
    Recover { node: NodeId },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event simulation over actors exchanging messages
/// of type `M`.
pub struct Simulation<M> {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event<M>>>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    network: Network,
    rng: StdRng,
    stats: NetStats,
    cancelled_timers: HashSet<TimerId>,
    next_timer_id: u64,
    site_names: Vec<String>,
    started: bool,
}

impl<M: Clone + 'static> Simulation<M> {
    /// Create an empty simulation with the given network configuration and
    /// RNG seed. The same seed and the same sequence of calls produce the
    /// same execution, bit for bit.
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            actors: Vec::new(),
            network: Network::new(config),
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            cancelled_timers: HashSet::new(),
            next_timer_id: 0,
            site_names: Vec::new(),
            started: false,
        }
    }

    /// Register a site (datacenter) and return its id.
    pub fn add_site(&mut self, name: impl Into<String>) -> SiteId {
        let id = SiteId(self.site_names.len() as u32);
        self.site_names.push(name.into());
        id
    }

    /// The human-readable name a site was registered with.
    pub fn site_name(&self, site: SiteId) -> &str {
        &self.site_names[site.0 as usize]
    }

    /// Number of registered sites.
    pub fn site_count(&self) -> usize {
        self.site_names.len()
    }

    /// Add an actor placed at `site`; returns its node id. If the simulation
    /// has already started running, the actor's `on_start` is scheduled for
    /// the current instant.
    pub fn add_node(&mut self, site: SiteId, actor: Box<dyn Actor<M>>) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.network.register_node(id, site);
        if self.started {
            self.push_event(self.now, EventKind::Start { node: id });
        }
        id
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to network statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Read access to the network model (placement, liveness, partitions).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network model for failure injection.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Immutable access to a registered actor, downcast by the caller.
    ///
    /// Returns `None` while that actor is being invoked (never observable
    /// from outside the run loop).
    pub fn actor(&self, node: NodeId) -> Option<&dyn Actor<M>> {
        self.actors
            .get(node.0 as usize)
            .and_then(|slot| slot.as_deref())
    }

    /// Crash a node: undelivered messages to it and its pending timers are
    /// discarded when they come due; new messages to/from it are dropped.
    pub fn crash_node(&mut self, node: NodeId) {
        self.network.set_node_down(node);
    }

    /// Recover a crashed node; the actor's `on_recover` callback runs at the
    /// current virtual time.
    pub fn recover_node(&mut self, node: NodeId) {
        self.network.set_node_up(node);
        self.push_event(self.now, EventKind::Recover { node });
    }

    /// Take a whole site offline.
    pub fn crash_site(&mut self, site: SiteId) {
        self.network.set_site_down(site);
    }

    /// Bring a site back online; every node in the site gets `on_recover`.
    pub fn recover_site(&mut self, site: SiteId) {
        self.network.set_site_up(site);
        for idx in 0..self.actors.len() {
            let node = NodeId(idx as u32);
            if self.network.site_of(node) == site && self.network.is_node_up(node) {
                self.push_event(self.now, EventKind::Recover { node });
            }
        }
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for idx in 0..self.actors.len() {
                self.push_event(
                    SimTime::ZERO,
                    EventKind::Start {
                        node: NodeId(idx as u32),
                    },
                );
            }
        }
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(Reverse(event)) = self.events.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "time went backwards");
        // Cancelled timers are purged lazily without advancing the visible
        // clock, so a cancelled retransmission timer far in the future does
        // not make an otherwise-finished simulation look longer than it was.
        if let EventKind::Timer { id, .. } = &event.kind {
            if self.cancelled_timers.remove(id) {
                self.stats.timers_cancelled += 1;
                return true;
            }
        }
        self.now = event.time;
        match event.kind {
            EventKind::Deliver { from, to, msg } => {
                if !self.network.is_node_up(to) {
                    self.stats.dropped_down += 1;
                } else {
                    self.stats.delivered += 1;
                    self.invoke(to, |actor, ctx| actor.on_message(ctx, from, msg));
                }
            }
            EventKind::Timer { node, id: _, tag } => {
                if !self.network.is_node_up(node) {
                    self.stats.timers_suppressed += 1;
                } else {
                    self.stats.timers_fired += 1;
                    self.invoke(node, |actor, ctx| actor.on_timer(ctx, tag));
                }
            }
            EventKind::Start { node } => {
                self.invoke(node, |actor, ctx| actor.on_start(ctx));
            }
            EventKind::Recover { node } => {
                if self.network.is_node_up(node) {
                    self.invoke(node, |actor, ctx| actor.on_recover(ctx));
                }
            }
        }
        true
    }

    fn invoke<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<M>),
    {
        let mut actor = match self.actors[node.0 as usize].take() {
            Some(a) => a,
            None => return,
        };
        let mut actions: Vec<Action<M>> = Vec::new();
        {
            let mut ctx = Context {
                now: self.now,
                node,
                actions: &mut actions,
                rng: &mut self.rng,
                next_timer_id: &mut self.next_timer_id,
            };
            f(actor.as_mut(), &mut ctx);
        }
        self.actors[node.0 as usize] = Some(actor);
        for action in actions {
            self.apply(node, action);
        }
    }

    fn apply(&mut self, source: NodeId, action: Action<M>) {
        match action {
            Action::Send { to, msg } => {
                self.stats.sent += 1;
                match self.network.route(source, to, &mut self.rng) {
                    Delivery::Deliver(latency) => {
                        // Chaos policies perturb only messages the base
                        // model decided to deliver; with every probability
                        // at zero (the default) no extra randomness is
                        // drawn, so pre-chaos traces are reproduced
                        // bit for bit.
                        let chaos = self.network.config().chaos.clone();
                        let mut latency = latency;
                        if chaos.burst_probability > 0.0
                            && self.rng.gen::<f64>() < chaos.burst_probability
                        {
                            self.stats.delay_bursts += 1;
                            latency = latency.mul_f64(chaos.burst_factor.max(1.0));
                        }
                        if chaos.reorder_probability > 0.0
                            && self.rng.gen::<f64>() < chaos.reorder_probability
                        {
                            self.stats.reordered += 1;
                            latency += chaos.reorder_delay;
                        }
                        if chaos.duplicate_probability > 0.0
                            && self.rng.gen::<f64>() < chaos.duplicate_probability
                        {
                            self.stats.duplicated += 1;
                            self.push_event(
                                self.now + latency,
                                EventKind::Deliver {
                                    from: source,
                                    to,
                                    msg: msg.clone(),
                                },
                            );
                        }
                        self.push_event(
                            self.now + latency,
                            EventKind::Deliver {
                                from: source,
                                to,
                                msg,
                            },
                        );
                    }
                    Delivery::Drop(reason) => match reason {
                        DropReason::RandomLoss => self.stats.dropped_loss += 1,
                        DropReason::Partitioned => self.stats.dropped_partition += 1,
                        DropReason::SourceDown | DropReason::DestinationDown => {
                            self.stats.dropped_down += 1
                        }
                    },
                }
            }
            Action::SetTimer { id, delay, tag } => {
                self.push_event(
                    self.now + delay,
                    EventKind::Timer {
                        node: source,
                        id,
                        tag,
                    },
                );
            }
            Action::CancelTimer(id) => {
                self.cancelled_timers.insert(id);
            }
        }
    }

    /// Run until the event queue drains. Returns the number of events
    /// processed. Panics if more than `max_events` events are processed,
    /// which guards against protocol livelock in tests.
    pub fn run_until_idle(&mut self) -> u64 {
        self.run_until_idle_capped(u64::MAX)
    }

    /// Like [`Simulation::run_until_idle`] but with an explicit event cap.
    pub fn run_until_idle_capped(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while self.step() {
            processed += 1;
            assert!(
                processed <= max_events,
                "simulation exceeded {max_events} events; possible livelock"
            );
        }
        processed
    }

    /// Run until the virtual clock reaches `deadline` (or the queue drains).
    /// Events at exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.ensure_started();
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.time > deadline {
                break;
            }
            self.step();
            processed += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Run for an additional `span` of virtual time.
    pub fn run_for(&mut self, span: SimDuration) -> u64 {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Echo {
        seen: Vec<u32>,
    }

    impl Actor<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(v) = msg {
                self.seen.push(v);
                ctx.send(from, Msg::Pong(v));
            }
        }
    }

    struct Driver {
        target: NodeId,
        rounds: u32,
        done: u32,
        retry_timer: Option<TimerId>,
    }

    impl Actor<Msg> for Driver {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            ctx.send(self.target, Msg::Ping(0));
            self.retry_timer = Some(ctx.set_timer(SimDuration::from_secs(2), 0));
        }
        fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(v) = msg {
                self.done = v + 1;
                if let Some(t) = self.retry_timer.take() {
                    ctx.cancel_timer(t);
                }
                if self.done < self.rounds {
                    ctx.send(self.target, Msg::Ping(self.done));
                    self.retry_timer = Some(ctx.set_timer(SimDuration::from_secs(2), 0));
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<Msg>, _tag: u64) {
            // Retransmit the outstanding ping.
            ctx.send(self.target, Msg::Ping(self.done));
            self.retry_timer = Some(ctx.set_timer(SimDuration::from_secs(2), 0));
        }
    }

    fn two_site_sim(loss: f64, seed: u64) -> (Simulation<Msg>, NodeId, NodeId) {
        let mut cfg = NetworkConfig::uniform(SimDuration::from_micros(250)).with_loss(loss);
        let mut sim = Simulation::new(cfg.clone(), seed);
        let v = sim.add_site("virginia");
        let o = sim.add_site("oregon");
        cfg.latency.set_rtt(v, o, SimDuration::from_millis(90));
        *sim.network_mut().config_mut() = cfg;
        let echo = sim.add_node(o, Box::new(Echo::default()));
        let driver = sim.add_node(
            v,
            Box::new(Driver {
                target: echo,
                rounds: 5,
                done: 0,
                retry_timer: None,
            }),
        );
        (sim, echo, driver)
    }

    #[test]
    fn request_reply_advances_virtual_time_by_rtt() {
        let (mut sim, _echo, _driver) = two_site_sim(0.0, 1);
        sim.run_until_idle();
        // 5 round trips at 90ms RTT each.
        assert_eq!(sim.now().as_micros(), 5 * 90_000);
        assert_eq!(sim.stats().delivered, 10);
        assert_eq!(sim.stats().timers_cancelled, 5);
    }

    #[test]
    fn lossy_network_retries_until_done() {
        let (mut sim, echo, _driver) = two_site_sim(0.3, 7);
        sim.run_until_idle_capped(100_000);
        let echo_actor = sim.actor(echo).unwrap();
        // We can't downcast without Any, but stats tell the story: everything
        // eventually delivered despite drops.
        let _ = echo_actor;
        assert!(sim.stats().dropped_loss > 0, "expected some losses");
        assert!(sim.stats().delivered >= 10);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let (mut a, _, _) = two_site_sim(0.25, 99);
        let (mut b, _, _) = two_site_sim(0.25, 99);
        a.run_until_idle_capped(100_000);
        b.run_until_idle_capped(100_000);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let (mut a, _, _) = two_site_sim(0.25, 1);
        let (mut b, _, _) = two_site_sim(0.25, 3);
        a.run_until_idle_capped(100_000);
        b.run_until_idle_capped(100_000);
        assert_ne!(
            (a.stats().dropped_loss, a.now()),
            (b.stats().dropped_loss, b.now())
        );
    }

    #[test]
    fn crashed_destination_drops_messages_and_timers_suppressed() {
        let (mut sim, echo, _driver) = two_site_sim(0.0, 5);
        sim.crash_node(echo);
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.stats().delivered, 0);
        assert!(sim.stats().dropped_down > 0);
        sim.recover_node(echo);
        sim.run_until_idle_capped(10_000);
        assert!(sim.stats().delivered >= 10);
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, _echo, _driver) = two_site_sim(0.0, 5);
        sim.run_until(SimTime::from_micros(100_000));
        assert_eq!(sim.now(), SimTime::from_micros(100_000));
        assert!(!sim.is_idle());
        sim.run_until_idle();
        assert!(sim.is_idle());
    }

    #[test]
    fn site_crash_and_recovery() {
        let (mut sim, echo, _driver) = two_site_sim(0.0, 5);
        let oregon = sim.network().site_of(echo);
        sim.crash_site(oregon);
        sim.run_for(SimDuration::from_secs(4));
        assert_eq!(sim.stats().delivered, 0);
        sim.recover_site(oregon);
        sim.run_until_idle_capped(10_000);
        assert!(sim.stats().delivered >= 10);
    }

    #[test]
    fn chaos_duplication_delivers_extra_copies() {
        let (mut sim, _echo, _driver) = two_site_sim(0.0, 11);
        sim.network_mut().config_mut().chaos =
            crate::network::ChaosConfig::default().with_duplicates(1.0);
        sim.run_until_idle_capped(10_000);
        let stats = sim.stats();
        assert_eq!(stats.duplicated, stats.sent);
        // Every send arrives twice: the original plus the duplicate.
        assert_eq!(stats.delivered, 2 * stats.sent);
    }

    #[test]
    fn chaos_reorder_and_bursts_stretch_latency_and_count() {
        let (mut sim, _echo, _driver) = two_site_sim(0.0, 13);
        sim.network_mut().config_mut().chaos = crate::network::ChaosConfig::default()
            .with_reordering(1.0, SimDuration::from_millis(10))
            .with_bursts(1.0, 3.0);
        sim.run_until_idle_capped(100_000);
        let stats = sim.stats().clone();
        assert_eq!(stats.reordered, stats.sent);
        assert_eq!(stats.delay_bursts, stats.sent);
        // 5 round trips, each one-way hop 45ms * 3 (burst) + 10ms (reorder).
        assert_eq!(sim.now().as_micros(), 10 * (45_000 * 3 + 10_000));
    }

    #[test]
    fn chaos_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let (mut sim, _, _) = two_site_sim(0.2, seed);
            sim.network_mut().config_mut().chaos = crate::network::ChaosConfig::default()
                .with_duplicates(0.3)
                .with_reordering(0.3, SimDuration::from_millis(5))
                .with_bursts(0.2, 2.0);
            sim.run_until_idle_capped(100_000);
            (sim.now(), sim.stats().clone())
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn late_added_node_gets_started() {
        let mut sim: Simulation<Msg> = Simulation::new(NetworkConfig::default(), 3);
        let site = sim.add_site("dc");
        sim.run_for(SimDuration::from_secs(1));
        let echo = sim.add_node(site, Box::new(Echo::default()));
        let _driver = sim.add_node(
            site,
            Box::new(Driver {
                target: echo,
                rounds: 1,
                done: 0,
                retry_timer: None,
            }),
        );
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 2);
    }
}
