//! # simnet — deterministic discrete-event simulation kernel
//!
//! The paper evaluates its protocols on Amazon EC2 nodes spread over three
//! regions (Virginia, Oregon, Northern California) communicating over UDP
//! with a two-second message timeout. This crate replaces that physical
//! testbed with a deterministic discrete-event simulator:
//!
//! * **Virtual time** ([`SimTime`], [`SimDuration`]) measured in
//!   microseconds. Experiments that take minutes of wall-clock time on EC2
//!   run in milliseconds here, with identical message orderings for a given
//!   seed.
//! * **Actors** ([`Actor`]) are protocol participants (transaction services,
//!   transaction clients, workload drivers). They react to delivered
//!   messages and timer expirations and emit new messages/timers through a
//!   [`Context`].
//! * **Network model** ([`Network`], [`LatencyMatrix`]) with per-site-pair
//!   round-trip latencies, jitter, independent message loss, partitions and
//!   site outages — exactly the failure model assumed in §2.2 of the paper
//!   ("either the message arrives before a known timeout or it is lost").
//!
//! The kernel is generic over the message type `M`, so protocol crates define
//! their own strongly-typed message enums.
//!
//! ## Example
//!
//! ```
//! use simnet::{Actor, Context, NodeId, SimDuration, Simulation, NetworkConfig};
//!
//! #[derive(Clone, Debug)]
//! enum Msg { Ping, Pong }
//!
//! struct Pinger { target: NodeId, pongs: u32 }
//! struct Ponger;
//!
//! impl Actor<Msg> for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context<Msg>) {
//!         ctx.send(self.target, Msg::Ping);
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
//!         if matches!(msg, Msg::Pong) {
//!             self.pongs += 1;
//!             if self.pongs < 3 {
//!                 ctx.send(self.target, Msg::Ping);
//!             }
//!         }
//!     }
//! }
//!
//! impl Actor<Msg> for Ponger {
//!     fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
//!         if matches!(msg, Msg::Ping) {
//!             ctx.send(from, Msg::Pong);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(NetworkConfig::uniform(SimDuration::from_millis(10)), 42);
//! let site = sim.add_site("dc1");
//! let ponger = sim.add_node(site, Box::new(Ponger));
//! let _pinger = sim.add_node(site, Box::new(Pinger { target: ponger, pongs: 0 }));
//! sim.run_until_idle();
//! assert!(sim.now() >= SimDuration::from_millis(60).after(simnet::SimTime::ZERO));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod chaos;
mod network;
mod parallel;
mod sim;
mod stats;
mod time;

pub use actor::{Action, Actor, Context, TimerId};
pub use chaos::{ChaosEvent, ChaosSchedule, ChaosSpec};
pub use network::{ChaosConfig, LatencyMatrix, Network, NetworkConfig, SiteId};
pub use parallel::{ParallelReport, ParallelRuntime};
pub use sim::{NodeId, Simulation};
pub use stats::NetStats;
pub use time::{SimDuration, SimTime};
