//! Virtual time primitives.
//!
//! The simulator measures time in whole microseconds. Microsecond resolution
//! is fine enough to distinguish intra-datacenter hops (hundreds of
//! microseconds) while keeping arithmetic in `u64` exact for any plausible
//! experiment length.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since an earlier instant.
    ///
    /// Saturates to zero if `earlier` is in the future, which keeps latency
    /// accounting robust against reordered bookkeeping.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional milliseconds (useful for sub-millisecond RTTs).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The instant this duration after `start`.
    pub fn after(self, start: SimTime) -> SimTime {
        start + self
    }

    /// Multiply the duration by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale the duration by a floating-point factor (used for jitter).
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Integer division of two durations, as a float (e.g. RTT ratios).
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            f64::INFINITY
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::ZERO;
        let d = SimDuration::from_millis(90);
        let t1 = t0 + d;
        assert_eq!(t1.as_micros(), 90_000);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.since(t0), d);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(50);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn scaling_and_ratio() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
        assert_eq!(d.saturating_mul(3), SimDuration::from_millis(30));
        assert!((d.ratio(SimDuration::from_millis(5)) - 2.0).abs() < 1e-9);
        assert!(d.ratio(SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn display_is_in_milliseconds() {
        assert_eq!(format!("{}", SimDuration::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", SimTime::from_micros(250)), "0.250ms");
    }
}
