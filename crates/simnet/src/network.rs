//! The simulated wide-area network.
//!
//! Nodes live in *sites* (datacenters). Message latency between two nodes is
//! drawn from a per-site-pair latency matrix plus optional multiplicative
//! jitter; messages may be lost independently with a configurable
//! probability, dropped by a partition, or dropped because either endpoint
//! is down. This mirrors the paper's assumption that a message either
//! arrives before a known timeout or is lost (§2.2).

use crate::sim::NodeId;
use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Identifier for a site (datacenter).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u32);

/// One-way latency configuration between sites.
#[derive(Clone, Debug, Default)]
pub struct LatencyMatrix {
    /// One-way latency per ordered site pair. Missing pairs fall back to the
    /// reverse pair, then to `default_remote`.
    one_way: HashMap<(SiteId, SiteId), SimDuration>,
    /// One-way latency between two nodes of the same site.
    intra_site: SimDuration,
    /// Fallback one-way latency for unknown site pairs.
    default_remote: SimDuration,
}

impl LatencyMatrix {
    /// Create a matrix with the given intra-site one-way latency and a
    /// default remote one-way latency for pairs not set explicitly.
    pub fn new(intra_site: SimDuration, default_remote: SimDuration) -> Self {
        LatencyMatrix {
            one_way: HashMap::new(),
            intra_site,
            default_remote,
        }
    }

    /// Set the **round-trip** latency between two sites; the stored one-way
    /// latency is half of it (symmetric links).
    pub fn set_rtt(&mut self, a: SiteId, b: SiteId, rtt: SimDuration) -> &mut Self {
        let one_way = SimDuration::from_micros(rtt.as_micros() / 2);
        self.one_way.insert((a, b), one_way);
        self.one_way.insert((b, a), one_way);
        self
    }

    /// Set the one-way latency between two sites directly (both directions).
    pub fn set_one_way(&mut self, a: SiteId, b: SiteId, lat: SimDuration) -> &mut Self {
        self.one_way.insert((a, b), lat);
        self.one_way.insert((b, a), lat);
        self
    }

    /// The one-way latency from site `a` to site `b`.
    pub fn one_way(&self, a: SiteId, b: SiteId) -> SimDuration {
        if a == b {
            return self.intra_site;
        }
        self.one_way
            .get(&(a, b))
            .or_else(|| self.one_way.get(&(b, a)))
            .copied()
            .unwrap_or(self.default_remote)
    }

    /// The round-trip latency between two sites.
    pub fn rtt(&self, a: SiteId, b: SiteId) -> SimDuration {
        self.one_way(a, b) + self.one_way(b, a)
    }
}

/// Chaos policies applied to messages that the base model decided to
/// deliver: independent duplication, reordering (holding a message back so
/// later sends overtake it) and delay bursts. All probabilities default to
/// zero, in which case the model draws no extra randomness and behaves
/// bit-for-bit like the pre-chaos network.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Probability that a delivered message is delivered **twice** (the
    /// duplicate arrives with an independently perturbed delay).
    pub duplicate_probability: f64,
    /// Probability that a delivered message is held back by
    /// [`ChaosConfig::reorder_delay`], letting messages sent after it
    /// overtake it.
    pub reorder_probability: f64,
    /// Extra one-way delay applied to reordered messages.
    pub reorder_delay: SimDuration,
    /// Probability that a message hits a delay burst.
    pub burst_probability: f64,
    /// Latency multiplier applied during a delay burst (clamped to ≥ 1).
    pub burst_factor: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_delay: SimDuration::ZERO,
            burst_probability: 0.0,
            burst_factor: 1.0,
        }
    }
}

impl ChaosConfig {
    /// Builder-style: set the duplicate-delivery probability.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.duplicate_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Builder-style: set the reordering probability and hold-back delay.
    pub fn with_reordering(mut self, p: f64, delay: SimDuration) -> Self {
        self.reorder_probability = p.clamp(0.0, 1.0);
        self.reorder_delay = delay;
        self
    }

    /// Builder-style: set the delay-burst probability and multiplier.
    pub fn with_bursts(mut self, p: f64, factor: f64) -> Self {
        self.burst_probability = p.clamp(0.0, 1.0);
        self.burst_factor = factor.max(1.0);
        self
    }

    /// Whether any chaos policy can fire (any probability above zero).
    pub fn is_active(&self) -> bool {
        self.duplicate_probability > 0.0
            || self.reorder_probability > 0.0
            || self.burst_probability > 0.0
    }
}

/// Static configuration of the network model.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Latencies between sites.
    pub latency: LatencyMatrix,
    /// Independent probability that any message is silently dropped.
    pub loss_probability: f64,
    /// Multiplicative jitter: the delivery latency is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Duplication / reordering / delay-burst policies (inactive by
    /// default).
    pub chaos: ChaosConfig,
}

impl NetworkConfig {
    /// A loss-free, jitter-free network where every one-way hop (including
    /// intra-site) takes `one_way`.
    pub fn uniform(one_way: SimDuration) -> Self {
        NetworkConfig {
            latency: LatencyMatrix::new(one_way, one_way),
            loss_probability: 0.0,
            jitter: 0.0,
            chaos: ChaosConfig::default(),
        }
    }

    /// Builder-style: set the message loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Builder-style: set the jitter fraction.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Builder-style: set the chaos policies.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::uniform(SimDuration::from_micros(250))
    }
}

/// The fate decided for an individual message by the network model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the given one-way delay.
    Deliver(SimDuration),
    /// Silently drop (random loss, partition or dead endpoint).
    Drop(DropReason),
}

/// Why a message was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss drawn against `loss_probability`.
    RandomLoss,
    /// The source and destination sites are partitioned from each other.
    Partitioned,
    /// The source node is down.
    SourceDown,
    /// The destination node is down.
    DestinationDown,
}

/// Runtime state of the network: node placement, liveness and partitions.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    node_site: Vec<SiteId>,
    down_nodes: HashSet<NodeId>,
    down_sites: HashSet<SiteId>,
    /// Unordered site pairs that cannot exchange messages.
    partitions: HashSet<(SiteId, SiteId)>,
}

impl Network {
    /// Create a network with no nodes.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            node_site: Vec::new(),
            down_nodes: HashSet::new(),
            down_sites: HashSet::new(),
            partitions: HashSet::new(),
        }
    }

    /// Read access to the static configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Mutable access to the static configuration (e.g. to change the loss
    /// rate mid-experiment).
    pub fn config_mut(&mut self) -> &mut NetworkConfig {
        &mut self.config
    }

    pub(crate) fn register_node(&mut self, node: NodeId, site: SiteId) {
        let idx = node.0 as usize;
        if self.node_site.len() <= idx {
            self.node_site.resize(idx + 1, site);
        }
        self.node_site[idx] = site;
    }

    /// The site a node belongs to.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.node_site[node.0 as usize]
    }

    /// Mark a single node as crashed: all messages to/from it are dropped and
    /// its timers are suppressed until [`Network::set_node_up`].
    pub fn set_node_down(&mut self, node: NodeId) {
        self.down_nodes.insert(node);
    }

    /// Bring a single node back up.
    pub fn set_node_up(&mut self, node: NodeId) {
        self.down_nodes.remove(&node);
    }

    /// Take an entire site (datacenter) offline.
    pub fn set_site_down(&mut self, site: SiteId) {
        self.down_sites.insert(site);
    }

    /// Bring a site back online.
    pub fn set_site_up(&mut self, site: SiteId) {
        self.down_sites.remove(&site);
    }

    /// Whether a node is currently reachable (node and its site both up).
    pub fn is_node_up(&self, node: NodeId) -> bool {
        !self.down_nodes.contains(&node) && !self.down_sites.contains(&self.site_of(node))
    }

    /// Partition two sites from each other (messages both ways are dropped).
    pub fn partition(&mut self, a: SiteId, b: SiteId) {
        self.partitions.insert(Self::pair(a, b));
    }

    /// Heal a partition between two sites.
    pub fn heal(&mut self, a: SiteId, b: SiteId) {
        self.partitions.remove(&Self::pair(a, b));
    }

    /// Heal all partitions.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    fn pair(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn partitioned(&self, a: SiteId, b: SiteId) -> bool {
        self.partitions.contains(&Self::pair(a, b))
    }

    /// Decide the fate of a message from `from` to `to` using the provided RNG.
    pub fn route(&self, from: NodeId, to: NodeId, rng: &mut StdRng) -> Delivery {
        if !self.is_node_up(from) {
            return Delivery::Drop(DropReason::SourceDown);
        }
        if !self.is_node_up(to) {
            return Delivery::Drop(DropReason::DestinationDown);
        }
        let (sa, sb) = (self.site_of(from), self.site_of(to));
        if self.partitioned(sa, sb) {
            return Delivery::Drop(DropReason::Partitioned);
        }
        if self.config.loss_probability > 0.0 && rng.gen::<f64>() < self.config.loss_probability {
            return Delivery::Drop(DropReason::RandomLoss);
        }
        let base = self.config.latency.one_way(sa, sb);
        let latency = if self.config.jitter > 0.0 {
            let factor = 1.0 + self.config.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            base.mul_f64(factor.max(0.0))
        } else {
            base
        };
        // A delivery must advance time to preserve causality even intra-site.
        Delivery::Deliver(SimDuration::from_micros(latency.as_micros().max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sites() -> (SiteId, SiteId, SiteId) {
        (SiteId(0), SiteId(1), SiteId(2))
    }

    #[test]
    fn latency_matrix_lookup_and_fallback() {
        let (v, o, c) = sites();
        let mut m = LatencyMatrix::new(SimDuration::from_micros(250), SimDuration::from_millis(50));
        m.set_rtt(v, o, SimDuration::from_millis(90));
        assert_eq!(m.one_way(v, o), SimDuration::from_millis(45));
        assert_eq!(m.one_way(o, v), SimDuration::from_millis(45));
        assert_eq!(m.rtt(v, o), SimDuration::from_millis(90));
        // Unknown pair falls back to the default remote latency.
        assert_eq!(m.one_way(v, c), SimDuration::from_millis(50));
        // Same site uses the intra-site latency.
        assert_eq!(m.one_way(v, v), SimDuration::from_micros(250));
    }

    fn test_net(loss: f64) -> (Network, NodeId, NodeId) {
        let (v, o, _) = sites();
        let mut cfg = NetworkConfig::uniform(SimDuration::from_millis(1)).with_loss(loss);
        cfg.latency.set_rtt(v, o, SimDuration::from_millis(90));
        let mut net = Network::new(cfg);
        let a = NodeId(0);
        let b = NodeId(1);
        net.register_node(a, v);
        net.register_node(b, o);
        (net, a, b)
    }

    #[test]
    fn routing_uses_site_latency() {
        let (net, a, b) = test_net(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        match net.route(a, b, &mut rng) {
            Delivery::Deliver(d) => assert_eq!(d, SimDuration::from_millis(45)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn down_nodes_and_partitions_drop_messages() {
        let (mut net, a, b) = test_net(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        net.set_node_down(b);
        assert_eq!(
            net.route(a, b, &mut rng),
            Delivery::Drop(DropReason::DestinationDown)
        );
        net.set_node_up(b);
        net.set_site_down(net.site_of(a));
        assert_eq!(
            net.route(a, b, &mut rng),
            Delivery::Drop(DropReason::SourceDown)
        );
        net.set_site_up(net.site_of(a));
        net.partition(net.site_of(a), net.site_of(b));
        assert_eq!(
            net.route(a, b, &mut rng),
            Delivery::Drop(DropReason::Partitioned)
        );
        net.heal_all();
        assert!(matches!(net.route(a, b, &mut rng), Delivery::Deliver(_)));
    }

    #[test]
    fn total_loss_drops_everything_and_no_loss_drops_nothing() {
        let (net, a, b) = test_net(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(
                net.route(a, b, &mut rng),
                Delivery::Drop(DropReason::RandomLoss)
            );
        }
        let (net, a, b) = test_net(0.0);
        for _ in 0..50 {
            assert!(matches!(net.route(a, b, &mut rng), Delivery::Deliver(_)));
        }
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let (v, o, _) = sites();
        let mut cfg = NetworkConfig::uniform(SimDuration::from_millis(1)).with_jitter(0.2);
        cfg.latency.set_rtt(v, o, SimDuration::from_millis(100));
        let mut net = Network::new(cfg);
        let a = NodeId(0);
        let b = NodeId(1);
        net.register_node(a, v);
        net.register_node(b, o);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            if let Delivery::Deliver(d) = net.route(a, b, &mut rng) {
                let ms = d.as_millis_f64();
                assert!((40.0..=60.0).contains(&ms), "latency {ms}ms out of bounds");
            } else {
                panic!("should deliver");
            }
        }
    }
}
