//! Network-level statistics collected by the simulation kernel.

/// Counters describing everything the simulated network did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network by actors.
    pub sent: u64,
    /// Messages delivered to a destination actor.
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub dropped_loss: u64,
    /// Messages dropped because of a partition.
    pub dropped_partition: u64,
    /// Messages dropped because the source or destination was down.
    pub dropped_down: u64,
    /// Timers that fired.
    pub timers_fired: u64,
    /// Timers cancelled before firing.
    pub timers_cancelled: u64,
    /// Timers suppressed because their owner was down when they fired.
    pub timers_suppressed: u64,
    /// Extra deliveries injected by the chaos duplication policy (each one
    /// also counts in `delivered` when it arrives).
    pub duplicated: u64,
    /// Deliveries held back by the chaos reordering policy.
    pub reordered: u64,
    /// Deliveries stretched by the chaos delay-burst policy.
    pub delay_bursts: u64,
}

impl NetStats {
    /// Total messages dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_partition + self.dropped_down
    }

    /// Fraction of sent messages that were delivered (1.0 when nothing sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_sums_all_drop_reasons() {
        let s = NetStats {
            dropped_loss: 2,
            dropped_partition: 3,
            dropped_down: 4,
            ..Default::default()
        };
        assert_eq!(s.dropped(), 9);
    }

    #[test]
    fn delivery_ratio_handles_zero_sent() {
        let s = NetStats::default();
        assert_eq!(s.delivery_ratio(), 1.0);
        let s = NetStats {
            sent: 10,
            delivered: 7,
            ..Default::default()
        };
        assert!((s.delivery_ratio() - 0.7).abs() < 1e-12);
    }
}
