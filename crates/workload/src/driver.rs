//! One benchmark client thread, as a simulation actor.
//!
//! The driver owns a [`Session`] and can keep up to
//! [`DriverConfig::max_open`] transactions open (and committing)
//! concurrently — the paper's YCSB thread is `max_open == 1`; higher
//! values model an application instance multiplexing requests over one
//! client library, which is what the submitted commit route
//! ([`mdstore::CommitRoute::Submitted`], selected via the session's
//! [`mdstore::ClientConfig::route`]) exists to serve.

use crate::zipf::{KeyDistribution, KeySampler};
use mdstore::{ClientAction, ClientConfig, Directory, Msg, RunMetrics, Session, TxnHandle};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Actor, Context, NodeId, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;
use walog::{AttrId, GroupId, KeyId};

/// Metrics sink shared between a driver actor and the experiment harness.
pub type SharedMetrics = Arc<Mutex<RunMetrics>>;

/// Reserved timer tag used by the driver itself (session timers use the
/// tags the session allocates, which start at 1).
const START_TXN_TAG: u64 = u64::MAX;
/// Base of the per-transaction "execute the next operation" tags: the tag
/// for a transaction is `OP_TAG_BASE + handle.raw()`. Session tags and
/// handles both count up from 1, so the two ranges can never meet in any
/// realistic run.
const OP_TAG_BASE: u64 = u64::MAX >> 1;

/// Configuration of one benchmark client thread.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Transaction group to operate on (interned once at driver start).
    pub group: String,
    /// Row key of the entity group (the paper's evaluation uses one row).
    pub row_key: String,
    /// Number of attributes in the entity group; operations pick attributes
    /// from `a0 .. a{n-1}` per [`DriverConfig::key_distribution`].
    pub num_attributes: usize,
    /// How operations pick their attribute: uniform (the paper's YCSB
    /// setting) or zipfian-skewed (attribute `a0` hottest).
    pub key_distribution: KeyDistribution,
    /// Transactions this driver will issue.
    pub num_transactions: usize,
    /// Operations per transaction (the paper uses 10).
    pub ops_per_txn: usize,
    /// Fraction of operations that are reads (the paper uses 0.5).
    pub read_fraction: f64,
    /// Target transaction rate: a new transaction is started no sooner than
    /// `1 / target_tps` after the previous one started (and never while
    /// [`DriverConfig::max_open`] transactions are already in flight).
    pub target_tps: f64,
    /// Maximum transactions open (executing or committing) at once. 1 is
    /// the paper's closed-loop YCSB thread; larger values issue
    /// *overlapping* transactions, which the submitted commit route
    /// batches into shared Paxos-CP instances.
    pub max_open: usize,
    /// Delay before the first transaction (staggered starts).
    pub start_delay: SimDuration,
    /// Simulated execution cost of one application operation: the paper's
    /// YCSB client executes each read against HBase and spends client-side
    /// CPU per operation, so a 10-operation transaction stays open for on
    /// the order of a hundred milliseconds. This knob reproduces that open
    /// window, which is what creates log-position contention between
    /// concurrently executing transactions.
    pub op_delay: SimDuration,
    /// Uniform jitter fraction applied to each operation's delay (a real
    /// client's per-operation cost varies; without jitter the simulated
    /// clients lock into fixed phase relationships that either always or
    /// never collide, which no real deployment exhibits).
    pub op_jitter: f64,
    /// Uniform jitter fraction applied to the inter-arrival time between
    /// transaction starts, for the same reason.
    pub arrival_jitter: f64,
    /// Seed for the operation generator (derived per driver by the runner).
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            group: "group0".into(),
            row_key: "row0".into(),
            num_attributes: 100,
            key_distribution: KeyDistribution::Uniform,
            num_transactions: 125,
            ops_per_txn: 10,
            read_fraction: 0.5,
            target_tps: 1.0,
            max_open: 1,
            start_delay: SimDuration::ZERO,
            op_delay: SimDuration::from_millis(10),
            op_jitter: 0.5,
            arrival_jitter: 0.3,
            seed: 1,
        }
    }
}

impl DriverConfig {
    /// The target inter-arrival time between transaction starts.
    pub fn interarrival(&self) -> SimDuration {
        if self.target_tps <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((1_000_000.0 / self.target_tps).round() as u64)
        }
    }
}

/// One benchmark client thread: owns a [`Session`], issues transactions per
/// its schedule — overlapping up to [`DriverConfig::max_open`] — and
/// records outcomes into the shared metrics sink.
///
/// All names are interned once at construction: the hot operation loop
/// issues reads and writes through the session's id-based fast paths and
/// never touches the symbol table again.
pub struct ClientDriver {
    config: DriverConfig,
    session: Session,
    metrics: SharedMetrics,
    rng: StdRng,
    group: GroupId,
    row: KeyId,
    /// Pre-interned attribute ids `a0 .. a{n-1}`.
    attrs: Vec<AttrId>,
    /// Attribute-rank sampler (uniform or zipfian over `attrs`).
    sampler: KeySampler,
    issued: usize,
    last_start: Option<SimTime>,
    /// Operations still to execute per open (not yet committing) handle.
    ops_remaining: HashMap<u64, usize>,
    /// Commits in flight (handle has left `ops_remaining`).
    committing: usize,
    op_seq: u64,
}

impl ClientDriver {
    /// Create a driver for `node`, homed at `home_replica`.
    pub fn new(
        node: NodeId,
        home_replica: usize,
        directory: Arc<Directory>,
        client_config: ClientConfig,
        config: DriverConfig,
        metrics: SharedMetrics,
    ) -> Self {
        let seed = config.seed;
        let symbols = directory.symbols();
        let group = symbols.group(&config.group);
        let row = symbols.key(&config.row_key);
        let attrs: Vec<AttrId> = (0..config.num_attributes.max(1))
            .map(|i| symbols.attr(&format!("a{i}")))
            .collect();
        let sampler = KeySampler::new(config.key_distribution, attrs.len() as u64);
        ClientDriver {
            session: Session::new(node, home_replica, directory, client_config),
            config,
            metrics,
            rng: StdRng::seed_from_u64(seed),
            group,
            row,
            attrs,
            sampler,
            issued: 0,
            last_start: None,
            ops_remaining: HashMap::new(),
            committing: 0,
            op_seq: 0,
        }
    }

    /// Number of transactions issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    fn in_flight(&self) -> usize {
        self.ops_remaining.len() + self.committing
    }

    fn pick_attr(&mut self) -> AttrId {
        let idx = self.sampler.sample(&mut self.rng) as usize;
        self.attrs[idx.min(self.attrs.len() - 1)]
    }

    fn jittered(&mut self, base: SimDuration, fraction: f64) -> SimDuration {
        if fraction <= 0.0 || base == SimDuration::ZERO {
            return base;
        }
        let factor = 1.0 + fraction * (self.rng.gen::<f64>() * 2.0 - 1.0);
        base.mul_f64(factor.max(0.0))
    }

    fn apply_actions(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    {
                        let mut metrics = self.metrics.lock();
                        metrics.record(&result);
                        metrics.last_decision_us =
                            metrics.last_decision_us.max(ctx.now().as_micros());
                        // The session's counter is cumulative, so overwrite
                        // rather than add (this sink belongs to this driver).
                        metrics.resubmissions = self.session.resubmissions();
                    }
                    self.committing = self.committing.saturating_sub(1);
                    self.schedule_next(ctx);
                }
            }
        }
    }

    fn schedule_next(&mut self, ctx: &mut Context<Msg>) {
        if self.issued >= self.config.num_transactions
            || self.in_flight() >= self.config.max_open.max(1)
        {
            return;
        }
        let gap = self.jittered(self.config.interarrival(), self.config.arrival_jitter);
        let earliest = match self.last_start {
            Some(start) => start + gap,
            None => SimTime::ZERO,
        };
        let now = ctx.now();
        if earliest > now {
            ctx.set_timer(earliest - now, START_TXN_TAG);
        } else {
            self.start_transaction(ctx);
        }
    }

    fn start_transaction(&mut self, ctx: &mut Context<Msg>) {
        if self.issued >= self.config.num_transactions
            || self.in_flight() >= self.config.max_open.max(1)
        {
            return;
        }
        self.issued += 1;
        self.last_start = Some(ctx.now());
        let handle = self.session.begin_id(ctx.now(), self.group);
        self.ops_remaining
            .insert(handle.raw(), self.config.ops_per_txn);
        // Each operation costs `op_delay` of simulated execution time; the
        // transaction stays open while they run, which is what creates
        // contention for its commit position.
        self.schedule_or_run_ops(ctx, handle);
        // With room for overlap, line up the next transaction too.
        self.schedule_next(ctx);
    }

    fn schedule_or_run_ops(&mut self, ctx: &mut Context<Msg>, handle: TxnHandle) {
        if self.config.op_delay == SimDuration::ZERO {
            while self
                .ops_remaining
                .get(&handle.raw())
                .is_some_and(|n| *n > 0)
            {
                self.run_one_op(ctx, handle);
            }
            self.start_commit(ctx, handle);
        } else {
            let delay = self.jittered(self.config.op_delay, self.config.op_jitter);
            ctx.set_timer(delay, OP_TAG_BASE + handle.raw());
        }
    }

    fn run_one_op(&mut self, ctx: &mut Context<Msg>, handle: TxnHandle) {
        let attr = self.pick_attr();
        if self.rng.gen::<f64>() < self.config.read_fraction {
            self.session
                .read_id(handle, self.row, attr)
                .expect("read inside an open transaction");
        } else {
            self.op_seq += 1;
            let value = format!("v{}-{}", ctx.node().0, self.op_seq);
            self.session
                .write_id(handle, self.row, attr, value)
                .expect("write inside an open transaction");
        }
        if let Some(remaining) = self.ops_remaining.get_mut(&handle.raw()) {
            *remaining -= 1;
        }
    }

    fn on_op_timer(&mut self, ctx: &mut Context<Msg>, handle: TxnHandle) {
        let Some(remaining) = self.ops_remaining.get(&handle.raw()).copied() else {
            return;
        };
        if remaining == 0 || !self.session.is_open(handle) {
            return;
        }
        self.run_one_op(ctx, handle);
        if self
            .ops_remaining
            .get(&handle.raw())
            .is_some_and(|n| *n > 0)
        {
            let delay = self.jittered(self.config.op_delay, self.config.op_jitter);
            ctx.set_timer(delay, OP_TAG_BASE + handle.raw());
        } else {
            self.start_commit(ctx, handle);
        }
    }

    fn start_commit(&mut self, ctx: &mut Context<Msg>, handle: TxnHandle) {
        self.ops_remaining.remove(&handle.raw());
        self.committing += 1;
        let actions = self
            .session
            .commit(ctx.now(), handle)
            .expect("commit of the just-built transaction");
        self.apply_actions(ctx, actions);
    }
}

impl Actor<Msg> for ClientDriver {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        if self.config.num_transactions == 0 {
            return;
        }
        ctx.set_timer(self.config.start_delay, START_TXN_TAG);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let now = ctx.now();
        let actions = self.session.on_message(now, from, &msg);
        self.apply_actions(ctx, actions);
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>) {
        // Timers that expired while the site was down were suppressed and
        // will never fire; without intervention every open transaction (and
        // the arrival loop itself) wedges. Re-fire the session's armed
        // timers — early fires are safe, they degrade to deduplicated
        // retries — and restart the operation/arrival ticks.
        let now = ctx.now();
        let actions = self.session.refire_timers(now);
        self.apply_actions(ctx, actions);
        let mut open: Vec<u64> = self.ops_remaining.keys().copied().collect();
        open.sort_unstable();
        for raw in open {
            if self.session.handle_from_raw(raw).is_some() {
                let delay = self.jittered(self.config.op_delay, self.config.op_jitter);
                ctx.set_timer(delay, OP_TAG_BASE + raw);
            }
        }
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == START_TXN_TAG {
            self.start_transaction(ctx);
        } else if tag >= OP_TAG_BASE {
            // Per-transaction operation tick; dead handles are ignored
            // (`on_op_timer` also returns harmlessly when the transaction
            // has no operations left).
            if let Some(handle) = self.session.handle_from_raw(tag - OP_TAG_BASE) {
                self.on_op_timer(ctx, handle);
            }
        } else {
            let now = ctx.now();
            let actions = self.session.on_timer(now, tag);
            self.apply_actions(ctx, actions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_from_target_tps() {
        let at_rate = |tps: f64| DriverConfig {
            target_tps: tps,
            ..DriverConfig::default()
        };
        assert_eq!(at_rate(2.0).interarrival(), SimDuration::from_millis(500));
        assert_eq!(at_rate(0.5).interarrival(), SimDuration::from_secs(2));
        assert_eq!(at_rate(0.0).interarrival(), SimDuration::ZERO);
    }

    #[test]
    fn default_config_matches_the_paper_workload() {
        let cfg = DriverConfig::default();
        assert_eq!(cfg.ops_per_txn, 10);
        assert!((cfg.read_fraction - 0.5).abs() < f64::EPSILON);
        assert_eq!(cfg.num_attributes, 100);
        assert!((cfg.target_tps - 1.0).abs() < f64::EPSILON);
        assert_eq!(cfg.max_open, 1, "the paper's thread is strictly serial");
    }
}
