//! # workload — YCSB-style transactional workloads and the experiment runner
//!
//! The paper evaluates its prototype with the Yahoo! Cloud Serving Benchmark
//! extended with transaction support: every experiment issues 500
//! transactions of ten operations each (50 % reads, 50 % writes) against a
//! single entity group stored as one row with a configurable number of
//! attributes, at a target rate of one transaction per second per client
//! thread, with staggered thread starts (§6).
//!
//! This crate reproduces that workload generator on top of the simulated
//! cluster:
//!
//! * [`DriverConfig`] / [`ClientDriver`] — one benchmark "thread": an actor
//!   owning a [`mdstore::Session`], issuing transactions on a schedule —
//!   up to [`DriverConfig::max_open`] open concurrently, committing down
//!   either [`mdstore::CommitRoute`] — and recording outcomes;
//! * [`ExperimentSpec`] / [`run_experiment`] — build a cluster from a
//!   topology, place drivers, run the simulation to completion, verify the
//!   resulting logs with the serializability checker, and aggregate metrics
//!   into an [`ExperimentResult`] (commit counts by promotion round, latency
//!   by round, combination counts — the quantities plotted in Figures 4–8).
//! * [`KeyDistribution`] / [`KeySampler`] — uniform and YCSB-zipfian key
//!   selection shared by both the closed-loop and open-loop drivers;
//! * [`OpenLoopSpec`] / [`run_openloop`] — an open-loop load harness for the
//!   multi-threaded parallel runtime: arrivals scheduled independently of
//!   completions, latency charged from scheduled arrival time, zipfian keys
//!   over multi-million-key spaces, every run checker-verified.
//! * [`ReadMostlySpec`] / [`run_readmostly`] — the read-mostly (95/5) mix
//!   for the scale-out snapshot read plane: non-aborting watermark reads
//!   served by any of the first N replicas, writes down the commit engine,
//!   every completed read proven against the merged decided log at its
//!   watermark ([`explain_snapshot_reads`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod driver;
mod openloop;
mod readmostly;
mod runner;
mod spec;
mod zipf;

pub use chaos::{run_chaos, ChaosRunResult, ChaosRunSpec};
pub use driver::{ClientDriver, DriverConfig, SharedMetrics};
pub use openloop::{run_openloop, OpenLoopResult, OpenLoopSpec};
pub use readmostly::{
    explain_snapshot_reads, run_readmostly, ReadMostlyResult, ReadMostlySpec, SnapshotReadSample,
};
pub use runner::run_experiment;
pub use spec::{ExperimentResult, ExperimentSpec, Placement};
pub use zipf::{KeyDistribution, KeySampler, Zipfian};
