//! Key-selection distributions: uniform and YCSB-style zipfian.
//!
//! The paper's YCSB workload picks attributes uniformly; real stores see
//! heavy skew, which is what the open-loop harness stresses (hot groups
//! saturate their commit pipeline first). [`Zipfian`] implements the
//! standard YCSB zipfian generator (Gray et al.'s rejection-free inverse
//! transform): rank 0 is the hottest key, and for the default
//! `theta = 0.99` the top ~20 % of keys draw ~80 % of accesses, at any
//! keyspace size — the harmonic normalization constant is precomputed
//! once, so multi-million-key spaces sample in O(1).

use rand::rngs::StdRng;
use rand::Rng;

/// How a driver picks the key each operation touches.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely.
    #[default]
    Uniform,
    /// YCSB zipfian with skew parameter `theta` in `[0, 1)`; rank 0 is the
    /// hottest key. `theta = 0.99` is the YCSB default.
    Zipfian {
        /// Skew parameter (0 = uniform-ish, → 1 = extreme skew).
        theta: f64,
    },
}

/// The YCSB zipfian generator over ranks `0 .. n`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Precompute the generator's constants for a keyspace of `n` ranks
    /// (`n` clamped to at least 1; `theta` clamped into `[0, 0.999]` — the
    /// formulas diverge at 1).
    pub fn new(n: u64, theta: f64) -> Self {
        let n = n.max(1);
        let theta = theta.clamp(0.0, 0.999);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// The harmonic-like normalization `sum_{i=1..n} 1 / i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Keyspace size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw one rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// A ready-to-draw sampler over `[0, n)` for either distribution.
#[derive(Clone, Debug)]
pub struct KeySampler {
    kind: SamplerKind,
}

#[derive(Clone, Debug)]
enum SamplerKind {
    Uniform { n: u64 },
    Zipfian(Zipfian),
}

impl KeySampler {
    /// Build a sampler over a keyspace of `n` keys (clamped to at least 1).
    /// Zipfian construction is O(n) — build once per run and clone per
    /// driver.
    pub fn new(distribution: KeyDistribution, n: u64) -> Self {
        let n = n.max(1);
        let kind = match distribution {
            KeyDistribution::Uniform => SamplerKind::Uniform { n },
            KeyDistribution::Zipfian { theta } => SamplerKind::Zipfian(Zipfian::new(n, theta)),
        };
        KeySampler { kind }
    }

    /// Keyspace size.
    pub fn n(&self) -> u64 {
        match &self.kind {
            SamplerKind::Uniform { n } => *n,
            SamplerKind::Zipfian(z) => z.n(),
        }
    }

    /// Draw one key in `[0, n)`.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match &self.kind {
            SamplerKind::Uniform { n } => rng.gen_range(0..*n),
            SamplerKind::Zipfian(z) => z.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1u64, 2, 10, 1_000] {
            let z = KeySampler::new(KeyDistribution::Zipfian { theta: 0.99 }, n);
            let u = KeySampler::new(KeyDistribution::Uniform, n);
            for _ in 0..2_000 {
                assert!(z.sample(&mut rng) < n);
                assert!(u.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn zipfian_is_skewed_and_rank_ordered() {
        let mut rng = StdRng::seed_from_u64(42);
        let sampler = KeySampler::new(KeyDistribution::Zipfian { theta: 0.99 }, 10_000);
        let mut counts = vec![0u64; 10_000];
        let draws = 200_000;
        for _ in 0..draws {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 is the hottest and draws several percent of all accesses.
        assert!(counts[0] > draws / 50, "rank 0 drew {}", counts[0]);
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[100]);
        // The head dominates: the hottest 1 % of keys draw well over a
        // third of the accesses (uniform would give them 1 %).
        let head: u64 = counts[..100].iter().sum();
        assert!(head * 3 > draws, "head drew {head} of {draws}");
    }

    #[test]
    fn uniform_is_not_skewed() {
        let mut rng = StdRng::seed_from_u64(42);
        let sampler = KeySampler::new(KeyDistribution::Uniform, 1_000);
        let mut counts = vec![0u64; 1_000];
        let draws = 100_000;
        for _ in 0..draws {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        let head: u64 = counts[..10].iter().sum();
        // The top 1 % of ranks draw about 1 %.
        assert!(head < draws / 20, "uniform head drew {head}");
    }

    #[test]
    fn million_key_spaces_construct_and_sample() {
        let sampler = KeySampler::new(KeyDistribution::Zipfian { theta: 0.99 }, 2_000_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut max_seen = 0;
        for _ in 0..10_000 {
            max_seen = max_seen.max(sampler.sample(&mut rng));
        }
        assert!(max_seen < 2_000_000);
        assert!(max_seen > 1_000, "tail must be reachable, saw {max_seen}");
    }
}
