//! Open-loop load generation against the parallel runtime.
//!
//! The closed-loop drivers of [`crate::run_experiment`] wait for each
//! outcome before issuing more work, so offered load collapses to match
//! capacity and saturation is invisible. The open-loop driver here does
//! what a real latency-vs-throughput experiment does (Spinnaker's
//! evaluation, YCSB's target rate): arrivals are scheduled by a Poisson
//! (or fixed-interval) process *independent of completions*, every arrival
//! is submitted when its time comes regardless of how many requests are
//! still in flight, and latency is measured **from the scheduled arrival
//! time** — so queueing delay under overload is charged to the system, not
//! silently absorbed by the generator (no coordinated omission).
//!
//! Keys are drawn from a configurable [`KeyDistribution`] over a keyspace
//! of millions of keys, factored as `(row, attribute)` pairs so the symbol
//! table holds thousands of interned names, not millions. Key `k` routes
//! to group `k mod groups`: under zipfian skew the hottest keys land in
//! distinct groups, but hot *groups* still emerge and saturate their
//! commit pipelines first.
//!
//! Every transaction is a blind write shipped down the submitted commit
//! route, so runs are conflict-free (blind writes never invalidate) and
//! the post-run serializability check plus a committed-count audit verify
//! every point of a sweep.

use crate::driver::SharedMetrics;
use crate::zipf::{KeyDistribution, KeySampler};
use mdstore::{
    BatchConfig, CommitProtocol, LatencyStats, MetricsHub, Msg, ParallelCluster,
    ParallelClusterConfig, RunMetrics, Topology, TxnResult,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Actor, Context, NodeId, SimDuration};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use walog::{AttrId, GroupId, ItemRef, KeyId, LogPosition, Transaction, TxnId};

/// The driver's only timer tag: the 1 ms arrival/expiry tick.
const TICK_TAG: u64 = u64::MAX;

/// Tick interval in microseconds. Arrivals due within a tick are submitted
/// in a batch; latency is still stamped from each arrival's scheduled
/// time, so tick granularity never hides queueing delay.
const TICK_US: u64 = 1_000;

/// Cap on interned row names; attributes absorb the rest of the keyspace.
const MAX_ROWS: u64 = 1_024;

/// One point of an open-loop run: offered load against a sharded parallel
/// cluster.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// Datacenter layout each shard replicates.
    pub topology: Topology,
    /// Worker threads (= shards, each a full replica set).
    pub workers: usize,
    /// Transaction groups, assigned round-robin to shards.
    pub groups: usize,
    /// Open-loop driver actors, spread round-robin over the workers; the
    /// offered load is split evenly between them.
    pub drivers: usize,
    /// Keyspace size (keys factor into row × attribute names).
    pub keys: u64,
    /// Key-selection distribution.
    pub key_distribution: KeyDistribution,
    /// Aggregate offered load in transactions per second of wall time.
    pub offered_tps: f64,
    /// Poisson arrivals (true) or a fixed interarrival interval (false).
    pub poisson: bool,
    /// Wall-clock span over which load is offered.
    pub duration: Duration,
    /// Extra wall-clock span after the offered window for in-flight
    /// requests to drain before they are force-expired.
    pub grace: Duration,
    /// Per-request patience: a request with no decision after this long is
    /// recorded as a timed-out abort.
    pub patience: Duration,
    /// Latency scale applied to the topology's RTTs (1.0 = real time).
    pub rtt_scale: f64,
    /// Window/pipeline settings of the service-hosted commit engines.
    pub batch: BatchConfig,
    /// Commit protocol.
    pub protocol: CommitProtocol,
    /// Seed for samplers and per-worker RNGs.
    pub seed: u64,
}

impl OpenLoopSpec {
    /// A default sweep point: `workers` shards each owning 8 groups of the
    /// paper's VOC wide-area cluster, 2 drivers per worker, a million-key
    /// zipfian keyspace (`theta = 0.99`), Poisson arrivals at
    /// `offered_tps`.
    pub fn new(workers: usize, offered_tps: f64) -> Self {
        let workers = workers.max(1);
        OpenLoopSpec {
            topology: Topology::voc(),
            workers,
            groups: 8 * workers,
            drivers: 2 * workers,
            keys: 1_000_000,
            key_distribution: KeyDistribution::Zipfian { theta: 0.99 },
            offered_tps: offered_tps.max(1.0),
            poisson: true,
            duration: Duration::from_millis(1_200),
            grace: Duration::from_millis(2_000),
            patience: Duration::from_millis(1_500),
            rtt_scale: 1.0,
            batch: BatchConfig::default(),
            protocol: CommitProtocol::PaxosCp,
            seed: 42,
        }
    }

    /// Builder-style group-count override.
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups.max(1);
        self
    }

    /// Builder-style driver-count override.
    pub fn with_drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers.max(1);
        self
    }

    /// Builder-style keyspace override.
    pub fn with_keys(mut self, keys: u64) -> Self {
        self.keys = keys.max(1);
        self
    }

    /// Builder-style key-distribution override.
    pub fn with_key_distribution(mut self, distribution: KeyDistribution) -> Self {
        self.key_distribution = distribution;
        self
    }

    /// Builder-style offered-window/grace/patience override.
    pub fn with_windows(mut self, duration: Duration, grace: Duration, patience: Duration) -> Self {
        self.duration = duration;
        self.grace = grace;
        self.patience = patience;
        self
    }

    /// Builder-style topology override.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Builder-style latency-scale override.
    pub fn with_rtt_scale(mut self, scale: f64) -> Self {
        self.rtt_scale = scale;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything measured at one open-loop point.
#[derive(Clone, Debug)]
pub struct OpenLoopResult {
    /// Offered load the point ran at (tx/s).
    pub offered_tps: f64,
    /// Worker threads the cluster ran with.
    pub workers: usize,
    /// Transaction groups.
    pub groups: usize,
    /// Requests that reached an outcome (reply or timeout).
    pub attempted: usize,
    /// Requests that committed.
    pub committed: usize,
    /// Requests that aborted (including timeouts).
    pub aborted: usize,
    /// Aborts that were patience expiries.
    pub timed_out: u64,
    /// Latency of committed requests, measured from scheduled arrival.
    pub latency: LatencyStats,
    /// Committed transactions per wall-clock second of the offered window.
    pub committed_tps: f64,
    /// Whether the point is saturated: committed throughput fell below
    /// 90 % of offered, or any request timed out.
    pub saturated: bool,
    /// Transactions per flushed commit window (batching the skew bought).
    pub mean_window_occupancy: f64,
    /// Cross-worker sends that hit channel backpressure.
    pub backpressure: u64,
    /// Groups the post-run serializability checker verified.
    pub checked_groups: usize,
    /// Wall-clock time of the whole run including drain.
    pub wall: Duration,
}

/// Where one group's commit requests go.
struct GroupTarget {
    group: GroupId,
    service: NodeId,
    core: mdstore::datacenter::SharedCore,
}

/// One open-loop driver actor: schedules arrivals, submits blind writes to
/// each key's group service, expires overdue requests, and records
/// outcomes into its own metrics sink.
struct OpenLoopDriver {
    targets: Arc<Vec<GroupTarget>>,
    rows: Arc<Vec<KeyId>>,
    attrs: Arc<Vec<AttrId>>,
    sampler: KeySampler,
    rng: StdRng,
    /// Mean microseconds between this driver's arrivals.
    mean_gap_us: f64,
    poisson: bool,
    /// Next scheduled arrival, in wall microseconds since run start.
    next_due_us: f64,
    /// No arrivals are scheduled at or past the cutoff.
    cutoff_us: u64,
    /// At the deadline every still-pending request is expired.
    deadline_us: u64,
    patience_us: u64,
    seq: u64,
    /// Scheduled arrival time per in-flight request id.
    pending: HashMap<u64, u64>,
    /// Request ids in submission order with their submit times, for
    /// patience expiry (submission order is monotone in submit time).
    order: VecDeque<(u64, u64)>,
    /// Read position per group index, refreshed at most once per tick.
    rp_cache: Vec<(u64, LogPosition)>,
    metrics: SharedMetrics,
    finished: bool,
    done: Arc<AtomicUsize>,
}

impl OpenLoopDriver {
    fn draw_gap(&mut self) -> f64 {
        if self.poisson {
            // Exponential interarrival; floored at 1 µs so the schedule
            // always advances.
            let u: f64 = self.rng.gen();
            (-self.mean_gap_us * (1.0 - u).ln()).max(1.0)
        } else {
            self.mean_gap_us.max(1.0)
        }
    }

    fn read_position(&mut self, tick: u64, target_idx: usize) -> LogPosition {
        let (cached_tick, position) = self.rp_cache[target_idx];
        if cached_tick == tick {
            return position;
        }
        let target = &self.targets[target_idx];
        let fresh = target.core.lock().read_position(target.group);
        self.rp_cache[target_idx] = (tick, fresh);
        fresh
    }

    fn submit(&mut self, ctx: &mut Context<Msg>, now_us: u64, scheduled_us: u64) {
        let key = self.sampler.sample(&mut self.rng);
        let target_idx = (key % self.targets.len() as u64) as usize;
        let row = self.rows[(key % self.rows.len() as u64) as usize];
        let attr = self.attrs[(key / self.rows.len() as u64) as usize];
        let tick = now_us / TICK_US;
        let read_position = self.read_position(tick, target_idx);
        self.seq += 1;
        let txn = Transaction::builder(
            TxnId::new(ctx.node().0, self.seq),
            self.targets[target_idx].group,
            read_position,
        )
        .write(ItemRef::new(row, attr), format!("k{}-s{}", key, self.seq))
        .build();
        self.pending.insert(self.seq, scheduled_us);
        self.order.push_back((self.seq, now_us));
        ctx.send(
            self.targets[target_idx].service,
            Msg::CommitRequest {
                req_id: self.seq,
                txn,
            },
        );
    }

    /// Record one patience expiry as a timed-out abort.
    fn expire(&mut self, latency_us: u64) {
        let mut metrics = self.metrics.lock();
        metrics.attempted += 1;
        metrics.aborted += 1;
        metrics.timed_out += 1;
        metrics.abort_latency_us.push(latency_us);
    }

    fn finish(&mut self, now_us: u64) {
        if self.finished {
            return;
        }
        // Force-expire whatever is still in flight at the deadline.
        let stale: Vec<u64> = self.pending.keys().copied().collect();
        for req in stale {
            if self.pending.remove(&req).is_some() {
                self.expire(self.patience_us.min(now_us));
            }
        }
        self.order.clear();
        self.finished = true;
        self.done.fetch_add(1, Ordering::SeqCst);
    }

    fn tick(&mut self, ctx: &mut Context<Msg>) {
        if self.finished {
            return;
        }
        let now_us = ctx.now().as_micros();
        // Expire requests whose patience ran out.
        while let Some(&(req, submitted_us)) = self.order.front() {
            if submitted_us + self.patience_us > now_us {
                break;
            }
            self.order.pop_front();
            if self.pending.remove(&req).is_some() {
                self.expire(now_us - submitted_us);
            }
        }
        // Submit every arrival that has come due, at its scheduled time.
        while self.next_due_us <= now_us as f64 && (self.next_due_us as u64) < self.cutoff_us {
            let scheduled = self.next_due_us as u64;
            self.submit(ctx, now_us, scheduled);
            let gap = self.draw_gap();
            self.next_due_us += gap;
        }
        if now_us >= self.cutoff_us && (self.pending.is_empty() || now_us >= self.deadline_us) {
            self.finish(now_us);
            return;
        }
        // lint:allow(timer-refire): the open-loop driver is a measurement
        // harness that never crashes mid-run — chaos schedules target
        // services, not drivers — so there is no recovery path to re-arm it.
        ctx.set_timer(SimDuration::from_micros(TICK_US), TICK_TAG);
    }
}

impl Actor<Msg> for OpenLoopDriver {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        // Random phase offset so drivers' ticks do not align.
        let phase = ctx.rand_below(TICK_US);
        let first = self.draw_gap();
        self.next_due_us = phase as f64 + first;
        ctx.set_timer(SimDuration::from_micros(TICK_US + phase), TICK_TAG);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        let Msg::CommitReply {
            req_id,
            txn,
            committed,
            promotions,
            combined,
            rounds,
            abort_reason,
            ..
        } = msg
        else {
            return;
        };
        // Late replies for already-expired requests are dropped.
        let Some(scheduled_us) = self.pending.remove(&req_id) else {
            return;
        };
        let now_us = ctx.now().as_micros();
        let latency = SimDuration::from_micros(now_us.saturating_sub(scheduled_us));
        let mut metrics = self.metrics.lock();
        metrics.record(&TxnResult {
            committed,
            read_only: false,
            promotions,
            combined,
            rounds,
            latency,
            total_latency: latency,
            abort_reason,
            txn: Some(txn),
        });
        metrics.last_decision_us = metrics.last_decision_us.max(now_us);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == TICK_TAG {
            self.tick(ctx);
        }
    }
}

/// Run one open-loop point: build the sharded cluster, offer load for the
/// spec's window, drain, verify with the serializability checker, and
/// aggregate per-driver metrics (merged at run end — no sink is shared
/// across workers).
///
/// Panics if any group's logs violate replica agreement or one-copy
/// serializability.
pub fn run_openloop(spec: &OpenLoopSpec) -> OpenLoopResult {
    let mut cluster = ParallelCluster::build(
        ParallelClusterConfig::new(spec.topology.clone(), spec.protocol)
            .with_workers(spec.workers)
            .with_batch(spec.batch.clone())
            .with_rtt_scale(spec.rtt_scale)
            .with_seed(spec.seed),
    );
    let symbols = cluster.symbols();
    let mut targets = Vec::with_capacity(spec.groups);
    for g in 0..spec.groups.max(1) {
        let group = cluster.register_group(&format!("g{g}"));
        targets.push(GroupTarget {
            group,
            service: cluster.service_for_group(group),
            core: cluster.home_core(group),
        });
    }
    let targets = Arc::new(targets);

    // Factor the keyspace into row × attribute names: key k maps to
    // (k mod rows, k div rows), so a million keys intern ~2 000 symbols.
    let rows_n = spec.keys.clamp(1, MAX_ROWS);
    let attrs_n = spec.keys.div_ceil(rows_n);
    let rows: Arc<Vec<KeyId>> =
        Arc::new((0..rows_n).map(|r| symbols.key(&format!("r{r}"))).collect());
    let attrs: Arc<Vec<AttrId>> = Arc::new(
        (0..attrs_n)
            .map(|a| symbols.attr(&format!("c{a}")))
            .collect(),
    );
    let sampler = KeySampler::new(spec.key_distribution, spec.keys);

    let drivers = spec.drivers.max(1);
    let hub = MetricsHub::new();
    let mut sinks: Vec<SharedMetrics> = Vec::with_capacity(drivers);
    let done = Arc::new(AtomicUsize::new(0));
    let mean_gap_us = 1_000_000.0 * drivers as f64 / spec.offered_tps.max(1.0);
    let cutoff_us = spec.duration.as_micros() as u64;
    let deadline_us = cutoff_us + spec.grace.as_micros() as u64;
    let replicas = cluster.num_datacenters();
    for d in 0..drivers {
        let sink = hub.register();
        sinks.push(sink.clone());
        let driver = OpenLoopDriver {
            targets: Arc::clone(&targets),
            rows: Arc::clone(&rows),
            attrs: Arc::clone(&attrs),
            sampler: sampler.clone(),
            rng: StdRng::seed_from_u64(
                spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (d as u64 + 1),
            ),
            mean_gap_us,
            poisson: spec.poisson,
            next_due_us: 0.0,
            cutoff_us,
            deadline_us,
            patience_us: spec.patience.as_micros() as u64,
            seq: 0,
            pending: HashMap::new(),
            order: VecDeque::new(),
            rp_cache: vec![(u64::MAX, LogPosition::ZERO); targets.len()],
            metrics: sink,
            finished: false,
            done: Arc::clone(&done),
        };
        cluster.add_driver(d % spec.workers, d % replicas, move |_node| {
            Box::new(driver)
        });
    }

    let max_wall = spec.duration + spec.grace + Duration::from_secs(2);
    let done_flag = Arc::clone(&done);
    let report = cluster.run(max_wall, move || {
        done_flag.load(Ordering::SeqCst) >= drivers
    });

    let check = cluster
        .verify()
        .expect("open-loop run produced a non-serializable or diverged history");

    let mut totals = RunMetrics::default();
    for sink in &sinks {
        totals.merge(&sink.lock());
    }
    totals.merge(&cluster.service_commit_metrics());
    let (expired, reclaimed) = cluster.service_side_counters();
    totals.expired_reads += expired;
    totals.reclaimed_versions += reclaimed;

    let latency = totals.commit_latency();
    let offered_secs = spec.duration.as_secs_f64().max(1e-9);
    let committed_tps = totals.committed as f64 / offered_secs;
    let saturated = committed_tps < 0.90 * spec.offered_tps || totals.timed_out > 0;
    OpenLoopResult {
        offered_tps: spec.offered_tps,
        workers: spec.workers,
        groups: spec.groups,
        attempted: totals.attempted,
        committed: totals.committed,
        aborted: totals.aborted,
        timed_out: totals.timed_out,
        latency,
        committed_tps,
        saturated,
        mean_window_occupancy: totals.mean_window_occupancy(),
        backpressure: report.backpressure,
        checked_groups: check.len(),
        wall: report.elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but real open-loop point on two workers: offered load low
    /// enough to stay unsaturated on any machine, latencies scaled down so
    /// the test finishes in about a second of wall time.
    #[test]
    fn small_openloop_point_runs_and_verifies() {
        let spec = OpenLoopSpec::new(2, 300.0)
            .with_groups(4)
            .with_drivers(2)
            .with_keys(10_000)
            .with_topology(Topology::vvv())
            .with_rtt_scale(0.5)
            .with_windows(
                Duration::from_millis(300),
                Duration::from_millis(700),
                Duration::from_millis(600),
            )
            .with_seed(7);
        let result = run_openloop(&spec);
        assert!(result.attempted > 0, "arrivals must have been offered");
        assert!(result.committed > 0, "some transactions must commit");
        assert_eq!(result.attempted, result.committed + result.aborted);
        assert!(result.checked_groups > 0, "checker must have run");
        assert_eq!(result.workers, 2);
        assert!(result.latency.count > 0);
    }
}
