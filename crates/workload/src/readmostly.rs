//! Read-mostly open-loop harness for the scale-out snapshot read plane.
//!
//! The open-loop harness of [`crate::run_openloop`] measures the *write*
//! plane: every arrival is a blind write shipped through the group commit
//! engine. This harness measures the *read* plane the snapshot-read
//! protocol adds: a 95/5 (configurable) mix where reads are watermark
//! snapshot reads ([`mdstore::Msg::SnapshotRead`]) served by **any** of
//! the first [`ReadMostlySpec::serving_replicas`] datacenters, never by
//! Paxos, and writes are the same open-loop blind writes as before.
//!
//! Reads are *semi-open*: arrivals are scheduled by the same Poisson
//! process as writes (independent of completions, latency charged from
//! scheduled arrival — no coordinated omission), but each driver holds at
//! most [`ReadMostlySpec::max_open_reads`] reads in flight, queueing the
//! rest. That bounded concurrency is what makes serving-replica count
//! measurable: with one serving replica, drivers in other regions pay a
//! wide-area round trip per read and their completion rate caps at
//! `max_open_reads / RTT`; with a serving replica per region every read is
//! local and aggregate read throughput scales with the replica count.
//!
//! Every read takes a read lease on the serving replica's core for its
//! lifetime (so version GC cannot reclaim under it), and every completed
//! read is recorded as a `(group, watermark, item, observed)` sample.
//! After the run the harness replays each group's merged decided log and
//! proves every sample is *explained at its watermark*: the observed value
//! is exactly the latest committed write at or below the watermark.
//! Staleness (home applied prefix minus the serving watermark, in log
//! positions) is tracked per read so bounded staleness can be asserted.

use crate::driver::SharedMetrics;
use crate::zipf::{KeyDistribution, KeySampler};
use mdstore::datacenter::SharedCore;
use mdstore::{
    BatchConfig, CommitProtocol, LatencyStats, MetricsHub, Msg, ParallelCluster,
    ParallelClusterConfig, RunMetrics, Topology, TxnResult,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Actor, Context, NodeId, SimDuration};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use walog::checker;
use walog::{AttrId, GroupId, GroupLog, ItemRef, KeyId, LogPosition, Transaction, TxnId};

/// The driver's only timer tag: the 1 ms arrival/expiry tick.
const TICK_TAG: u64 = u64::MAX;

/// Tick interval in microseconds (see [`crate::run_openloop`]).
const TICK_US: u64 = 1_000;

/// Cap on interned row names; attributes absorb the rest of the keyspace.
const MAX_ROWS: u64 = 1_024;

/// One point of a read-mostly run: a snapshot-read/blind-write mix at a
/// fixed offered load and serving-replica count.
#[derive(Clone, Debug)]
pub struct ReadMostlySpec {
    /// Datacenter layout each shard replicates.
    pub topology: Topology,
    /// Worker threads (= shards, each a full replica set).
    pub workers: usize,
    /// Transaction groups, assigned round-robin to shards.
    pub groups: usize,
    /// Driver actors; defaults to one per (worker, datacenter) pair so
    /// every region generates read traffic.
    pub drivers: usize,
    /// Keyspace size (keys factor into row × attribute names).
    pub keys: u64,
    /// Key-selection distribution (shared by reads and writes).
    pub key_distribution: KeyDistribution,
    /// Aggregate offered load (reads + writes) in tx/s of wall time.
    pub offered_tps: f64,
    /// Fraction of arrivals that are snapshot reads (the paper-style
    /// read-mostly mix is 0.95).
    pub read_fraction: f64,
    /// Snapshot reads are served by the first `serving_replicas`
    /// datacenters (clamped to the topology); sweeping 1→D measures the
    /// read plane's scale-out.
    pub serving_replicas: usize,
    /// Per-driver cap on in-flight snapshot reads; arrivals beyond it
    /// queue (latency still charged from scheduled arrival).
    pub max_open_reads: usize,
    /// Poisson arrivals (true) or a fixed interarrival interval (false).
    pub poisson: bool,
    /// Wall-clock span over which load is offered.
    pub duration: Duration,
    /// Extra wall-clock span for in-flight requests to drain.
    pub grace: Duration,
    /// Per-request patience: overdue writes become timeout aborts, and
    /// queued reads older than this are shed (counted, never silent).
    pub patience: Duration,
    /// Latency scale applied to the topology's RTTs (1.0 = real time).
    pub rtt_scale: f64,
    /// Window/pipeline settings of the service-hosted commit engines.
    pub batch: BatchConfig,
    /// Commit protocol of the write plane.
    pub protocol: CommitProtocol,
    /// Seed for samplers and per-driver RNGs.
    pub seed: u64,
}

impl ReadMostlySpec {
    /// A default sweep point: `workers` shards of the paper's VOC
    /// wide-area cluster, 4 groups per worker, one driver per (worker,
    /// region), a 100 k-key zipfian keyspace (`theta = 0.99`), a 95/5
    /// read/write mix at `offered_tps`, reads served by the first
    /// `serving_replicas` datacenters.
    pub fn new(workers: usize, offered_tps: f64, serving_replicas: usize) -> Self {
        let workers = workers.max(1);
        let topology = Topology::voc();
        let drivers = workers * topology.num_datacenters();
        ReadMostlySpec {
            topology,
            workers,
            groups: 4 * workers,
            drivers,
            keys: 100_000,
            key_distribution: KeyDistribution::Zipfian { theta: 0.99 },
            offered_tps: offered_tps.max(1.0),
            read_fraction: 0.95,
            serving_replicas: serving_replicas.max(1),
            max_open_reads: 4,
            poisson: true,
            duration: Duration::from_millis(1_200),
            grace: Duration::from_millis(2_000),
            patience: Duration::from_millis(1_500),
            rtt_scale: 1.0,
            batch: BatchConfig::default(),
            protocol: CommitProtocol::PaxosCp,
            seed: 42,
        }
    }

    /// Builder-style group-count override.
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups.max(1);
        self
    }

    /// Builder-style driver-count override.
    pub fn with_drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers.max(1);
        self
    }

    /// Builder-style keyspace override.
    pub fn with_keys(mut self, keys: u64) -> Self {
        self.keys = keys.max(1);
        self
    }

    /// Builder-style read-fraction override (clamped to `[0, 1]`).
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Builder-style in-flight read cap override.
    pub fn with_max_open_reads(mut self, cap: usize) -> Self {
        self.max_open_reads = cap.max(1);
        self
    }

    /// Builder-style offered-window/grace/patience override.
    pub fn with_windows(mut self, duration: Duration, grace: Duration, patience: Duration) -> Self {
        self.duration = duration;
        self.grace = grace;
        self.patience = patience;
        self
    }

    /// Builder-style topology override (drivers are re-defaulted to one
    /// per (worker, datacenter) of the new topology).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.drivers = self.workers * topology.num_datacenters();
        self.topology = topology;
        self
    }

    /// Builder-style latency-scale override.
    pub fn with_rtt_scale(mut self, scale: f64) -> Self {
        self.rtt_scale = scale;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything measured at one read-mostly point.
#[derive(Clone, Debug)]
pub struct ReadMostlyResult {
    /// Aggregate offered load the point ran at (reads + writes, tx/s).
    pub offered_tps: f64,
    /// Worker threads the cluster ran with.
    pub workers: usize,
    /// Transaction groups.
    pub groups: usize,
    /// Serving-replica count snapshot reads were spread over.
    pub serving_replicas: usize,
    /// Fraction of arrivals that were snapshot reads.
    pub read_fraction: f64,
    /// Write requests that reached an outcome (reply or timeout).
    pub write_attempted: usize,
    /// Writes that committed.
    pub write_committed: usize,
    /// Writes that aborted (including timeouts).
    pub write_aborted: usize,
    /// Write aborts that were patience expiries.
    pub write_timed_out: u64,
    /// Commit latency of writes, from scheduled arrival.
    pub write_latency: LatencyStats,
    /// Snapshot reads answered with a value at their watermark.
    pub reads_completed: usize,
    /// Snapshot reads the serving replica could not answer (applied prefix
    /// behind the watermark). Zero by construction — the watermark is
    /// captured from the serving replica itself — and asserted zero.
    pub reads_unavailable: usize,
    /// Read arrivals shed: queued past patience, or still queued/in flight
    /// when the run ended. Sheds are overload accounting, not aborts.
    pub reads_shed: usize,
    /// Latency of completed reads, from scheduled arrival (queueing under
    /// overload is charged to the system).
    pub read_latency: LatencyStats,
    /// Completed snapshot reads per wall-clock second of the offered
    /// window — the scale-out headline number.
    pub read_tps: f64,
    /// Worst observed staleness: home applied prefix minus serving
    /// watermark at issue time, in log positions.
    pub max_staleness: u64,
    /// Mean observed staleness in log positions.
    pub mean_staleness: f64,
    /// Samples proven against the merged decided log (equals
    /// `reads_completed`; every read is explained at its watermark).
    pub reads_verified: usize,
    /// Whether the read plane saturated: reads were shed or completed
    /// throughput fell below 90 % of the offered read rate.
    pub read_saturated: bool,
    /// Groups the post-run serializability checker verified.
    pub checked_groups: usize,
    /// Wall-clock time of the whole run including drain.
    pub wall: Duration,
}

/// One snapshot read observation: which group, at which watermark, which
/// item, and what came back. [`explain_snapshot_reads`] proves it against
/// the group's decided log.
#[derive(Clone, Debug)]
pub struct SnapshotReadSample {
    /// Transaction group the read hit.
    pub group: GroupId,
    /// Snapshot watermark the read ran at.
    pub at: LogPosition,
    /// Row key read.
    pub row: KeyId,
    /// Attribute read.
    pub attr: AttrId,
    /// Value the serving replica answered with.
    pub observed: Option<String>,
}

/// Prove every snapshot read against its group's decided log: replay the
/// log in position order and check each sample's observed value equals the
/// latest committed write to its item at or below its watermark (`None`
/// when nothing at or below the watermark wrote the item).
///
/// `logs` maps each group to its **merged** decided log (e.g.
/// [`walog::checker::merged_log`] over every replica), so a watermark from
/// any serving replica is covered. Returns the number of samples proven;
/// the error describes the first unexplained read.
pub fn explain_snapshot_reads(
    logs: &HashMap<GroupId, GroupLog>,
    samples: &[SnapshotReadSample],
) -> Result<usize, String> {
    let mut by_group: HashMap<GroupId, Vec<usize>> = HashMap::new();
    for (i, sample) in samples.iter().enumerate() {
        by_group.entry(sample.group).or_default().push(i);
    }
    let mut verified = 0;
    for (group, mut idxs) in by_group {
        let Some(log) = logs.get(&group) else {
            return Err(format!(
                "group {group:?} has {} snapshot reads but no decided log",
                idxs.len()
            ));
        };
        idxs.sort_by_key(|&i| samples[i].at.0);
        let mut state: HashMap<u64, String> = HashMap::new();
        let check = |state: &HashMap<u64, String>, sample: &SnapshotReadSample| {
            let item = ItemRef::new(sample.row, sample.attr);
            let expected = state.get(&item.packed()).map(String::as_str);
            if expected == sample.observed.as_deref() {
                Ok(())
            } else {
                Err(format!(
                    "snapshot read of {item:?} in {group:?} at watermark {} observed {:?} \
                     but the decided log says {expected:?}",
                    sample.at.0, sample.observed
                ))
            }
        };
        let mut cursor = 0;
        for (position, entry) in log.iter() {
            while cursor < idxs.len() && samples[idxs[cursor]].at.0 < position.0 {
                check(&state, &samples[idxs[cursor]])?;
                verified += 1;
                cursor += 1;
            }
            for txn in entry.transactions() {
                for (item, value) in txn.final_writes() {
                    state.insert(item.packed(), value.to_string());
                }
            }
        }
        while cursor < idxs.len() {
            check(&state, &samples[idxs[cursor]])?;
            verified += 1;
            cursor += 1;
        }
    }
    Ok(verified)
}

/// Where one group's requests go: the home (writes) and every replica of
/// the owning shard (snapshot reads).
struct ReadTarget {
    group: GroupId,
    home_service: NodeId,
    home_core: SharedCore,
    services: Vec<NodeId>,
    cores: Vec<SharedCore>,
}

/// A snapshot read in flight: enough to release its lease and record it.
struct PendingRead {
    scheduled_us: u64,
    target_idx: usize,
    replica: usize,
    at: LogPosition,
    row: KeyId,
    attr: AttrId,
    lag: u64,
}

/// Per-driver read-plane accounting, merged at run end.
#[derive(Default)]
struct ReadTally {
    completed: usize,
    unavailable: usize,
    shed: usize,
    latency_us: Vec<u64>,
    staleness_max: u64,
    staleness_sum: u64,
    samples: Vec<SnapshotReadSample>,
}

/// One read-mostly driver: schedules mixed arrivals, issues snapshot reads
/// (lease on the serving core, bounded in flight) and open-loop blind
/// writes, and records outcomes.
struct ReadMostlyDriver {
    targets: Arc<Vec<ReadTarget>>,
    rows: Arc<Vec<KeyId>>,
    attrs: Arc<Vec<AttrId>>,
    sampler: KeySampler,
    rng: StdRng,
    /// This driver's datacenter (replica index within its shard).
    my_replica: usize,
    /// Serving-replica count reads are spread over.
    serving: usize,
    max_open_reads: usize,
    read_fraction: f64,
    mean_gap_us: f64,
    poisson: bool,
    next_due_us: f64,
    cutoff_us: u64,
    deadline_us: u64,
    patience_us: u64,
    /// Write sequence (= write req_id space).
    seq: u64,
    /// Read sequence (= read req_id space; distinct message type, so the
    /// two spaces never collide).
    read_seq: u64,
    /// Scheduled arrival time per in-flight write.
    pending: HashMap<u64, u64>,
    /// Write ids in submission order with submit times, for expiry.
    order: VecDeque<(u64, u64)>,
    /// Snapshot reads in flight, by read req_id.
    pending_reads: HashMap<u64, PendingRead>,
    /// Read arrivals waiting for an in-flight slot: (scheduled, key).
    read_backlog: VecDeque<(u64, u64)>,
    /// Home read position per target, refreshed at most once per tick
    /// (write snapshots and the staleness reference).
    rp_cache: Vec<(u64, LogPosition)>,
    metrics: SharedMetrics,
    reads: Arc<Mutex<ReadTally>>,
    finished: bool,
    done: Arc<AtomicUsize>,
}

impl ReadMostlyDriver {
    fn draw_gap(&mut self) -> f64 {
        if self.poisson {
            let u: f64 = self.rng.gen();
            (-self.mean_gap_us * (1.0 - u).ln()).max(1.0)
        } else {
            self.mean_gap_us.max(1.0)
        }
    }

    fn home_position(&mut self, tick: u64, target_idx: usize) -> LogPosition {
        let (cached_tick, position) = self.rp_cache[target_idx];
        if cached_tick == tick {
            return position;
        }
        let target = &self.targets[target_idx];
        let fresh = target.home_core.lock().read_position(target.group);
        self.rp_cache[target_idx] = (tick, fresh);
        fresh
    }

    fn submit_write(&mut self, ctx: &mut Context<Msg>, now_us: u64, scheduled_us: u64) {
        let key = self.sampler.sample(&mut self.rng);
        let target_idx = (key % self.targets.len() as u64) as usize;
        let row = self.rows[(key % self.rows.len() as u64) as usize];
        let attr = self.attrs[(key / self.rows.len() as u64) as usize];
        let read_position = self.home_position(now_us / TICK_US, target_idx);
        self.seq += 1;
        let txn = Transaction::builder(
            TxnId::new(ctx.node().0, self.seq),
            self.targets[target_idx].group,
            read_position,
        )
        .write(ItemRef::new(row, attr), format!("k{}-s{}", key, self.seq))
        .build();
        self.pending.insert(self.seq, scheduled_us);
        self.order.push_back((self.seq, now_us));
        ctx.send(
            self.targets[target_idx].home_service,
            Msg::CommitRequest {
                req_id: self.seq,
                txn,
            },
        );
    }

    fn arrive_read(&mut self, ctx: &mut Context<Msg>, now_us: u64, scheduled_us: u64) {
        let key = self.sampler.sample(&mut self.rng);
        if self.pending_reads.len() >= self.max_open_reads {
            self.read_backlog.push_back((scheduled_us, key));
        } else {
            self.issue_read(ctx, now_us, scheduled_us, key);
        }
    }

    /// Issue one snapshot read: pick the serving replica (own datacenter
    /// when in the serving set, deterministic spread otherwise — the same
    /// policy as `Directory::snapshot_replica`), capture the watermark
    /// from that replica's core *and take a read lease at it* under one
    /// lock, then send the wire read.
    fn issue_read(&mut self, ctx: &mut Context<Msg>, now_us: u64, scheduled_us: u64, key: u64) {
        let target_idx = (key % self.targets.len() as u64) as usize;
        let row = self.rows[(key % self.rows.len() as u64) as usize];
        let attr = self.attrs[(key / self.rows.len() as u64) as usize];
        let home = self.home_position(now_us / TICK_US, target_idx);
        self.read_seq += 1;
        let target = &self.targets[target_idx];
        let replica = if self.my_replica < self.serving {
            self.my_replica
        } else {
            let mix = (target.group.0 as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(self.read_seq)
                .wrapping_mul(0xd129_0d3d_a3ac_b56b);
            (mix % self.serving as u64) as usize
        };
        let at = {
            let mut core = target.cores[replica].lock();
            let at = core.read_position(target.group);
            core.begin_read_lease(target.group, at);
            at
        };
        self.pending_reads.insert(
            self.read_seq,
            PendingRead {
                scheduled_us,
                target_idx,
                replica,
                at,
                row,
                attr,
                lag: home.0.saturating_sub(at.0),
            },
        );
        ctx.send(
            target.services[replica],
            Msg::SnapshotRead {
                req_id: self.read_seq,
                group: target.group,
                key: row,
                attr,
                at,
            },
        );
    }

    /// Record one write patience expiry as a timed-out abort.
    fn expire_write(&mut self, latency_us: u64) {
        let mut metrics = self.metrics.lock();
        metrics.attempted += 1;
        metrics.aborted += 1;
        metrics.timed_out += 1;
        metrics.abort_latency_us.push(latency_us);
    }

    fn finish(&mut self, now_us: u64) {
        if self.finished {
            return;
        }
        let stale: Vec<u64> = self.pending.keys().copied().collect();
        for req in stale {
            if self.pending.remove(&req).is_some() {
                self.expire_write(self.patience_us.min(now_us));
            }
        }
        self.order.clear();
        // Release the lease of every read still in flight and shed it
        // (a late reply finds no pending entry and is dropped).
        let in_flight: Vec<u64> = self.pending_reads.keys().copied().collect();
        let mut shed = 0;
        for req in in_flight {
            if let Some(read) = self.pending_reads.remove(&req) {
                let target = &self.targets[read.target_idx];
                target.cores[read.replica]
                    .lock()
                    .end_read_lease(target.group, read.at);
                shed += 1;
            }
        }
        shed += self.read_backlog.len();
        self.read_backlog.clear();
        self.reads.lock().shed += shed;
        self.finished = true;
        self.done.fetch_add(1, Ordering::SeqCst);
    }

    fn tick(&mut self, ctx: &mut Context<Msg>) {
        if self.finished {
            return;
        }
        let now_us = ctx.now().as_micros();
        // Expire writes whose patience ran out.
        while let Some(&(req, submitted_us)) = self.order.front() {
            if submitted_us + self.patience_us > now_us {
                break;
            }
            self.order.pop_front();
            if self.pending.remove(&req).is_some() {
                self.expire_write(now_us - submitted_us);
            }
        }
        // Shed queued reads that outwaited patience.
        let mut shed = 0;
        while let Some(&(scheduled_us, _)) = self.read_backlog.front() {
            if scheduled_us + self.patience_us > now_us {
                break;
            }
            self.read_backlog.pop_front();
            shed += 1;
        }
        if shed > 0 {
            self.reads.lock().shed += shed;
        }
        // Submit every arrival that has come due, at its scheduled time.
        while self.next_due_us <= now_us as f64 && (self.next_due_us as u64) < self.cutoff_us {
            let scheduled = self.next_due_us as u64;
            if self.rng.gen::<f64>() < self.read_fraction {
                self.arrive_read(ctx, now_us, scheduled);
            } else {
                self.submit_write(ctx, now_us, scheduled);
            }
            let gap = self.draw_gap();
            self.next_due_us += gap;
        }
        let drained = self.pending.is_empty()
            && self.pending_reads.is_empty()
            && self.read_backlog.is_empty();
        if now_us >= self.cutoff_us && (drained || now_us >= self.deadline_us) {
            self.finish(now_us);
            return;
        }
        // lint:allow(timer-refire): the read-mostly driver is a measurement
        // harness that never crashes mid-run, so no recovery path re-arms it.
        ctx.set_timer(SimDuration::from_micros(TICK_US), TICK_TAG);
    }
}

impl Actor<Msg> for ReadMostlyDriver {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        let phase = ctx.rand_below(TICK_US);
        let first = self.draw_gap();
        self.next_due_us = phase as f64 + first;
        ctx.set_timer(SimDuration::from_micros(TICK_US + phase), TICK_TAG);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::SnapshotReadReply {
                req_id,
                value,
                unavailable,
                ..
            } => {
                let Some(read) = self.pending_reads.remove(&req_id) else {
                    return;
                };
                let target = &self.targets[read.target_idx];
                target.cores[read.replica]
                    .lock()
                    .end_read_lease(target.group, read.at);
                let now_us = ctx.now().as_micros();
                {
                    let mut tally = self.reads.lock();
                    if unavailable {
                        tally.unavailable += 1;
                    } else {
                        tally.completed += 1;
                        tally
                            .latency_us
                            .push(now_us.saturating_sub(read.scheduled_us));
                        tally.staleness_max = tally.staleness_max.max(read.lag);
                        tally.staleness_sum += read.lag;
                        tally.samples.push(SnapshotReadSample {
                            group: target.group,
                            at: read.at,
                            row: read.row,
                            attr: read.attr,
                            observed: value,
                        });
                    }
                }
                // A freed slot pulls the oldest queued read immediately.
                if !self.finished {
                    if let Some((scheduled_us, key)) = self.read_backlog.pop_front() {
                        self.issue_read(ctx, now_us, scheduled_us, key);
                    }
                }
            }
            Msg::CommitReply {
                req_id,
                txn,
                committed,
                promotions,
                combined,
                rounds,
                abort_reason,
                ..
            } => {
                let Some(scheduled_us) = self.pending.remove(&req_id) else {
                    return;
                };
                let now_us = ctx.now().as_micros();
                let latency = SimDuration::from_micros(now_us.saturating_sub(scheduled_us));
                let mut metrics = self.metrics.lock();
                metrics.record(&TxnResult {
                    committed,
                    read_only: false,
                    promotions,
                    combined,
                    rounds,
                    latency,
                    total_latency: latency,
                    abort_reason,
                    txn: Some(txn),
                });
                metrics.last_decision_us = metrics.last_decision_us.max(now_us);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == TICK_TAG {
            self.tick(ctx);
        }
    }
}

/// Run one read-mostly point: build the sharded cluster, offer the mixed
/// load, drain, verify the write plane with the serializability checker,
/// prove every snapshot read against the merged decided logs, and check
/// every read lease was released.
///
/// Panics if any group's logs violate replica agreement or one-copy
/// serializability, if any snapshot read came back unavailable (they are
/// non-aborting by construction), if any read is not explained by its
/// group's decided log at its watermark, or if a lease leaked.
pub fn run_readmostly(spec: &ReadMostlySpec) -> ReadMostlyResult {
    let mut cluster = ParallelCluster::build(
        ParallelClusterConfig::new(spec.topology.clone(), spec.protocol)
            .with_workers(spec.workers)
            .with_batch(spec.batch.clone())
            .with_rtt_scale(spec.rtt_scale)
            .with_seed(spec.seed),
    );
    let replicas = cluster.num_datacenters();
    let serving = spec.serving_replicas.clamp(1, replicas);
    let symbols = cluster.symbols();
    let mut targets = Vec::with_capacity(spec.groups);
    for g in 0..spec.groups.max(1) {
        let group = cluster.register_group(&format!("g{g}"));
        targets.push(ReadTarget {
            group,
            home_service: cluster.service_for_group(group),
            home_core: cluster.home_core(group),
            services: (0..replicas)
                .map(|r| cluster.service_for_group_at(group, r))
                .collect(),
            cores: (0..replicas)
                .map(|r| cluster.core_for_group_at(group, r))
                .collect(),
        });
    }
    let targets = Arc::new(targets);

    let rows_n = spec.keys.clamp(1, MAX_ROWS);
    let attrs_n = spec.keys.div_ceil(rows_n);
    let rows: Arc<Vec<KeyId>> =
        Arc::new((0..rows_n).map(|r| symbols.key(&format!("r{r}"))).collect());
    let attrs: Arc<Vec<AttrId>> = Arc::new(
        (0..attrs_n)
            .map(|a| symbols.attr(&format!("c{a}")))
            .collect(),
    );
    let sampler = KeySampler::new(spec.key_distribution, spec.keys);

    let drivers = spec.drivers.max(1);
    let hub = MetricsHub::new();
    let mut sinks: Vec<SharedMetrics> = Vec::with_capacity(drivers);
    let mut tallies: Vec<Arc<Mutex<ReadTally>>> = Vec::with_capacity(drivers);
    let done = Arc::new(AtomicUsize::new(0));
    let mean_gap_us = 1_000_000.0 * drivers as f64 / spec.offered_tps.max(1.0);
    let cutoff_us = spec.duration.as_micros() as u64;
    let deadline_us = cutoff_us + spec.grace.as_micros() as u64;
    for d in 0..drivers {
        let sink = hub.register();
        sinks.push(sink.clone());
        let tally = Arc::new(Mutex::new(ReadTally::default()));
        tallies.push(Arc::clone(&tally));
        let driver = ReadMostlyDriver {
            targets: Arc::clone(&targets),
            rows: Arc::clone(&rows),
            attrs: Arc::clone(&attrs),
            sampler: sampler.clone(),
            rng: StdRng::seed_from_u64(
                spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (d as u64 + 1),
            ),
            my_replica: d % replicas,
            serving,
            max_open_reads: spec.max_open_reads.max(1),
            read_fraction: spec.read_fraction.clamp(0.0, 1.0),
            mean_gap_us,
            poisson: spec.poisson,
            next_due_us: 0.0,
            cutoff_us,
            deadline_us,
            patience_us: spec.patience.as_micros() as u64,
            seq: 0,
            read_seq: 0,
            pending: HashMap::new(),
            order: VecDeque::new(),
            pending_reads: HashMap::new(),
            read_backlog: VecDeque::new(),
            rp_cache: vec![(u64::MAX, LogPosition::ZERO); targets.len()],
            metrics: sink,
            reads: tally,
            finished: false,
            done: Arc::clone(&done),
        };
        cluster.add_driver(d % spec.workers, d % replicas, move |_node| {
            Box::new(driver)
        });
    }

    let max_wall = spec.duration + spec.grace + Duration::from_secs(2);
    let done_flag = Arc::clone(&done);
    let report = cluster.run(max_wall, move || {
        done_flag.load(Ordering::SeqCst) >= drivers
    });

    let check = cluster
        .verify()
        .expect("read-mostly run produced a non-serializable or diverged history");

    // Write-plane totals, as in the open-loop harness.
    let mut totals = RunMetrics::default();
    for sink in &sinks {
        totals.merge(&sink.lock());
    }
    totals.merge(&cluster.service_commit_metrics());

    // Read-plane totals.
    let mut completed = 0;
    let mut unavailable = 0;
    let mut shed = 0;
    let mut staleness_max = 0u64;
    let mut staleness_sum = 0u64;
    let mut latency_samples: Vec<SimDuration> = Vec::new();
    let mut samples: Vec<SnapshotReadSample> = Vec::new();
    for tally in &tallies {
        let mut tally = tally.lock();
        completed += tally.completed;
        unavailable += tally.unavailable;
        shed += tally.shed;
        staleness_max = staleness_max.max(tally.staleness_max);
        staleness_sum += tally.staleness_sum;
        latency_samples.extend(
            tally
                .latency_us
                .iter()
                .map(|&us| SimDuration::from_micros(us)),
        );
        samples.append(&mut tally.samples);
    }
    assert_eq!(
        unavailable, 0,
        "snapshot reads are non-aborting: the watermark is captured from the serving \
         replica itself, so it can never be ahead of that replica's applied prefix"
    );
    // Every lease must have been released (reads replied or force-shed).
    let leaked: usize = targets
        .iter()
        .flat_map(|t| t.cores.iter())
        .map(|core| core.lock().read_lease_count())
        .sum();
    assert_eq!(leaked, 0, "every snapshot-read lease must be released");

    // Prove every completed read against the merged decided logs.
    let mut logs: HashMap<GroupId, GroupLog> = HashMap::new();
    for target in targets.iter() {
        let cloned: Vec<GroupLog> = target
            .cores
            .iter()
            .map(|core| core.lock().log(target.group).cloned().unwrap_or_default())
            .collect();
        let refs: Vec<&GroupLog> = cloned.iter().collect();
        logs.insert(target.group, checker::merged_log(&refs));
    }
    let reads_verified = match explain_snapshot_reads(&logs, &samples) {
        Ok(n) => n,
        Err(e) => panic!("unexplained snapshot read: {e}"),
    };

    let offered_secs = spec.duration.as_secs_f64().max(1e-9);
    let offered_reads = spec.offered_tps * spec.read_fraction.clamp(0.0, 1.0);
    let read_tps = completed as f64 / offered_secs;
    ReadMostlyResult {
        offered_tps: spec.offered_tps,
        workers: spec.workers,
        groups: spec.groups,
        serving_replicas: serving,
        read_fraction: spec.read_fraction,
        write_attempted: totals.attempted,
        write_committed: totals.committed,
        write_aborted: totals.aborted,
        write_timed_out: totals.timed_out,
        write_latency: totals.commit_latency(),
        reads_completed: completed,
        reads_unavailable: unavailable,
        reads_shed: shed,
        read_latency: LatencyStats::from_samples(&latency_samples),
        read_tps,
        max_staleness: staleness_max,
        mean_staleness: staleness_sum as f64 / (completed.max(1)) as f64,
        reads_verified,
        read_saturated: shed > 0 || read_tps < 0.90 * offered_reads,
        checked_groups: check.len(),
        wall: report.elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but real read-mostly point: every datacenter serves, so
    /// reads stay local, nothing sheds, and every sample is proven.
    #[test]
    fn small_readmostly_point_runs_and_explains_every_read() {
        let spec = ReadMostlySpec::new(2, 400.0, 3)
            .with_groups(4)
            .with_keys(10_000)
            .with_topology(Topology::vvv())
            .with_rtt_scale(0.5)
            .with_windows(
                Duration::from_millis(300),
                Duration::from_millis(700),
                Duration::from_millis(600),
            )
            .with_seed(7);
        let result = run_readmostly(&spec);
        assert!(result.reads_completed > 0, "snapshot reads must complete");
        assert_eq!(result.reads_unavailable, 0);
        assert_eq!(
            result.reads_verified, result.reads_completed,
            "every completed read is proven against the decided log"
        );
        assert!(result.write_committed > 0, "the write plane must commit");
        assert!(result.checked_groups > 0, "checker must have run");
        assert_eq!(result.serving_replicas, 3);
        assert!(result.read_latency.count > 0);
    }

    /// The replay rejects an observation that no decided write explains.
    #[test]
    fn explain_rejects_an_unexplained_observation() {
        let logs: HashMap<GroupId, GroupLog> = HashMap::from([(GroupId(1), GroupLog::default())]);
        let sample = SnapshotReadSample {
            group: GroupId(1),
            at: LogPosition(3),
            row: KeyId(1),
            attr: AttrId(1),
            observed: Some("phantom".to_string()),
        };
        let err = explain_snapshot_reads(&logs, &[sample]).unwrap_err();
        assert!(
            err.contains("phantom"),
            "error names the observation: {err}"
        );
        // An explained (empty) observation passes.
        let ok = SnapshotReadSample {
            group: GroupId(1),
            at: LogPosition(3),
            row: KeyId(1),
            attr: AttrId(1),
            observed: None,
        };
        assert_eq!(explain_snapshot_reads(&logs, &[ok]).unwrap(), 1);
    }
}
