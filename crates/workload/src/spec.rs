//! Experiment specifications and results.

use crate::zipf::KeyDistribution;
use mdstore::{CommitProtocol, CommitRoute, RunMetrics, Topology};
use simnet::{ChaosSpec, NetStats, SimDuration};
use walog::checker::CheckReport;

/// Where benchmark clients are placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Every client runs in the given datacenter (one YCSB instance, the
    /// setting of Figures 4–7).
    AllAt(usize),
    /// Clients are spread round-robin over the datacenters (one YCSB
    /// instance per datacenter, the setting of Figure 8).
    RoundRobin,
}

/// A complete experiment description: cluster, protocol and workload.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Human-readable name (used in harness output).
    pub name: String,
    /// Datacenter layout.
    pub topology: Topology,
    /// Commit protocol under test.
    pub protocol: CommitProtocol,
    /// Commit route every client uses: `Direct` (the paper's client-driven
    /// proposer) or `Submitted` (ship to the group home's service-hosted
    /// commit engine).
    pub route: CommitRoute,
    /// Number of concurrent benchmark clients (the paper uses 4 threads).
    pub num_clients: usize,
    /// Transactions each client keeps open (and committing) concurrently
    /// (1 = the paper's strictly serial thread).
    pub max_open: usize,
    /// Client placement.
    pub placement: Placement,
    /// Transactions issued per client.
    pub transactions_per_client: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Fraction of read operations.
    pub read_fraction: f64,
    /// Total attributes in the entity group (contention knob of Figure 6).
    pub num_attributes: usize,
    /// How operations pick attributes: uniform (the paper's YCSB setting)
    /// or zipfian-skewed, concentrating the load on a hot head.
    pub key_distribution: KeyDistribution,
    /// Per-client target transaction rate (throughput knob of Figure 7).
    pub target_tps: f64,
    /// Simulated execution cost per application operation (models the YCSB
    /// client's per-operation HBase access and processing time; see
    /// `DriverConfig::op_delay`).
    pub op_delay: SimDuration,
    /// Gap between successive clients' first transactions (staggered starts).
    pub stagger: SimDuration,
    /// Simulation seed.
    pub seed: u64,
    /// Promotion cap override (`None` = protocol default).
    pub max_promotions: Option<Option<u32>>,
    /// Combination enable override (`None` = protocol default).
    pub combination: Option<bool>,
    /// Leader fast path override (`None` = protocol default).
    pub fast_path: Option<bool>,
    /// Optional fault schedule injected while the workload runs: rolling
    /// leader crashes, flapping inter-site partitions and group-home churn,
    /// generated deterministically from the experiment seed. `None` runs
    /// fault-free (byte-identical to the pre-chaos harness).
    pub chaos: Option<ChaosSpec>,
}

impl ExperimentSpec {
    /// The paper's default workload — 500 transactions split over 4 clients,
    /// 10 operations per transaction, 50 % reads, 100 attributes, 1 tx/s per
    /// client — on the given cluster and protocol.
    pub fn paper_default(topology: Topology, protocol: CommitProtocol) -> Self {
        ExperimentSpec {
            name: format!("{}-{}", topology.name(), protocol.name()),
            topology,
            protocol,
            route: CommitRoute::Direct,
            max_open: 1,
            num_clients: 4,
            placement: Placement::AllAt(0),
            transactions_per_client: 125,
            ops_per_txn: 10,
            read_fraction: 0.5,
            num_attributes: 100,
            key_distribution: KeyDistribution::Uniform,
            target_tps: 1.0,
            op_delay: SimDuration::from_millis(18),
            stagger: SimDuration::from_millis(250),
            seed: 42,
            max_promotions: None,
            combination: None,
            fast_path: None,
            chaos: None,
        }
    }

    /// Total transactions across all clients.
    pub fn total_transactions(&self) -> usize {
        self.num_clients * self.transactions_per_client
    }

    /// Builder-style name override.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style attribute-count override (contention knob).
    pub fn with_attributes(mut self, n: usize) -> Self {
        self.num_attributes = n;
        self
    }

    /// Builder-style key-distribution override (skew knob).
    pub fn with_key_distribution(mut self, distribution: KeyDistribution) -> Self {
        self.key_distribution = distribution;
        self
    }

    /// Builder-style per-client target rate override (throughput knob).
    pub fn with_target_tps(mut self, tps: f64) -> Self {
        self.target_tps = tps;
        self
    }

    /// Builder-style placement override.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style client-count / per-client-transaction override.
    pub fn with_clients(mut self, clients: usize, transactions_each: usize) -> Self {
        self.num_clients = clients;
        self.transactions_per_client = transactions_each;
        self
    }

    /// Builder-style commit-route override.
    pub fn with_route(mut self, route: CommitRoute) -> Self {
        self.route = route;
        self
    }

    /// Builder-style override of the per-client open-transaction cap.
    pub fn with_max_open(mut self, max_open: usize) -> Self {
        self.max_open = max_open.max(1);
        self
    }

    /// Builder-style chaos-schedule override: inject the given fault spec
    /// while the workload runs.
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The datacenter a given client index is placed in.
    pub fn replica_for_client(&self, client_index: usize) -> usize {
        match self.placement {
            Placement::AllAt(replica) => replica.min(self.topology.num_datacenters() - 1),
            Placement::RoundRobin => client_index % self.topology.num_datacenters(),
        }
    }
}

/// Everything measured in one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment name (copied from the spec).
    pub name: String,
    /// Cluster name (e.g. `"VVV"`).
    pub cluster: String,
    /// Protocol name (`"paxos"` or `"paxos-cp"`).
    pub protocol: String,
    /// Total transactions attempted.
    pub attempted: usize,
    /// Aggregate metrics over all clients.
    pub totals: RunMetrics,
    /// Per-client metrics, in client order (Figure 8 reports per datacenter;
    /// combine with `client_replicas`).
    pub per_client: Vec<RunMetrics>,
    /// The datacenter each client was placed in.
    pub client_replicas: Vec<usize>,
    /// Serializability check report per transaction group, keyed by the
    /// group's resolved name (the run fails loudly before producing a
    /// result if any property is violated).
    pub check: Vec<(String, CheckReport)>,
    /// Network statistics of the simulation.
    pub net: NetStats,
    /// Virtual time the experiment took.
    pub duration: SimDuration,
}

impl ExperimentResult {
    /// Commit counts summed per promotion round, padded to `rounds` entries.
    pub fn commits_by_round(&self, rounds: usize) -> Vec<usize> {
        let mut out = self.totals.commits_by_promotion.clone();
        if out.len() < rounds {
            out.resize(rounds, 0);
        }
        out
    }

    /// Fraction of attempted transactions that committed.
    pub fn commit_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.totals.committed as f64 / self.attempted as f64
        }
    }

    /// Aggregate metrics of the clients placed in one datacenter.
    pub fn metrics_for_replica(&self, replica: usize) -> RunMetrics {
        let mut total = RunMetrics::default();
        for (metrics, r) in self.per_client.iter().zip(&self.client_replicas) {
            if *r == replica {
                total.merge(metrics);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_500_transactions() {
        let spec = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp);
        assert_eq!(spec.total_transactions(), 500);
        assert_eq!(spec.num_clients, 4);
        assert_eq!(spec.ops_per_txn, 10);
    }

    #[test]
    fn placement_maps_clients_to_replicas() {
        let spec = ExperimentSpec::paper_default(Topology::voc(), CommitProtocol::PaxosCp)
            .with_placement(Placement::RoundRobin)
            .with_clients(3, 500);
        assert_eq!(spec.replica_for_client(0), 0);
        assert_eq!(spec.replica_for_client(1), 1);
        assert_eq!(spec.replica_for_client(2), 2);
        let spec = spec.with_placement(Placement::AllAt(1));
        assert_eq!(spec.replica_for_client(2), 1);
        // Out-of-range placement clamps to the last datacenter.
        let spec = spec.with_placement(Placement::AllAt(99));
        assert_eq!(spec.replica_for_client(0), 2);
    }

    #[test]
    fn builders_override_fields() {
        let spec = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::BasicPaxos)
            .named("x")
            .with_seed(7)
            .with_attributes(20)
            .with_target_tps(4.0);
        assert_eq!(spec.name, "x");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.num_attributes, 20);
        assert!((spec.target_tps - 4.0).abs() < f64::EPSILON);
    }
}
