//! Rolling-failure chaos harness on the deterministic simulation.
//!
//! [`run_chaos`] offers an open-loop transactional load (arrivals scheduled
//! independently of completions, latency charged from the scheduled arrival
//! instant) to a simulated cluster while a seeded [`ChaosSpec`] schedule
//! crashes leaders with staggered restarts, flaps an inter-site partition
//! and migrates group homes. Every run asserts, before returning:
//!
//! * **serializability** — the merged logs pass the checker, exactly like a
//!   fault-free experiment;
//! * **exactly-once** — every commit a client observed appears exactly once
//!   in the merged decided log, across crashes, duplicated deliveries and
//!   group-home handoffs;
//! * **liveness** (optional) — committed throughput never flatlines to zero
//!   in any [`ChaosRunSpec::liveness_window`] of the load phase.
//!
//! The drivers commit down [`mdstore::CommitRoute::Submitted`] and lean on
//! the session's automatic re-submission: an `Unavailable` outcome or an
//! expired submit-patience window triggers a deduplicated retry against the
//! group's *current* home, so a fault window costs latency, not outcomes.

use crate::driver::SharedMetrics;
use crate::zipf::{KeyDistribution, KeySampler};
use mdstore::{
    AbortReason, ClientAction, ClientConfig, Cluster, ClusterConfig, CommitProtocol, CommitRoute,
    Directory, Msg, RunMetrics, Session, StorageConfig, Topology,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Actor, ChaosEvent, ChaosSchedule, ChaosSpec, Context, NodeId, SimDuration, SiteId};
use std::collections::HashMap;
use std::sync::Arc;
use walog::{AttrId, GroupId, KeyId, TxnId};

/// Reserved timer tag for the driver's arrival clock (session tags count up
/// from 1 and can never collide).
const ARRIVAL_TAG: u64 = u64::MAX;

/// A complete chaos-run description: cluster, fault schedule and load.
#[derive(Clone, Debug)]
pub struct ChaosRunSpec {
    /// Datacenter layout.
    pub topology: Topology,
    /// Commit protocol under test.
    pub protocol: CommitProtocol,
    /// Transaction groups (`g0 .. g{n-1}`), homes spread round-robin and
    /// churned by the schedule's `MoveHome` events.
    pub groups: usize,
    /// Open-loop drivers, spread round-robin over the datacenters. Their
    /// sites crash too — a driver rides through its own outages by
    /// re-firing suppressed timers on recovery.
    pub drivers: usize,
    /// Attributes per entity group (`a0 .. a{n-1}`).
    pub attributes: usize,
    /// How writes pick their attribute (zipfian concentrates the load).
    pub key_distribution: KeyDistribution,
    /// Aggregate offered load over all drivers, in transactions per second.
    pub offered_tps: f64,
    /// Length of the arrival phase; the run then drains every outstanding
    /// commit (and any late schedule events) to completion.
    pub load_duration: SimDuration,
    /// The fault scenario injected while the load runs.
    pub chaos: ChaosSpec,
    /// Liveness bucket width: with [`ChaosRunSpec::require_liveness`], every
    /// full window of the load phase must commit at least one transaction.
    pub liveness_window: SimDuration,
    /// Session re-submission budget per transaction.
    pub max_resubmissions: u32,
    /// Session submit-patience override (`None` = the session default of
    /// eight message timeouts).
    pub submit_patience: Option<SimDuration>,
    /// Panic if any full liveness window commits nothing.
    pub require_liveness: bool,
    /// Seed for the cluster, the drivers and the fault schedule.
    pub seed: u64,
    /// Storage plane of the datacenters. With [`StorageConfig::Durable`],
    /// every crash tears the victim's WAL tail mid-append and every restart
    /// rebuilds the datacenter's state from snapshot + WAL before it
    /// rejoins, asserting the recovered state matches the pre-crash one.
    pub storage: StorageConfig,
}

impl ChaosRunSpec {
    /// The canonical rolling-failure scenario: a VVV cluster under zipfian
    /// open-loop load while a leader crashes roughly every two seconds
    /// (staggered restarts), the link between the two non-primary sites
    /// flaps, and group homes churn every few seconds.
    pub fn rolling_failure(load_duration: SimDuration) -> Self {
        let chaos = ChaosSpec::new(load_duration)
            .with_rolling_crashes(3, SimDuration::from_secs(2), SimDuration::from_millis(400))
            .with_flapping(
                SiteId(1),
                SiteId(2),
                SimDuration::from_secs(2),
                SimDuration::from_millis(300),
            )
            .with_home_churn(4, SimDuration::from_secs(3));
        ChaosRunSpec {
            topology: Topology::vvv(),
            protocol: CommitProtocol::PaxosCp,
            groups: 4,
            drivers: 6,
            attributes: 64,
            key_distribution: KeyDistribution::Zipfian { theta: 0.99 },
            offered_tps: 200.0,
            load_duration,
            chaos,
            liveness_window: SimDuration::from_secs(1),
            // Generous: a churned home can land on a crashed site, so one
            // transaction may ride out several consecutive fault windows
            // (patience + growing backoff per attempt) before it lands.
            max_resubmissions: 32,
            submit_patience: Some(SimDuration::from_millis(400)),
            require_liveness: true,
            seed: 42,
            storage: StorageConfig::InMemory,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style fault-schedule override.
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = chaos;
        self
    }

    /// Builder-style offered-load override.
    pub fn with_offered_tps(mut self, tps: f64) -> Self {
        self.offered_tps = tps;
        self
    }

    /// Builder-style storage-plane override (durable crash-restarts).
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }
}

/// Everything measured in one chaos run (the run panics before producing a
/// result if serializability, exactly-once or required liveness fails).
#[derive(Clone, Debug)]
pub struct ChaosRunResult {
    /// Transactions offered (every one reached an outcome).
    pub attempted: u64,
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted for any reason.
    pub aborted: u64,
    /// Outcomes surfaced to clients as `Unavailable` after the
    /// re-submission budget ran out (0 in a healthy run).
    pub unavailable: u64,
    /// Faults the schedule injected (crashes, partitions, home moves).
    pub faults_injected: u64,
    /// Automatic session re-submissions across all drivers.
    pub resubmissions: u64,
    /// Retries answered from the dedup layers instead of re-executing.
    pub duplicate_suppressions: u64,
    /// Commits per full liveness window of the load phase, in time order.
    pub window_commits: Vec<u64>,
    /// The quietest full window's commit count.
    pub min_window_commits: u64,
    /// p99 of open-loop commit latency (scheduled arrival → decision), µs.
    /// Fault windows show up here as the availability dip.
    pub availability_dip_p99_us: u64,
    /// Aggregate client + service metrics.
    pub totals: RunMetrics,
    /// Virtual time the run took, including the drain phase.
    pub duration: SimDuration,
    /// Datacenter restarts that rebuilt state from snapshot + WAL (durable
    /// mode only; 0 in-memory).
    pub durable_restarts: u64,
    /// Restarts whose WAL ended in a torn partial record, tolerated by
    /// stopping replay at the last durable frame.
    pub torn_wal_tails: u64,
}

impl ChaosRunResult {
    /// Re-submissions per committed transaction (the overhead the fault
    /// schedule extracted from the retry machinery).
    pub fn resubmission_rate(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.resubmissions as f64 / self.committed as f64
        }
    }
}

/// Client-observed outcomes shared between the drivers and the harness.
#[derive(Default)]
struct Observations {
    /// Decision instant of every committed transaction, µs of virtual time.
    commit_times_us: Vec<u64>,
    /// Open-loop latency (scheduled arrival → decision) per commit, µs.
    latencies_us: Vec<u64>,
    /// Ids the clients observed as committed (audited against the logs).
    committed_ids: Vec<TxnId>,
    /// Outcomes surfaced as `Unavailable` after the retry budget ran out.
    unavailable: u64,
}

type SharedObservations = Arc<Mutex<Observations>>;

/// One open-loop chaos driver: draws Poisson arrivals on its own clock,
/// fires each as a single-write transaction through its [`Session`]
/// (submitted route), and keeps the arrival process independent of
/// completions — a fault window backlogs arrivals, it never pauses them.
struct ChaosDriver {
    session: Session,
    metrics: SharedMetrics,
    obs: SharedObservations,
    rng: StdRng,
    groups: Vec<GroupId>,
    row: KeyId,
    attrs: Vec<AttrId>,
    sampler: KeySampler,
    /// Mean inter-arrival gap in µs (exponential).
    mean_gap_us: f64,
    /// No arrivals are scheduled at or past this instant.
    cutoff_us: u64,
    /// Next scheduled arrival, µs. Advances monotonically; arrivals that
    /// come due while the driver's site is down are issued (backdated) at
    /// recovery, so downtime is charged to latency, not silently omitted.
    next_arrival_us: u64,
    /// Scheduled arrival instant per in-flight transaction id.
    scheduled: HashMap<TxnId, u64>,
    seq: u64,
}

impl ChaosDriver {
    #[allow(clippy::too_many_arguments)]
    fn new(
        node: NodeId,
        home_replica: usize,
        directory: Arc<Directory>,
        client_config: ClientConfig,
        spec: &ChaosRunSpec,
        driver_index: usize,
        metrics: SharedMetrics,
        obs: SharedObservations,
    ) -> Self {
        let symbols = directory.symbols();
        let groups: Vec<GroupId> = (0..spec.groups.max(1))
            .map(|i| symbols.group(&format!("g{i}")))
            .collect();
        let row = symbols.key("row0");
        let attrs: Vec<AttrId> = (0..spec.attributes.max(1))
            .map(|i| symbols.attr(&format!("a{i}")))
            .collect();
        let sampler = KeySampler::new(spec.key_distribution, attrs.len() as u64);
        let per_driver_tps = spec.offered_tps / spec.drivers.max(1) as f64;
        let mean_gap_us = if per_driver_tps > 0.0 {
            1_000_000.0 / per_driver_tps
        } else {
            f64::INFINITY
        };
        let seed = spec
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(driver_index as u64 + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        // Staggered first arrivals so the drivers don't fire in phase.
        let first = 1_000 + (rng.gen::<f64>() * mean_gap_us.min(1_000_000.0)) as u64;
        ChaosDriver {
            session: Session::new(node, home_replica, directory, client_config),
            metrics,
            obs,
            rng,
            groups,
            row,
            attrs,
            sampler,
            mean_gap_us,
            cutoff_us: spec.load_duration.as_micros(),
            next_arrival_us: first,
            scheduled: HashMap::new(),
            seq: 0,
        }
    }

    fn advance_arrival(&mut self) {
        let u: f64 = self.rng.gen();
        let gap = (-(u.max(1e-12)).ln() * self.mean_gap_us).max(1.0);
        self.next_arrival_us = self.next_arrival_us.saturating_add(gap as u64);
    }

    /// Issue every arrival scheduled at or before `now` (several at once
    /// right after a recovery), then re-arm the arrival timer.
    fn issue_due(&mut self, ctx: &mut Context<Msg>) {
        let now = ctx.now();
        while self.next_arrival_us < self.cutoff_us && self.next_arrival_us <= now.as_micros() {
            let scheduled_us = self.next_arrival_us;
            self.advance_arrival();
            let group = self.groups[self.rng.gen_range(0..self.groups.len() as u64) as usize];
            let handle = self.session.begin_id(now, group);
            let rank = self.sampler.sample(&mut self.rng) as usize;
            let attr = self.attrs[rank.min(self.attrs.len() - 1)];
            self.seq += 1;
            let value = format!("c{}-{}", ctx.node().0, self.seq);
            self.session
                .write_id(handle, self.row, attr, value)
                .expect("write inside the just-opened transaction");
            let actions = self
                .session
                .commit(now, handle)
                .expect("commit of the just-built transaction");
            if let Some(id) = self.session.txn_id(handle) {
                self.scheduled.insert(id, scheduled_us);
            }
            self.apply_actions(ctx, actions);
        }
        if self.next_arrival_us < self.cutoff_us {
            let delay = SimDuration::from_micros(
                self.next_arrival_us.saturating_sub(now.as_micros()).max(1),
            );
            ctx.set_timer(delay, ARRIVAL_TAG);
        }
    }

    fn apply_actions(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    let now_us = ctx.now().as_micros();
                    {
                        let mut metrics = self.metrics.lock();
                        metrics.record(&result);
                        metrics.last_decision_us = metrics.last_decision_us.max(now_us);
                        // Cumulative per-session counter: overwrite, the
                        // sink belongs to this driver alone.
                        metrics.resubmissions = self.session.resubmissions();
                    }
                    let mut obs = self.obs.lock();
                    if let Some(id) = result.txn {
                        let scheduled_us = self.scheduled.remove(&id).unwrap_or(now_us);
                        if result.committed {
                            obs.commit_times_us.push(now_us);
                            obs.latencies_us.push(now_us.saturating_sub(scheduled_us));
                            obs.committed_ids.push(id);
                        }
                    }
                    if result.abort_reason == Some(AbortReason::Unavailable) {
                        obs.unavailable += 1;
                    }
                }
            }
        }
    }
}

impl Actor<Msg> for ChaosDriver {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        if self.next_arrival_us < self.cutoff_us {
            ctx.set_timer(SimDuration::from_micros(self.next_arrival_us), ARRIVAL_TAG);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let now = ctx.now();
        let actions = self.session.on_message(now, from, &msg);
        self.apply_actions(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == ARRIVAL_TAG {
            self.issue_due(ctx);
        } else {
            let now = ctx.now();
            let actions = self.session.on_timer(now, tag);
            self.apply_actions(ctx, actions);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>) {
        // Timers suppressed during the outage never fire: re-fire the
        // session's (commit patience → deduplicated re-submission) and
        // catch the arrival clock up, issuing the backlog immediately.
        let now = ctx.now();
        let actions = self.session.refire_timers(now);
        self.apply_actions(ctx, actions);
        self.issue_due(ctx);
    }
}

/// Run one chaos scenario to completion and return its measurements.
///
/// Panics if the history is non-serializable, if any client-observed commit
/// is missing from (or duplicated in) the merged decided log, or — with
/// [`ChaosRunSpec::require_liveness`] — if any full liveness window of the
/// load phase commits nothing.
pub fn run_chaos(spec: &ChaosRunSpec) -> ChaosRunResult {
    let mut cluster = Cluster::build(
        ClusterConfig::new(spec.topology.clone(), spec.protocol)
            .with_seed(spec.seed)
            .with_storage(spec.storage.clone()),
    );
    let replicas = cluster.num_datacenters();
    let durable = spec.storage.is_durable();

    // Pre-intern the group names so home churn can address groups before
    // their first commit creates a log.
    let symbols = cluster.symbols();
    let groups: Vec<GroupId> = (0..spec.groups.max(1))
        .map(|i| symbols.group(&format!("g{i}")))
        .collect();

    let obs: SharedObservations = Arc::new(Mutex::new(Observations::default()));
    let mut sinks: Vec<SharedMetrics> = Vec::with_capacity(spec.drivers);
    for driver_index in 0..spec.drivers.max(1) {
        let replica = driver_index % replicas;
        let mut client_config = cluster
            .client_config()
            .with_max_resubmissions(spec.max_resubmissions);
        client_config.route = CommitRoute::Submitted;
        if let Some(patience) = spec.submit_patience {
            client_config = client_config.with_submit_patience(patience);
        }
        let metrics: SharedMetrics = Arc::new(Mutex::new(RunMetrics::default()));
        sinks.push(metrics.clone());
        let directory = cluster.directory();
        let obs = obs.clone();
        let spec_ref = spec;
        cluster.add_client(replica, move |node| {
            Box::new(ChaosDriver::new(
                node,
                replica,
                directory,
                client_config,
                spec_ref,
                driver_index,
                metrics,
                obs,
            ))
        });
    }

    // Drive the fault schedule interleaved with the load, then drain.
    let started = cluster.now();
    let mut durable_restarts = 0u64;
    let mut torn_wal_tails = 0u64;
    let mut schedule = ChaosSchedule::generate(&spec.chaos, spec.seed);
    while let Some(due) = schedule.next_due() {
        cluster.sim_mut().run_until(due);
        for event in schedule.pop_due(due) {
            if durable {
                match event {
                    ChaosEvent::CrashSite(site) => {
                        // A real crash lands mid-append: leave a torn
                        // partial frame at the victim's WAL tail for the
                        // restart to tolerate.
                        cluster.core(site.0 as usize).lock().inject_torn_wal_tail();
                    }
                    ChaosEvent::RecoverSite(site) => {
                        // Before the site rejoins, rebuild its state from
                        // disk exactly as a restarted process would. The
                        // cluster asserts the recovered fingerprint equals
                        // the pre-crash one (persist-before-ack: nothing
                        // acknowledged may be lost).
                        let report = cluster
                            .restart_datacenter_from_disk(site.0 as usize)
                            .expect("durable restart must rebuild from snapshot + WAL");
                        durable_restarts += 1;
                        torn_wal_tails += u64::from(report.torn_tail);
                    }
                    _ => {}
                }
            }
            if !ChaosSchedule::apply_network(event, cluster.sim_mut()) {
                if let ChaosEvent::MoveHome { group, replica } = event {
                    cluster
                        .directory()
                        .set_group_home(groups[group % groups.len()], replica % replicas);
                }
            }
        }
    }
    cluster.sim_mut().run_until(started + spec.load_duration);
    cluster.run_to_completion();
    let duration = cluster.now() - started;

    // Serializability: same bar as a fault-free experiment.
    cluster
        .verify()
        .expect("chaos run produced a non-serializable or diverged history");

    // Exactly-once: merge the decided logs (replica agreement just verified,
    // so the first replica seen at a position speaks for all) and demand
    // every client-observed commit appears at exactly one position.
    let mut decided_at: HashMap<(GroupId, walog::LogPosition), Vec<TxnId>> = HashMap::new();
    for replica in 0..replicas {
        let core = cluster.core(replica);
        let core = core.lock();
        for (group, log) in core.logs() {
            for (position, entry) in log.iter() {
                decided_at
                    .entry((group, position))
                    .or_insert_with(|| entry.transactions().iter().map(|t| t.id).collect());
            }
        }
    }
    let mut decided_count: HashMap<TxnId, usize> = HashMap::new();
    for ids in decided_at.values() {
        for id in ids {
            *decided_count.entry(*id).or_default() += 1;
        }
    }
    let observations = Arc::try_unwrap(obs)
        .map(Mutex::into_inner)
        .unwrap_or_else(|shared| {
            // A driver clone still holds the Arc; copy the contents out.
            let guard = shared.lock();
            Observations {
                commit_times_us: guard.commit_times_us.clone(),
                latencies_us: guard.latencies_us.clone(),
                committed_ids: guard.committed_ids.clone(),
                unavailable: guard.unavailable,
            }
        });
    for id in &observations.committed_ids {
        let appearances = decided_count.get(id).copied().unwrap_or(0);
        assert!(
            appearances <= 1,
            "client-observed commit {id:?} appears {appearances} times in the merged decided log"
        );
        // In durable mode, snapshot-backed log truncation may have dropped
        // the entry from every in-memory log; the committed-id dedup index
        // (captured by snapshots, rebuilt on restart) still witnesses it.
        let witnessed = appearances == 1
            || (durable
                && (0..replicas).any(|replica| {
                    let core = cluster.core(replica);
                    let core = core.lock();
                    groups.iter().any(|group| core.is_committed(*group, *id))
                }));
        assert!(
            witnessed,
            "client-observed commit {id:?} must appear exactly once in the merged decided log \
             (or, behind a truncation floor, in a committed-id index)"
        );
    }

    // Liveness: commits bucketed over the load phase.
    let window_us = spec.liveness_window.as_micros().max(1);
    let full_windows = (spec.load_duration.as_micros() / window_us) as usize;
    let mut window_commits = vec![0u64; full_windows];
    for &at in &observations.commit_times_us {
        let window = (at / window_us) as usize;
        if window < full_windows {
            window_commits[window] += 1;
        }
    }
    let min_window_commits = window_commits.iter().copied().min().unwrap_or(0);
    if spec.require_liveness && full_windows > 0 {
        assert!(
            min_window_commits > 0,
            "committed throughput flatlined to zero in a liveness window: {window_commits:?}"
        );
    }

    let mut totals = RunMetrics::default();
    for sink in &sinks {
        totals.merge(&sink.lock());
    }
    totals.expired_reads = cluster.expired_read_counts().iter().sum();
    totals.reclaimed_versions = cluster.reclaimed_version_counts().iter().sum();
    totals.merge(&cluster.service_commit_metrics());
    totals.faults_injected += schedule.faults_injected();

    let mut latencies = observations.latencies_us.clone();
    latencies.sort_unstable();
    let availability_dip_p99_us = if latencies.is_empty() {
        0
    } else {
        latencies[(latencies.len() - 1) * 99 / 100]
    };

    ChaosRunResult {
        attempted: totals.attempted as u64,
        committed: totals.committed as u64,
        aborted: totals.aborted as u64,
        unavailable: observations.unavailable,
        faults_injected: totals.faults_injected,
        resubmissions: totals.resubmissions,
        duplicate_suppressions: totals.duplicate_suppressions,
        window_commits,
        min_window_commits,
        availability_dip_p99_us,
        totals,
        duration,
        durable_restarts,
        torn_wal_tails,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_rolling_failure_run_is_serializable_and_live() {
        let spec = ChaosRunSpec::rolling_failure(SimDuration::from_secs(6))
            .with_offered_tps(80.0)
            .with_seed(11);
        let result = run_chaos(&spec);
        assert!(result.committed > 0, "chaos run committed nothing");
        assert!(result.faults_injected > 0, "schedule injected no faults");
        assert_eq!(
            result.unavailable, 0,
            "re-submission must absorb fault windows"
        );
        assert_eq!(result.window_commits.len(), 6);
        assert!(result.min_window_commits > 0);
        assert!(result.availability_dip_p99_us > 0);
    }

    #[test]
    fn fault_free_schedule_behaves_like_a_plain_run() {
        let mut spec = ChaosRunSpec::rolling_failure(SimDuration::from_secs(3))
            .with_chaos(ChaosSpec::new(SimDuration::from_secs(3)))
            .with_offered_tps(50.0)
            .with_seed(5);
        spec.drivers = 3;
        let result = run_chaos(&spec);
        assert_eq!(result.faults_injected, 0);
        assert_eq!(result.resubmissions, 0, "nothing to retry without faults");
        assert_eq!(result.unavailable, 0);
        assert!(result.committed > 0);
        assert_eq!(
            result.durable_restarts, 0,
            "in-memory runs never restart from disk"
        );
        assert_eq!(result.torn_wal_tails, 0);
    }

    #[test]
    fn durable_rolling_failure_restarts_crashed_sites_from_disk() {
        let dir = mdstore::scratch_dir("chaos-durable");
        let spec = ChaosRunSpec::rolling_failure(SimDuration::from_secs(6))
            .with_offered_tps(60.0)
            .with_seed(23)
            .with_storage(StorageConfig::Durable(mdstore::DurableConfig::new(&dir)));
        let result = run_chaos(&spec);
        mdstore::remove_scratch_dir(&dir);
        assert!(result.committed > 0, "durable chaos run committed nothing");
        assert!(result.faults_injected > 0, "schedule injected no faults");
        assert!(
            result.durable_restarts > 0,
            "every recovered site must restart from snapshot + WAL"
        );
        assert!(
            result.torn_wal_tails > 0,
            "crashes tear the WAL tail; recovery must tolerate it"
        );
        assert_eq!(
            result.unavailable, 0,
            "re-submission must absorb fault windows even with durable restarts"
        );
    }
}
