//! Build a cluster from an experiment spec, run it, verify it, aggregate it.

use crate::driver::{ClientDriver, DriverConfig, SharedMetrics};
use crate::spec::{ExperimentResult, ExperimentSpec};
use mdstore::{Cluster, ClusterConfig, RunMetrics};
use parking_lot::Mutex;
use simnet::{ChaosEvent, ChaosSchedule, SimDuration};
use std::sync::Arc;

/// Run one experiment to completion and return its measurements.
///
/// The run panics if the resulting logs violate replica agreement or
/// one-copy serializability: correctness is checked on every experiment, not
/// just in unit tests.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let mut cluster = Cluster::build(
        ClusterConfig::new(spec.topology.clone(), spec.protocol).with_seed(spec.seed),
    );

    // One shared metrics sink per client so per-datacenter numbers (Figure 8)
    // can be reconstructed afterwards.
    let mut sinks: Vec<SharedMetrics> = Vec::with_capacity(spec.num_clients);
    let mut client_replicas = Vec::with_capacity(spec.num_clients);
    for client_index in 0..spec.num_clients {
        let replica = spec.replica_for_client(client_index);
        let metrics: SharedMetrics = Arc::new(Mutex::new(RunMetrics::default()));
        sinks.push(metrics.clone());
        client_replicas.push(replica);

        let mut client_config = cluster.client_config();
        client_config.route = spec.route;
        if let Some(cap) = spec.max_promotions {
            client_config.max_promotions = cap;
        }
        if let Some(combination) = spec.combination {
            client_config.combination = combination;
        }
        if let Some(fast_path) = spec.fast_path {
            client_config.fast_path = fast_path;
        }

        let driver_config = DriverConfig {
            group: "group0".into(),
            row_key: "row0".into(),
            num_attributes: spec.num_attributes,
            key_distribution: spec.key_distribution,
            num_transactions: spec.transactions_per_client,
            ops_per_txn: spec.ops_per_txn,
            read_fraction: spec.read_fraction,
            target_tps: spec.target_tps,
            max_open: spec.max_open,
            op_delay: spec.op_delay,
            op_jitter: 0.5,
            arrival_jitter: 0.3,
            start_delay: SimDuration::from_micros(spec.stagger.as_micros() * client_index as u64),
            seed: spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (client_index as u64 + 1),
        };

        let directory = cluster.directory();
        cluster.add_client(replica, |node| {
            Box::new(ClientDriver::new(
                node,
                replica,
                directory,
                client_config,
                driver_config,
                metrics,
            ))
        });
    }

    let started = cluster.now();
    let mut faults_injected = 0;
    if let Some(chaos_spec) = &spec.chaos {
        // Drive the fault schedule interleaved with the workload: run the
        // simulation up to each event's due time, apply it, continue. Events
        // the network layer cannot apply (group-home churn) are routed to
        // the directory, which the sessions re-consult on resubmission.
        let mut schedule = ChaosSchedule::generate(chaos_spec, spec.seed);
        let directory = cluster.directory();
        let groups = cluster.groups();
        let replicas = cluster.num_datacenters();
        while let Some(due) = schedule.next_due() {
            cluster.sim_mut().run_until(due);
            for event in schedule.pop_due(due) {
                if !ChaosSchedule::apply_network(event, cluster.sim_mut()) {
                    if let ChaosEvent::MoveHome { group, replica } = event {
                        if !groups.is_empty() {
                            directory
                                .set_group_home(groups[group % groups.len()], replica % replicas);
                        }
                    }
                }
            }
        }
        faults_injected = schedule.faults_injected();
    }
    cluster.run_to_completion();
    let duration = cluster.now() - started;

    let symbols = cluster.symbols();
    let check: Vec<(String, _)> = cluster
        .verify()
        .expect("experiment produced a non-serializable or diverged history")
        .into_iter()
        .map(|(group, report)| {
            let name = symbols
                .group_name(group)
                .unwrap_or_else(|| group.to_string());
            (name, report)
        })
        .collect();

    let per_client: Vec<RunMetrics> = sinks.iter().map(|s| s.lock().clone()).collect();
    let mut totals = RunMetrics::default();
    for metrics in &per_client {
        totals.merge(metrics);
    }
    // Service-side counters: remote reads the Transaction Services expired,
    // store versions the apply-time GC reclaimed, and — for the submitted
    // commit route — the hosted committers' window occupancy, pipeline
    // depth and split/stale counters.
    totals.expired_reads = cluster.expired_read_counts().iter().sum();
    totals.reclaimed_versions = cluster.reclaimed_version_counts().iter().sum();
    totals.merge(&cluster.service_commit_metrics());
    totals.faults_injected += faults_injected;
    assert_eq!(
        totals.attempted,
        spec.total_transactions(),
        "every scheduled transaction must reach an outcome"
    );

    ExperimentResult {
        name: spec.name.clone(),
        cluster: spec.topology.name(),
        protocol: spec.protocol.name().to_string(),
        attempted: totals.attempted,
        totals,
        per_client,
        client_replicas,
        check,
        net: cluster.sim().stats().clone(),
        duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdstore::{CommitProtocol, Topology};

    /// A deliberately small smoke test; the full 500-transaction runs live in
    /// the integration tests and the benchmark harness.
    #[test]
    fn small_experiment_runs_and_verifies() {
        let spec = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
            .with_clients(2, 10)
            .with_seed(7);
        let result = run_experiment(&spec);
        assert_eq!(result.attempted, 20);
        assert!(result.totals.committed + result.totals.aborted == 20);
        assert!(result.totals.committed > 0);
        assert!(!result.check.is_empty());
        assert_eq!(result.per_client.len(), 2);
        assert!(result.commit_ratio() > 0.0);
    }

    #[test]
    fn submitted_route_runs_and_verifies() {
        use mdstore::CommitRoute;
        let spec = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
            .with_clients(3, 8)
            .with_route(CommitRoute::Submitted)
            .with_max_open(2)
            .with_seed(13);
        let result = run_experiment(&spec);
        assert_eq!(result.attempted, 24);
        assert_eq!(result.totals.committed + result.totals.aborted, 24);
        assert!(result.totals.committed > 0);
        assert!(
            !result.totals.window_occupancy.is_empty(),
            "the service-hosted committer must have flushed windows"
        );
    }

    #[test]
    fn basic_paxos_never_promotes() {
        let spec = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::BasicPaxos)
            .with_clients(2, 10)
            .with_seed(11);
        let result = run_experiment(&spec);
        assert_eq!(result.attempted, 20);
        assert_eq!(result.totals.promoted_commits(), 0);
    }
}
