//! Property tests for the combination logic and the serializability checker.

use proptest::prelude::*;
use std::sync::Arc;
use walog::checker::{check_one_copy_serializability, Violation};
use walog::combine::{best_combination, can_append, is_valid_combination};
use walog::ident::{AttrId, GroupId, KeyId};
use walog::{GroupLog, ItemRef, LogEntry, LogPosition, Transaction, TxnId};

fn item(a: u32) -> ItemRef {
    ItemRef::new(KeyId(0), AttrId(a))
}

/// Strategy producing a transaction over a small attribute universe.
fn txn_strategy(client: u32, seq: u64) -> impl Strategy<Value = Transaction> {
    (
        proptest::collection::btree_set(0u8..6, 0..3),
        proptest::collection::btree_set(0u8..6, 1..3),
    )
        .prop_map(move |(reads, writes)| {
            let mut b = Transaction::builder(TxnId::new(client, seq), GroupId(0), LogPosition(0));
            for r in reads {
                b = b.read(item(r as u32), Some("v"));
            }
            for w in writes {
                b = b.write(item(w as u32), "x");
            }
            b.build()
        })
}

fn txn_pool(n: usize) -> impl Strategy<Value = Vec<Transaction>> {
    (0..n)
        .map(|i| txn_strategy(i as u32, i as u64))
        .collect::<Vec<_>>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// best_combination always returns a valid list containing the client's
    /// own transaction, regardless of candidate shape, and never duplicates.
    #[test]
    fn combination_is_always_valid_and_contains_own(pool in txn_pool(6)) {
        let own = &pool[0];
        let candidates = &pool[1..];
        let combo = best_combination(own, candidates);
        prop_assert!(combo.iter().any(|t| t.id == own.id));
        prop_assert!(is_valid_combination(&combo));
        let mut ids: Vec<_> = combo.iter().map(|t| t.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), combo.len());
    }

    /// Appending via can_append preserves validity: an inductive restatement
    /// of the combination safety argument of Theorem 3.
    #[test]
    fn can_append_preserves_validity(pool in txn_pool(7)) {
        let mut list: Vec<Transaction> = Vec::new();
        for txn in pool {
            if can_append(&list, &txn) {
                list.push(txn);
                prop_assert!(is_valid_combination(&list));
            }
        }
    }

    /// A log whose entries are built exclusively from valid combinations of
    /// fresh-read transactions passes the one-copy serializability checker.
    ///
    /// Transactions here read nothing (blind writes), so any packing is
    /// serializable; the checker must agree.
    #[test]
    fn blind_write_histories_always_pass_checker(
        sizes in proptest::collection::vec(1usize..4, 1..6)
    ) {
        let mut log = GroupLog::new();
        let mut seq = 0u64;
        for (i, size) in sizes.iter().enumerate() {
            let pos = LogPosition(i as u64 + 1);
            let txns: Vec<Transaction> = (0..*size)
                .map(|j| {
                    seq += 1;
                    Transaction::builder(TxnId::new(j as u32, seq), GroupId(0), pos.prev())
                        .write(item((seq % 5) as u32), seq.to_string())
                        .build()
                })
                .collect();
            log.install(pos, Arc::new(LogEntry::combined(txns))).unwrap();
        }
        prop_assert!(check_one_copy_serializability(&log).is_ok());
    }

    /// Forged histories in which a transaction's observed read value is
    /// tampered with are always rejected by the checker.
    #[test]
    fn tampered_observation_is_always_caught(real in 1u64..50, fake in 51u64..100) {
        let mut log = GroupLog::new();
        let writer = Transaction::builder(TxnId::new(0, 1), GroupId(0), LogPosition(0))
            .write(item(0), real.to_string())
            .build();
        log.install(LogPosition(1), Arc::new(LogEntry::single(writer))).unwrap();
        let reader = Transaction::builder(TxnId::new(1, 2), GroupId(0), LogPosition(1))
            .read(item(0), Some(&fake.to_string()))
            .write(item(1), "1")
            .build();
        log.install(LogPosition(2), Arc::new(LogEntry::single(reader))).unwrap();
        let tampered_caught = matches!(
            check_one_copy_serializability(&log),
            Err(Violation::WrongObservedValue { .. })
        );
        prop_assert!(tampered_caught);
    }
}
