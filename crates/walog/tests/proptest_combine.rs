//! Property tests for the combination logic and the serializability checker.

use proptest::prelude::*;
use walog::checker::{check_one_copy_serializability, Violation};
use walog::combine::{best_combination, can_append, is_valid_combination};
use walog::{GroupLog, ItemRef, LogEntry, LogPosition, Transaction, TxnId};

/// Strategy producing a transaction over a small attribute universe.
fn txn_strategy(client: u32, seq: u64) -> impl Strategy<Value = Transaction> {
    (
        proptest::collection::btree_set(0u8..6, 0..3),
        proptest::collection::btree_set(0u8..6, 1..3),
    )
        .prop_map(move |(reads, writes)| {
            let mut b = Transaction::builder(TxnId::new(client, seq), "g", LogPosition(0));
            for r in reads {
                b = b.read(ItemRef::new("row", format!("a{r}")), Some("v"));
            }
            for w in writes {
                b = b.write(ItemRef::new("row", format!("a{w}")), "x");
            }
            b.build()
        })
}

fn txn_pool(n: usize) -> impl Strategy<Value = Vec<Transaction>> {
    (0..n)
        .map(|i| txn_strategy(i as u32, i as u64))
        .collect::<Vec<_>>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// best_combination always returns a valid list containing the client's
    /// own transaction, regardless of candidate shape, and never duplicates.
    #[test]
    fn combination_is_always_valid_and_contains_own(pool in txn_pool(6)) {
        let own = &pool[0];
        let candidates = &pool[1..];
        let combo = best_combination(own, candidates);
        prop_assert!(combo.iter().any(|t| t.id == own.id));
        prop_assert!(is_valid_combination(&combo));
        let mut ids: Vec<_> = combo.iter().map(|t| t.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), combo.len());
    }

    /// Appending via can_append preserves validity: an inductive restatement
    /// of the combination safety argument of Theorem 3.
    #[test]
    fn can_append_preserves_validity(pool in txn_pool(7)) {
        let mut list: Vec<Transaction> = Vec::new();
        for txn in pool {
            if can_append(&list, &txn) {
                list.push(txn);
                prop_assert!(is_valid_combination(&list));
            }
        }
    }

    /// A log whose entries are built exclusively from valid combinations of
    /// fresh-read transactions passes the one-copy serializability checker.
    ///
    /// Transactions here read nothing (blind writes), so any packing is
    /// serializable; the checker must agree.
    #[test]
    fn blind_write_histories_always_pass_checker(
        sizes in proptest::collection::vec(1usize..4, 1..6)
    ) {
        let mut log = GroupLog::new();
        let mut seq = 0u64;
        for (i, size) in sizes.iter().enumerate() {
            let pos = LogPosition(i as u64 + 1);
            let txns: Vec<Transaction> = (0..*size)
                .map(|j| {
                    seq += 1;
                    Transaction::builder(TxnId::new(j as u32, seq), "g", pos.prev())
                        .write(ItemRef::new("row", format!("a{}", seq % 5)), seq.to_string())
                        .build()
                })
                .collect();
            log.install(pos, LogEntry::combined(txns)).unwrap();
        }
        prop_assert!(check_one_copy_serializability(&log).is_ok());
    }

    /// Forged histories in which a transaction's observed read value is
    /// tampered with are always rejected by the checker.
    #[test]
    fn tampered_observation_is_always_caught(real in 1u64..50, fake in 51u64..100) {
        let mut log = GroupLog::new();
        let writer = Transaction::builder(TxnId::new(0, 1), "g", LogPosition(0))
            .write(ItemRef::new("row", "x"), real.to_string())
            .build();
        log.install(LogPosition(1), LogEntry::single(writer)).unwrap();
        let reader = Transaction::builder(TxnId::new(1, 2), "g", LogPosition(1))
            .read(ItemRef::new("row", "x"), Some(&fake.to_string()))
            .write(ItemRef::new("row", "y"), "1")
            .build();
        log.install(LogPosition(2), LogEntry::single(reader)).unwrap();
        let tampered_caught = matches!(
            check_one_copy_serializability(&log),
            Err(Violation::WrongObservedValue { .. })
        );
        prop_assert!(tampered_caught);
    }
}
