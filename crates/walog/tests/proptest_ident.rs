//! Property tests for the interner and a regression test pinning down that
//! the serializability checker's verdict depends only on the *structure* of
//! a history, not on which concrete ids the interner assigned — i.e. an
//! interned log is judged exactly like its string-keyed equivalent was.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use walog::checker::{check_all, check_one_copy_serializability};
use walog::{GroupLog, LogEntry, LogPosition, SymbolTable, Transaction, TxnId};

/// Strategy for short printable names.
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..36, 1..8).prop_map(|chars| {
        chars
            .into_iter()
            .map(|c| {
                if c < 26 {
                    (b'a' + c) as char
                } else {
                    (b'0' + c - 26) as char
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// intern → resolve is the identity, interning is idempotent, and
    /// distinct names get distinct ids — for all three namespaces.
    #[test]
    fn intern_resolve_round_trips(names in proptest::collection::vec(name_strategy(), 1..20)) {
        let table = SymbolTable::new();
        for name in &names {
            let g = table.group(name);
            let k = table.key(name);
            let a = table.attr(name);
            prop_assert_eq!(table.group(name), g, "group interning must be idempotent");
            prop_assert_eq!(table.key(name), k);
            prop_assert_eq!(table.attr(name), a);
            prop_assert_eq!(table.group_name(g).as_deref(), Some(name.as_str()));
            prop_assert_eq!(table.key_name(k).as_deref(), Some(name.as_str()));
            prop_assert_eq!(table.attr_name(a).as_deref(), Some(name.as_str()));
        }
        // Distinct names ⇒ distinct ids (injective on the set of names).
        let distinct: BTreeSet<&String> = names.iter().collect();
        let ids: BTreeSet<u32> = distinct.iter().map(|n| table.attr(n).0).collect();
        prop_assert_eq!(ids.len(), distinct.len());
    }

    /// Ids are stable across replicas: every replica holds the same shared
    /// table, so two lookups through two handles agree; and a second table
    /// fed the same names in the same order assigns the same ids (dense,
    /// order-determined assignment).
    #[test]
    fn ids_are_stable_across_replicas(names in proptest::collection::vec(name_strategy(), 1..20)) {
        let shared = SymbolTable::shared();
        let replica_a = Arc::clone(&shared);
        let replica_b = Arc::clone(&shared);
        for name in &names {
            prop_assert_eq!(replica_a.key(name), replica_b.key(name));
        }
        let rebuilt = SymbolTable::new();
        for name in &names {
            rebuilt.key(name);
        }
        for name in &names {
            prop_assert_eq!(rebuilt.try_key(name), shared.try_key(name));
        }
    }
}

/// Describe a small history in terms of *names*, intern it through a given
/// table, and return the per-replica logs. The history is the string-keyed
/// seed checker test scenario: a writer, a combined entry, a reader with a
/// correct observation, and a no-op.
fn build_history(table: &SymbolTable, replicas: usize) -> Vec<GroupLog> {
    let group = table.group("ledger");
    let w1 = Transaction::builder(TxnId::new(0, 1), group, LogPosition(0))
        .write(table.item("row", "balance"), "100")
        .build();
    let combined = LogEntry::combined(vec![
        Transaction::builder(TxnId::new(1, 2), group, LogPosition(1))
            .write(table.item("row", "owner"), "alice")
            .build(),
        Transaction::builder(TxnId::new(2, 3), group, LogPosition(1))
            .write(table.item("row", "limit"), "500")
            .build(),
    ]);
    let reader = Transaction::builder(TxnId::new(3, 4), group, LogPosition(2))
        .read(table.item("row", "balance"), Some("100"))
        .read(table.item("row", "missing"), None)
        .write(table.item("row", "audited"), "yes")
        .build();
    let entries = [
        Arc::new(LogEntry::single(w1)),
        Arc::new(combined),
        Arc::new(reader.into()),
        Arc::new(LogEntry::noop()),
    ];
    (0..replicas)
        .map(|_| {
            let mut log = GroupLog::new();
            for (i, entry) in entries.iter().enumerate() {
                log.install(LogPosition(i as u64 + 1), Arc::clone(entry))
                    .unwrap();
            }
            log
        })
        .collect()
}

/// Regression: the checker accepts an interned history exactly as it
/// accepted the string-keyed equivalent, and its verdict is invariant under
/// the concrete id assignment — two interners fed the same names in
/// different orders produce different ids but identical check reports.
#[test]
fn checker_verdict_is_id_assignment_invariant() {
    // Table A sees the history's names in natural order.
    let table_a = SymbolTable::new();
    let logs_a = build_history(&table_a, 3);

    // Table B is polluted first so every id differs from table A's.
    let table_b = SymbolTable::new();
    for i in 0..7 {
        table_b.group(&format!("noise-g{i}"));
        table_b.key(&format!("noise-k{i}"));
        table_b.attr(&format!("noise-a{i}"));
    }
    let logs_b = build_history(&table_b, 3);

    assert_ne!(
        table_a.attr("balance"),
        table_b.attr("balance"),
        "the two tables must assign different ids for the test to mean anything"
    );

    let refs_a: Vec<&GroupLog> = logs_a.iter().collect();
    let refs_b: Vec<&GroupLog> = logs_b.iter().collect();
    let report_a = check_all(&refs_a).expect("history A is serializable");
    let report_b = check_all(&refs_b).expect("history B is serializable");

    // Identical structural verdicts: same counts, same serial order.
    assert_eq!(report_a, report_b);
    assert_eq!(report_a.positions, 4);
    assert_eq!(report_a.transactions, 4);
    assert_eq!(report_a.combined_positions, 1);
    assert_eq!(report_a.noop_positions, 1);
}

/// Regression: a history that was invalid under string keys (stale read) is
/// equally invalid under any id assignment.
#[test]
fn checker_rejects_stale_reads_under_any_id_assignment() {
    for noise in [0usize, 5] {
        let table = SymbolTable::new();
        for i in 0..noise {
            table.attr(&format!("noise{i}"));
        }
        let group = table.group("g");
        let mut log = GroupLog::new();
        log.install(
            LogPosition(1),
            Arc::new(LogEntry::single(
                Transaction::builder(TxnId::new(0, 1), group, LogPosition(0))
                    .write(table.item("row", "x"), "1")
                    .build(),
            )),
        )
        .unwrap();
        log.install(
            LogPosition(2),
            Arc::new(LogEntry::single(
                Transaction::builder(TxnId::new(0, 2), group, LogPosition(1))
                    .write(table.item("row", "x"), "2")
                    .build(),
            )),
        )
        .unwrap();
        // Reads x as of position 1 but commits at 3: stale under any ids.
        log.install(
            LogPosition(3),
            Arc::new(LogEntry::single(
                Transaction::builder(TxnId::new(1, 3), group, LogPosition(1))
                    .read(table.item("row", "x"), Some("1"))
                    .write(table.item("row", "y"), "3")
                    .build(),
            )),
        )
        .unwrap();
        assert!(
            check_one_copy_serializability(&log).is_err(),
            "stale read must be rejected with {noise} noise symbols interned first"
        );
    }
}
