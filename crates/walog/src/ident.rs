//! Interned identifiers for the transaction data plane.
//!
//! Every name that flows through the commit hot path — transaction group,
//! row key, attribute (column) — is interned once into a dense `u32` id and
//! travels as a `Copy` value from then on. Conflict detection in the
//! Paxos-CP combination/promotion logic, log application, and store indexing
//! all become integer operations instead of string hashing and cloning.
//!
//! One [`SymbolTable`] is shared by the whole cluster (every simulated
//! datacenter and client holds the same `Arc`), which models a cluster-wide
//! agreed schema catalogue: the same name maps to the same id at every
//! replica, so ids — not names — can be shipped in protocol messages and
//! stored in logs. A production deployment would replicate catalogue updates
//! through the same log; in the simulation the shared table gives identical
//! semantics.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a transaction group (the unit of transactional access and
/// of write-ahead-log replication, §2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub u32);

/// Identifier of a row key within the store.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KeyId(pub u32);

/// Identifier of an attribute (column) within a row.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrId(pub u32);

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Debug for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl KeyId {
    /// The raw (group-unqualified) store key this row id maps to.
    ///
    /// Application rows occupy the low half of the store's key space;
    /// protocol metadata (acceptor state) lives above `1 << 63` and can
    /// never collide. The transaction tier qualifies application rows by
    /// transaction group before touching the store (group id in the high
    /// 32 bits of the key, see `mdstore`'s `DatacenterCore`), so two
    /// groups using the same row name never alias; this raw mapping is
    /// for single-group embedders and tests.
    pub fn store_key(self) -> mvkv::Key {
        mvkv::Key(self.0 as u64)
    }
}

impl From<AttrId> for mvkv::Attr {
    fn from(attr: AttrId) -> mvkv::Attr {
        mvkv::Attr(attr.0)
    }
}

/// Highest id the interner will hand out. The ids above it (up to
/// `u32::MAX`) are reserved for protocol attributes such as the Paxos
/// acceptor's `nextBal`/`ballotNumber`/`value` columns.
pub const MAX_INTERNED: u32 = u32::MAX - 64;

#[derive(Default)]
struct Interner {
    inner: RwLock<InternerInner>,
}

#[derive(Default)]
struct InternerInner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&self, name: &str) -> u32 {
        if let Some(id) = self.inner.read().by_name.get(name) {
            return *id;
        }
        let mut inner = self.inner.write();
        if let Some(id) = inner.by_name.get(name) {
            return *id;
        }
        let id = inner.names.len() as u32;
        assert!(id < MAX_INTERNED, "symbol table exhausted");
        inner.names.push(name.to_string());
        inner.by_name.insert(name.to_string(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.inner.read().by_name.get(name).copied()
    }

    fn resolve(&self, id: u32) -> Option<String> {
        self.inner.read().names.get(id as usize).cloned()
    }

    fn len(&self) -> usize {
        self.inner.read().names.len()
    }
}

/// The cluster-wide symbol table: three independent interners for groups,
/// row keys and attributes.
///
/// Interning is idempotent (`intern(s)` always returns the same id for the
/// same string) and resolution is its inverse; both are verified by property
/// tests. Lookups take a read lock only; the write lock is taken exactly
/// once per distinct name, so steady-state workloads never contend.
#[derive(Default)]
pub struct SymbolTable {
    groups: Interner,
    keys: Interner,
    attrs: Interner,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// An empty table behind the shared handle used across a cluster.
    pub fn shared() -> Arc<SymbolTable> {
        Arc::new(SymbolTable::new())
    }

    /// Intern a transaction-group name.
    pub fn group(&self, name: &str) -> GroupId {
        GroupId(self.groups.intern(name))
    }

    /// Intern a row-key name.
    pub fn key(&self, name: &str) -> KeyId {
        KeyId(self.keys.intern(name))
    }

    /// Intern an attribute name.
    pub fn attr(&self, name: &str) -> AttrId {
        AttrId(self.attrs.intern(name))
    }

    /// Intern a `(key, attr)` pair into an item reference.
    pub fn item(&self, key: &str, attr: &str) -> crate::ItemRef {
        crate::ItemRef::new(self.key(key), self.attr(attr))
    }

    /// The id of an already-interned group name, if any.
    pub fn try_group(&self, name: &str) -> Option<GroupId> {
        self.groups.lookup(name).map(GroupId)
    }

    /// The id of an already-interned key name, if any.
    pub fn try_key(&self, name: &str) -> Option<KeyId> {
        self.keys.lookup(name).map(KeyId)
    }

    /// The id of an already-interned attribute name, if any.
    pub fn try_attr(&self, name: &str) -> Option<AttrId> {
        self.attrs.lookup(name).map(AttrId)
    }

    /// The name a group id was interned from (`None` for foreign ids).
    pub fn group_name(&self, id: GroupId) -> Option<String> {
        self.groups.resolve(id.0)
    }

    /// The name a key id was interned from.
    pub fn key_name(&self, id: KeyId) -> Option<String> {
        self.keys.resolve(id.0)
    }

    /// The name an attribute id was interned from.
    pub fn attr_name(&self, id: AttrId) -> Option<String> {
        self.attrs.resolve(id.0)
    }

    /// Number of interned (groups, keys, attrs).
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.groups.len(), self.keys.len(), self.attrs.len())
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (g, k, a) = self.counts();
        write!(f, "SymbolTable({g} groups, {k} keys, {a} attrs)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let table = SymbolTable::new();
        let a = table.attr("balance");
        let b = table.attr("owner");
        let a_again = table.attr("balance");
        assert_eq!(a, a_again);
        assert_ne!(a, b);
        assert_eq!(a.0, 0);
        assert_eq!(b.0, 1);
    }

    #[test]
    fn namespaces_are_independent() {
        let table = SymbolTable::new();
        let g = table.group("x");
        let k = table.key("x");
        let at = table.attr("x");
        // Same string, each namespace starts at 0.
        assert_eq!((g.0, k.0, at.0), (0, 0, 0));
        assert_eq!(table.counts(), (1, 1, 1));
    }

    #[test]
    fn resolution_inverts_interning() {
        let table = SymbolTable::new();
        let id = table.key("row0");
        assert_eq!(table.key_name(id).as_deref(), Some("row0"));
        assert_eq!(table.key_name(KeyId(99)), None);
        assert_eq!(table.try_key("row0"), Some(id));
        assert_eq!(table.try_key("missing"), None);
    }

    #[test]
    fn item_interns_both_halves() {
        let table = SymbolTable::new();
        let item = table.item("row", "a7");
        assert_eq!(table.key_name(item.key).as_deref(), Some("row"));
        assert_eq!(table.attr_name(item.attr).as_deref(), Some("a7"));
    }

    #[test]
    fn store_key_conversion_stays_in_application_space() {
        let key = KeyId(17);
        assert_eq!(key.store_key(), mvkv::Key(17));
        assert_eq!(mvkv::Attr::from(AttrId(3)), mvkv::Attr(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", GroupId(1)), "g1");
        assert_eq!(format!("{}", KeyId(2)), "k2");
        assert_eq!(format!("{}", AttrId(3)), "a3");
    }
}
