//! Offline verification of the paper's correctness properties.
//!
//! The paper proves (Theorems 1–3) that the transaction tier guarantees
//! one-copy serializability provided the log and replication properties
//! hold. This module turns those obligations into executable checks run by
//! tests and by the experiment harness over the logs a simulation produced:
//!
//! * **(R1) replica agreement** — no two replicas hold different entries for
//!   the same log position ([`check_replica_agreement`]).
//! * **(L2) single-position commit** — every transaction id appears in at
//!   most one log position (and at most once within it).
//! * **(L3) / Definition 1 — one-copy serializability** — replaying the log
//!   in position order (and list order within a combined entry) must explain
//!   every observed read: the value a transaction observed for an item must
//!   equal the latest value written for that item at or before the
//!   transaction's read position, and no transaction serialized between the
//!   transaction's read position and its commit position may have written
//!   anything the transaction read ([`check_one_copy_serializability`]).
//!
//! The checker runs over the interned representation directly: items are
//! compared as packed integers, and replica logs share their entries by
//! `Arc`, so merging replicas' histories copies pointers, not transactions.

use crate::entry::LogEntry;
use crate::log::GroupLog;
use crate::types::{ItemRef, LogPosition, TxnId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// A violation of one of the correctness properties.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two replicas decided different values for the same position (R1).
    ReplicaDisagreement {
        /// The disagreeing position.
        position: LogPosition,
    },
    /// A transaction id appears in more than one log position, or twice in
    /// the same entry (L2).
    DuplicateCommit {
        /// The duplicated transaction.
        txn: TxnId,
        /// The two positions involved (equal when duplicated within an entry).
        positions: (LogPosition, LogPosition),
    },
    /// A committed transaction read an item that some transaction serialized
    /// after its read position (but before it) wrote — its reads were stale
    /// (violates L3).
    StaleRead {
        /// The violating transaction.
        txn: TxnId,
        /// The item whose read was stale.
        item: ItemRef,
        /// The writer serialized in between.
        written_by: TxnId,
        /// Position at which the intervening write committed.
        at: LogPosition,
    },
    /// A committed transaction's observed value for an item differs from the
    /// value the equivalent serial history would have given it.
    WrongObservedValue {
        /// The violating transaction.
        txn: TxnId,
        /// The item read.
        item: ItemRef,
        /// Value the serial history implies it should have read.
        expected: Option<String>,
        /// Value it actually observed.
        observed: Option<String>,
    },
    /// A transaction's read position is not strictly before its commit
    /// position — the protocol never produces this shape.
    InvalidReadPosition {
        /// The violating transaction.
        txn: TxnId,
        /// The transaction's read position.
        read_position: LogPosition,
        /// The position it committed at.
        committed_at: LogPosition,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ReplicaDisagreement { position } => {
                write!(f, "replicas disagree on log position {position}")
            }
            Violation::DuplicateCommit { txn, positions } => write!(
                f,
                "transaction {txn} committed at both position {} and {}",
                positions.0, positions.1
            ),
            Violation::StaleRead { txn, item, written_by, at } => write!(
                f,
                "transaction {txn} read {item} but {written_by} wrote it at position {at}, after {txn}'s read position"
            ),
            Violation::WrongObservedValue { txn, item, expected, observed } => write!(
                f,
                "transaction {txn} observed {observed:?} for {item}, serial history implies {expected:?}"
            ),
            Violation::InvalidReadPosition { txn, read_position, committed_at } => write!(
                f,
                "transaction {txn} committed at {committed_at} with read position {read_position}"
            ),
        }
    }
}

/// Summary of a successful verification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Number of log positions examined.
    pub positions: usize,
    /// Number of committed transactions examined.
    pub transactions: usize,
    /// Number of positions holding more than one transaction (combined
    /// entries produced by Paxos-CP).
    pub combined_positions: usize,
    /// Number of no-op (recovery) entries.
    pub noop_positions: usize,
    /// The equivalent serial history: transaction ids in serialization order.
    pub serial_order: Vec<TxnId>,
}

/// Check property (R1): for every position decided by more than one replica,
/// all replicas hold the same entry.
pub fn check_replica_agreement(logs: &[&GroupLog]) -> Result<(), Violation> {
    let mut seen: HashMap<LogPosition, &Arc<LogEntry>> = HashMap::new();
    for log in logs {
        for (pos, entry) in log.iter() {
            match seen.get(&pos) {
                Some(existing) if !Arc::ptr_eq(existing, entry) && ***existing != **entry => {
                    return Err(Violation::ReplicaDisagreement { position: pos })
                }
                Some(_) => {}
                None => {
                    seen.insert(pos, entry);
                }
            }
        }
    }
    Ok(())
}

/// Merge several replicas' logs into one (they must already agree; see
/// [`check_replica_agreement`]). The union covers positions any replica
/// decided, which is the history `H` of Theorem 1. Entries are shared with
/// the source logs, not copied.
pub fn merged_log(logs: &[&GroupLog]) -> GroupLog {
    let mut merged = GroupLog::new();
    for log in logs {
        for (pos, entry) in log.iter() {
            // Agreement was checked by the caller; an install error here
            // means the caller skipped that step, which is a bug.
            merged
                .install(pos, Arc::clone(entry))
                .expect("replica logs disagree; run check_replica_agreement first");
        }
    }
    merged
}

/// Check one-copy serializability (Definition 1) plus (L2) over a single
/// (typically merged) log, validating both the structural no-stale-reads
/// condition and the observed values recorded by each transaction.
pub fn check_one_copy_serializability(log: &GroupLog) -> Result<CheckReport, Violation> {
    // Value of each item after replaying positions <= p, stored as full
    // version history so reads at arbitrary read positions can be resolved.
    let mut versions: BTreeMap<ItemRef, Vec<(LogPosition, TxnId, String)>> = BTreeMap::new();
    let mut committed_at: HashMap<TxnId, LogPosition> = HashMap::new();
    let mut report = CheckReport::default();

    for (pos, entry) in log.iter() {
        report.positions += 1;
        if entry.is_noop() {
            report.noop_positions += 1;
        }
        if entry.len() > 1 {
            report.combined_positions += 1;
        }
        // Writes performed by earlier transactions of this same entry: they
        // are serialized before later list members but share the position.
        let mut intra_entry: HashMap<ItemRef, (TxnId, &str)> = HashMap::new();
        for txn in entry.transactions() {
            report.transactions += 1;
            if let Some(prev) = committed_at.insert(txn.id, pos) {
                return Err(Violation::DuplicateCommit {
                    txn: txn.id,
                    positions: (prev, pos),
                });
            }
            if txn.read_position >= pos {
                return Err(Violation::InvalidReadPosition {
                    txn: txn.id,
                    read_position: txn.read_position,
                    committed_at: pos,
                });
            }
            for read in txn.reads() {
                // Structural staleness: any write of this item serialized in
                // (read_position, pos) or earlier in this entry is a violation.
                if let Some((writer, _)) = intra_entry.get(&read.item) {
                    return Err(Violation::StaleRead {
                        txn: txn.id,
                        item: read.item,
                        written_by: *writer,
                        at: pos,
                    });
                }
                if let Some(history) = versions.get(&read.item) {
                    if let Some((p, writer, _)) = history
                        .iter()
                        .rev()
                        .find(|(p, _, _)| *p > txn.read_position && *p < pos)
                    {
                        return Err(Violation::StaleRead {
                            txn: txn.id,
                            item: read.item,
                            written_by: *writer,
                            at: *p,
                        });
                    }
                }
                // Value check against the equivalent serial history: the
                // latest write at or before the read position.
                let expected = versions.get(&read.item).and_then(|history| {
                    history
                        .iter()
                        .rev()
                        .find(|(p, _, _)| *p <= txn.read_position)
                        .map(|(_, _, v)| v.clone())
                });
                if expected != read.observed {
                    return Err(Violation::WrongObservedValue {
                        txn: txn.id,
                        item: read.item,
                        expected,
                        observed: read.observed.clone(),
                    });
                }
            }
            for write in txn.writes() {
                intra_entry.insert(write.item, (txn.id, write.value.as_str()));
            }
            report.serial_order.push(txn.id);
        }
        // Fold this entry's writes into the version history, respecting list
        // order (later list members overwrite earlier ones at equal position).
        for txn in entry.transactions() {
            for write in txn.writes() {
                let history = versions.entry(write.item).or_default();
                // Remove any same-position earlier value for the item so the
                // last writer in list order wins at this position.
                if let Some(last) = history.last() {
                    if last.0 == pos {
                        history.pop();
                    }
                }
                history.push((pos, txn.id, write.value.clone()));
            }
        }
    }
    Ok(report)
}

/// Run the full battery over a set of replica logs: replica agreement, then
/// one-copy serializability of the merged history. Returns the report of the
/// merged check.
pub fn check_all(logs: &[&GroupLog]) -> Result<CheckReport, Violation> {
    check_replica_agreement(logs)?;
    let merged = merged_log(logs);
    check_one_copy_serializability(&merged)
}

/// Collect every violation rather than stopping at the first; useful in test
/// diagnostics.
pub fn collect_violations(logs: &[&GroupLog]) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Err(v) = check_replica_agreement(logs) {
        out.push(v);
        return out;
    }
    let merged = merged_log(logs);
    if let Err(v) = check_one_copy_serializability(&merged) {
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::{AttrId, GroupId, KeyId};
    use crate::types::Transaction;

    fn item(a: u32) -> ItemRef {
        ItemRef::new(KeyId(0), AttrId(a))
    }

    // Attribute ids used by names in the original string-keyed tests.
    const X: u32 = 0;
    const Y: u32 = 1;
    const Z: u32 = 2;

    fn write_txn(client: u32, seq: u64, read_pos: u64, attr: u32, value: &str) -> Transaction {
        Transaction::builder(TxnId::new(client, seq), GroupId(0), LogPosition(read_pos))
            .write(item(attr), value)
            .build()
    }

    fn single(txn: Transaction) -> Arc<LogEntry> {
        Arc::new(LogEntry::single(txn))
    }

    #[test]
    fn replica_agreement_detects_divergence() {
        let mut a = GroupLog::new();
        let mut b = GroupLog::new();
        a.install(LogPosition(1), single(write_txn(0, 1, 0, X, "1")))
            .unwrap();
        b.install(LogPosition(1), single(write_txn(0, 1, 0, X, "1")))
            .unwrap();
        assert!(check_replica_agreement(&[&a, &b]).is_ok());
        let mut c = GroupLog::new();
        c.install(LogPosition(1), single(write_txn(9, 9, 0, X, "other")))
            .unwrap();
        assert_eq!(
            check_replica_agreement(&[&a, &c]),
            Err(Violation::ReplicaDisagreement {
                position: LogPosition(1)
            })
        );
    }

    #[test]
    fn merged_log_covers_union_of_positions() {
        let mut a = GroupLog::new();
        let mut b = GroupLog::new();
        a.install(LogPosition(1), single(write_txn(0, 1, 0, X, "1")))
            .unwrap();
        b.install(LogPosition(2), single(write_txn(0, 2, 1, X, "2")))
            .unwrap();
        let merged = merged_log(&[&a, &b]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn serial_history_with_correct_reads_passes() {
        let mut log = GroupLog::new();
        log.install(LogPosition(1), single(write_txn(0, 1, 0, X, "1")))
            .unwrap();
        // Transaction reads x (value "1" as of position 1) and writes y.
        let t2 = Transaction::builder(TxnId::new(1, 2), GroupId(0), LogPosition(1))
            .read(item(X), Some("1"))
            .write(item(Y), "2")
            .build();
        log.install(LogPosition(2), single(t2)).unwrap();
        let report = check_one_copy_serializability(&log).unwrap();
        assert_eq!(report.transactions, 2);
        assert_eq!(report.positions, 2);
        assert_eq!(report.serial_order.len(), 2);
    }

    #[test]
    fn stale_read_is_detected() {
        let mut log = GroupLog::new();
        log.install(LogPosition(1), single(write_txn(0, 1, 0, X, "1")))
            .unwrap();
        // t2 commits at position 2 writing x.
        log.install(LogPosition(2), single(write_txn(0, 2, 1, X, "2")))
            .unwrap();
        // t3 read x at read position 1 (observing "1") but commits at
        // position 3, after t2 overwrote x: stale.
        let t3 = Transaction::builder(TxnId::new(1, 3), GroupId(0), LogPosition(1))
            .read(item(X), Some("1"))
            .write(item(Z), "3")
            .build();
        log.install(LogPosition(3), single(t3)).unwrap();
        match check_one_copy_serializability(&log) {
            Err(Violation::StaleRead { txn, at, .. }) => {
                assert_eq!(txn, TxnId::new(1, 3));
                assert_eq!(at, LogPosition(2));
            }
            other => panic!("expected StaleRead, got {other:?}"),
        }
    }

    #[test]
    fn wrong_observed_value_is_detected() {
        let mut log = GroupLog::new();
        log.install(LogPosition(1), single(write_txn(0, 1, 0, X, "1")))
            .unwrap();
        let t2 = Transaction::builder(TxnId::new(1, 2), GroupId(0), LogPosition(1))
            .read(item(X), Some("not-1"))
            .write(item(Y), "2")
            .build();
        log.install(LogPosition(2), single(t2)).unwrap();
        assert!(matches!(
            check_one_copy_serializability(&log),
            Err(Violation::WrongObservedValue { .. })
        ));
    }

    #[test]
    fn read_of_never_written_item_expects_none() {
        let mut log = GroupLog::new();
        let t = Transaction::builder(TxnId::new(0, 1), GroupId(0), LogPosition(0))
            .read(item(9), None)
            .write(item(9), "1")
            .build();
        log.install(LogPosition(1), single(t)).unwrap();
        assert!(check_one_copy_serializability(&log).is_ok());
    }

    #[test]
    fn duplicate_commit_across_positions_is_detected() {
        let mut log = GroupLog::new();
        let t = write_txn(0, 1, 0, X, "1");
        log.install(LogPosition(1), single(t.clone())).unwrap();
        let mut t_later = t;
        t_later.read_position = LogPosition(1);
        log.install(LogPosition(2), single(t_later)).unwrap();
        assert!(matches!(
            check_one_copy_serializability(&log),
            Err(Violation::DuplicateCommit { .. })
        ));
    }

    #[test]
    fn combined_entry_with_internal_conflict_is_detected() {
        let mut log = GroupLog::new();
        let writer = write_txn(0, 1, 0, X, "1");
        // Second list member reads x, which the first wrote: invalid combine.
        let reader = Transaction::builder(TxnId::new(1, 2), GroupId(0), LogPosition(0))
            .read(item(X), None)
            .write(item(Y), "2")
            .build();
        log.install(
            LogPosition(1),
            Arc::new(LogEntry::combined(vec![writer, reader])),
        )
        .unwrap();
        assert!(matches!(
            check_one_copy_serializability(&log),
            Err(Violation::StaleRead { .. })
        ));
    }

    #[test]
    fn valid_combined_entry_passes_and_is_counted() {
        let mut log = GroupLog::new();
        let a = write_txn(0, 1, 0, X, "1");
        let b = write_txn(1, 2, 0, Y, "2");
        log.install(LogPosition(1), Arc::new(LogEntry::combined(vec![a, b])))
            .unwrap();
        log.install(LogPosition(2), Arc::new(LogEntry::noop()))
            .unwrap();
        let report = check_one_copy_serializability(&log).unwrap();
        assert_eq!(report.combined_positions, 1);
        assert_eq!(report.noop_positions, 1);
        assert_eq!(report.transactions, 2);
    }

    #[test]
    fn invalid_read_position_is_detected() {
        let mut log = GroupLog::new();
        let t = write_txn(0, 1, 5, X, "1"); // read position 5 >= commit position 1
        log.install(LogPosition(1), single(t)).unwrap();
        assert!(matches!(
            check_one_copy_serializability(&log),
            Err(Violation::InvalidReadPosition { .. })
        ));
    }

    #[test]
    fn check_all_combines_agreement_and_serializability() {
        let mut a = GroupLog::new();
        let mut b = GroupLog::new();
        a.install(LogPosition(1), single(write_txn(0, 1, 0, X, "1")))
            .unwrap();
        b.install(LogPosition(1), single(write_txn(0, 1, 0, X, "1")))
            .unwrap();
        b.install(LogPosition(2), single(write_txn(0, 2, 1, Y, "2")))
            .unwrap();
        let report = check_all(&[&a, &b]).unwrap();
        assert_eq!(report.positions, 2);
        assert!(collect_violations(&[&a, &b]).is_empty());
    }

    #[test]
    fn later_list_member_wins_same_position_writes() {
        // Two blind writers of the same item combined in one entry: the later
        // list member's value is what a subsequent reader must observe.
        let mut log = GroupLog::new();
        let w1 = write_txn(0, 1, 0, X, "first");
        let w2 = write_txn(1, 2, 0, X, "second");
        log.install(LogPosition(1), Arc::new(LogEntry::combined(vec![w1, w2])))
            .unwrap();
        let reader = Transaction::builder(TxnId::new(2, 3), GroupId(0), LogPosition(1))
            .read(item(X), Some("second"))
            .write(item(Y), "1")
            .build();
        log.install(LogPosition(2), single(reader)).unwrap();
        assert!(check_one_copy_serializability(&log).is_ok());
    }
}
