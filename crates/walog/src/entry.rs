//! Log entries: the value decided by one Paxos instance.
//!
//! Under basic Paxos an entry holds exactly one transaction. Under Paxos-CP
//! the *combination* enhancement lets one entry hold an ordered list of
//! mutually non-conflicting transactions (§5), all of which commit at the
//! same log position. Recovery proposes an explicit no-op entry to learn a
//! position without adding work (§4.1, "Fault Tolerance and Recovery").

use crate::types::{Transaction, TxnId};
use serde::{Deserialize, Serialize};

/// The value written to a single write-ahead-log position.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct LogEntry {
    transactions: Vec<Transaction>,
    /// True when this entry was proposed purely to learn/fill the position
    /// during recovery and carries no transactions.
    noop: bool,
}

impl LogEntry {
    /// An entry holding a single transaction (the only shape basic Paxos
    /// ever proposes).
    pub fn single(txn: Transaction) -> Self {
        LogEntry {
            transactions: vec![txn],
            noop: false,
        }
    }

    /// An entry holding an ordered list of transactions (Paxos-CP
    /// combination). The caller is responsible for having validated the
    /// list with [`crate::combine::is_valid_combination`].
    pub fn combined(transactions: Vec<Transaction>) -> Self {
        LogEntry {
            transactions,
            noop: false,
        }
    }

    /// The explicit no-op entry used by recovery.
    pub fn noop() -> Self {
        LogEntry {
            transactions: Vec::new(),
            noop: true,
        }
    }

    /// True for the recovery no-op entry.
    pub fn is_noop(&self) -> bool {
        self.noop || self.transactions.is_empty()
    }

    /// The transactions committed by this entry, in serialization order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions in the entry.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when the entry commits no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Whether the entry contains the given transaction.
    pub fn contains(&self, id: TxnId) -> bool {
        self.transactions.iter().any(|t| t.id == id)
    }

    /// The ids of all transactions in the entry, in order.
    pub fn txn_ids(&self) -> Vec<TxnId> {
        self.transactions.iter().map(|t| t.id).collect()
    }

    /// Would a transaction with the given read set be invalidated by this
    /// entry? True when `txn` reads any item written by any transaction in
    /// this entry — the test used by the *promotion* enhancement to decide
    /// whether a loser may compete for the next position.
    pub fn invalidates_reads_of(&self, txn: &Transaction) -> bool {
        self.transactions
            .iter()
            .any(|winner| txn.reads_item_written_by(winner))
    }
}

impl From<Transaction> for LogEntry {
    fn from(txn: Transaction) -> Self {
        LogEntry::single(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ItemRef, LogPosition, Transaction, TxnId};

    fn txn(seq: u64, reads: &[&str], writes: &[&str]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(0, seq), "g", LogPosition(0));
        for r in reads {
            b = b.read(ItemRef::new("row", *r), Some("v"));
        }
        for w in writes {
            b = b.write(ItemRef::new("row", *w), "x");
        }
        b.build()
    }

    #[test]
    fn single_and_combined_entries() {
        let e = LogEntry::single(txn(1, &["a"], &["b"]));
        assert_eq!(e.len(), 1);
        assert!(!e.is_noop());
        assert!(e.contains(TxnId::new(0, 1)));
        assert!(!e.contains(TxnId::new(0, 2)));

        let c = LogEntry::combined(vec![txn(1, &[], &["a"]), txn(2, &[], &["b"])]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.txn_ids(), vec![TxnId::new(0, 1), TxnId::new(0, 2)]);
    }

    #[test]
    fn noop_entries_are_empty() {
        let e = LogEntry::noop();
        assert!(e.is_noop());
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn invalidates_reads_detects_read_write_conflict() {
        let winner = LogEntry::single(txn(1, &[], &["x"]));
        let reads_x = txn(2, &["x"], &["y"]);
        let reads_z = txn(3, &["z"], &["y"]);
        assert!(winner.invalidates_reads_of(&reads_x));
        assert!(!winner.invalidates_reads_of(&reads_z));
        // A no-op entry never invalidates anything.
        assert!(!LogEntry::noop().invalidates_reads_of(&reads_x));
    }

    #[test]
    fn from_transaction_builds_single_entry() {
        let e: LogEntry = txn(5, &[], &["a"]).into();
        assert_eq!(e.len(), 1);
    }
}
