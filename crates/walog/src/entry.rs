//! Log entries: the value decided by one Paxos instance.
//!
//! Under basic Paxos an entry holds exactly one transaction. Under Paxos-CP
//! the *combination* enhancement lets one entry hold an ordered list of
//! mutually non-conflicting transactions (§5), all of which commit at the
//! same log position. Recovery proposes an explicit no-op entry to learn a
//! position without adding work (§4.1, "Fault Tolerance and Recovery").
//!
//! Entries are immutable once constructed and are shared as
//! `Arc<LogEntry>` across messages, votes, logs and install paths, so a
//! decided value is deep-copied zero times no matter how many replicas
//! learn it. Each entry caches the union of its transactions' write sets as
//! a sorted packed-integer array; [`LogEntry::invalidates_reads_of`] — the
//! test the promotion enhancement runs on every contended commit — is a
//! binary search over it.

use crate::ident::{AttrId, GroupId, KeyId};
use crate::types::{ItemRef, LogPosition, ReadRecord, Transaction, TxnId, WriteRecord};

/// The value written to a single write-ahead-log position.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LogEntry {
    transactions: Vec<Transaction>,
    /// True when this entry was proposed purely to learn/fill the position
    /// during recovery and carries no transactions.
    noop: bool,
    /// Sorted, deduplicated union of the transactions' packed write sets.
    write_items: Box<[u64]>,
}

fn union_write_items(transactions: &[Transaction]) -> Box<[u64]> {
    crate::types::sorted_packed_set(
        transactions
            .iter()
            .flat_map(|t| t.write_items().iter().copied())
            .collect(),
    )
}

impl LogEntry {
    /// An entry holding a single transaction (the only shape basic Paxos
    /// ever proposes).
    pub fn single(txn: Transaction) -> Self {
        LogEntry::combined(vec![txn])
    }

    /// An entry holding an ordered list of transactions (Paxos-CP
    /// combination). The caller is responsible for having validated the
    /// list with [`crate::combine::is_valid_combination`].
    pub fn combined(transactions: Vec<Transaction>) -> Self {
        let write_items = union_write_items(&transactions);
        LogEntry {
            transactions,
            noop: false,
            write_items,
        }
    }

    /// The explicit no-op entry used by recovery.
    pub fn noop() -> Self {
        LogEntry {
            transactions: Vec::new(),
            noop: true,
            write_items: Box::new([]),
        }
    }

    /// True for the recovery no-op entry.
    pub fn is_noop(&self) -> bool {
        self.noop || self.transactions.is_empty()
    }

    /// The transactions committed by this entry, in serialization order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions in the entry.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when the entry commits no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Whether the entry contains the given transaction.
    pub fn contains(&self, id: TxnId) -> bool {
        self.transactions.iter().any(|t| t.id == id)
    }

    /// The ids of all transactions in the entry, in order.
    pub fn txn_ids(&self) -> Vec<TxnId> {
        self.transactions.iter().map(|t| t.id).collect()
    }

    /// The union of the transactions' write sets, as sorted packed items.
    pub fn write_items(&self) -> &[u64] {
        &self.write_items
    }

    /// Would a transaction with the given read set be invalidated by this
    /// entry? True when `txn` reads any item written by any transaction in
    /// this entry — the test used by the *promotion* enhancement to decide
    /// whether a loser may compete for the next position.
    ///
    /// Runs as a binary search per read over the entry's cached packed
    /// write set: pure integer comparisons, no hashing, no allocation.
    pub fn invalidates_reads_of(&self, txn: &Transaction) -> bool {
        if self.write_items.is_empty() {
            return false;
        }
        txn.reads()
            .iter()
            .any(|r| self.write_items.binary_search(&r.item.packed()).is_ok())
    }

    /// Encode the entry for storage as a key-value attribute (the acceptor
    /// persists its vote through `checkAndWrite`, §4). The format is a
    /// compact ASCII token stream; thanks to interning, every field except
    /// the observed/written values is an integer.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(32 + self.transactions.len() * 64);
        out.push_str("LE1 ");
        out.push_str(if self.noop { "1" } else { "0" });
        push_num(&mut out, self.transactions.len() as u64);
        for txn in &self.transactions {
            push_num(&mut out, txn.id.client as u64);
            push_num(&mut out, txn.id.seq);
            push_num(&mut out, txn.group.0 as u64);
            push_num(&mut out, txn.read_position.0);
            push_num(&mut out, txn.reads().len() as u64);
            for read in txn.reads() {
                push_num(&mut out, read.item.key.0 as u64);
                push_num(&mut out, read.item.attr.0 as u64);
                match &read.observed {
                    Some(value) => {
                        out.push_str(" 1");
                        push_str(&mut out, value);
                    }
                    None => out.push_str(" 0"),
                }
            }
            push_num(&mut out, txn.writes().len() as u64);
            for write in txn.writes() {
                push_num(&mut out, write.item.key.0 as u64);
                push_num(&mut out, write.item.attr.0 as u64);
                push_str(&mut out, &write.value);
            }
        }
        out
    }

    /// Decode an entry produced by [`LogEntry::encode`]; `None` for
    /// malformed input.
    pub fn decode(input: &str) -> Option<LogEntry> {
        let mut cursor = Cursor::new(input);
        cursor.expect_tag("LE1")?;
        let noop = cursor.num()? == 1;
        let ntxn = cursor.num()? as usize;
        // Refuse absurd counts rather than attempting a huge allocation.
        if ntxn > input.len() {
            return None;
        }
        let mut transactions = Vec::with_capacity(ntxn);
        for _ in 0..ntxn {
            let client = u32::try_from(cursor.num()?).ok()?;
            let seq = cursor.num()?;
            let group = GroupId(u32::try_from(cursor.num()?).ok()?);
            let read_position = LogPosition(cursor.num()?);
            let nreads = cursor.num()? as usize;
            if nreads > input.len() {
                return None;
            }
            let mut reads = Vec::with_capacity(nreads);
            for _ in 0..nreads {
                let item = cursor.item()?;
                let observed = match cursor.num()? {
                    0 => None,
                    1 => Some(cursor.string()?),
                    _ => return None,
                };
                reads.push(ReadRecord { item, observed });
            }
            let nwrites = cursor.num()? as usize;
            if nwrites > input.len() {
                return None;
            }
            let mut writes = Vec::with_capacity(nwrites);
            for _ in 0..nwrites {
                let item = cursor.item()?;
                let value = cursor.string()?;
                writes.push(WriteRecord { item, value });
            }
            transactions.push(Transaction::new(
                TxnId::new(client, seq),
                group,
                read_position,
                reads,
                writes,
            ));
        }
        if !cursor.at_end() {
            return None;
        }
        let mut entry = LogEntry::combined(transactions);
        entry.noop = noop;
        Some(entry)
    }
}

fn push_num(out: &mut String, n: u64) {
    out.push(' ');
    out.push_str(&n.to_string());
}

/// Append a length-prefixed string (`len:bytes`), so values need no
/// escaping.
fn push_str(out: &mut String, s: &str) {
    out.push(' ');
    out.push_str(&s.len().to_string());
    out.push(':');
    out.push_str(s);
}

struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor { rest: input }
    }

    fn expect_tag(&mut self, tag: &str) -> Option<()> {
        self.rest = self.rest.strip_prefix(tag)?;
        Some(())
    }

    fn skip_space(&mut self) -> Option<()> {
        self.rest = self.rest.strip_prefix(' ')?;
        Some(())
    }

    fn num(&mut self) -> Option<u64> {
        self.skip_space()?;
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        if end == 0 {
            return None;
        }
        let (digits, rest) = self.rest.split_at(end);
        self.rest = rest;
        digits.parse().ok()
    }

    fn item(&mut self) -> Option<ItemRef> {
        let key = KeyId(u32::try_from(self.num()?).ok()?);
        let attr = AttrId(u32::try_from(self.num()?).ok()?);
        Some(ItemRef::new(key, attr))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.num()? as usize;
        self.rest = self.rest.strip_prefix(':')?;
        if !self.rest.is_char_boundary(len) || self.rest.len() < len {
            return None;
        }
        let (value, rest) = self.rest.split_at(len);
        self.rest = rest;
        Some(value.to_string())
    }

    fn at_end(&self) -> bool {
        self.rest.is_empty()
    }
}

impl From<Transaction> for LogEntry {
    fn from(txn: Transaction) -> Self {
        LogEntry::single(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::{AttrId, GroupId, KeyId};
    use crate::types::{ItemRef, LogPosition, Transaction, TxnId};

    fn item(a: u32) -> ItemRef {
        ItemRef::new(KeyId(0), AttrId(a))
    }

    fn txn(seq: u64, reads: &[u32], writes: &[u32]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(0, seq), GroupId(0), LogPosition(0));
        for r in reads {
            b = b.read(item(*r), Some("v"));
        }
        for w in writes {
            b = b.write(item(*w), "x");
        }
        b.build()
    }

    #[test]
    fn single_and_combined_entries() {
        let e = LogEntry::single(txn(1, &[0], &[1]));
        assert_eq!(e.len(), 1);
        assert!(!e.is_noop());
        assert!(e.contains(TxnId::new(0, 1)));
        assert!(!e.contains(TxnId::new(0, 2)));

        let c = LogEntry::combined(vec![txn(1, &[], &[0]), txn(2, &[], &[1])]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.txn_ids(), vec![TxnId::new(0, 1), TxnId::new(0, 2)]);
        assert_eq!(c.write_items(), &[item(0).packed(), item(1).packed()]);
    }

    #[test]
    fn noop_entries_are_empty() {
        let e = LogEntry::noop();
        assert!(e.is_noop());
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn invalidates_reads_detects_read_write_conflict() {
        let winner = LogEntry::single(txn(1, &[], &[7]));
        let reads_7 = txn(2, &[7], &[8]);
        let reads_9 = txn(3, &[9], &[8]);
        assert!(winner.invalidates_reads_of(&reads_7));
        assert!(!winner.invalidates_reads_of(&reads_9));
        // A no-op entry never invalidates anything.
        assert!(!LogEntry::noop().invalidates_reads_of(&reads_7));
    }

    #[test]
    fn from_transaction_builds_single_entry() {
        let e: LogEntry = txn(5, &[], &[0]).into();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn codec_round_trips_entries() {
        let cases = vec![
            LogEntry::noop(),
            LogEntry::single(txn(1, &[0, 1], &[2])),
            LogEntry::combined(vec![txn(1, &[], &[0]), txn(9, &[3], &[1, 2])]),
        ];
        for entry in cases {
            let encoded = entry.encode();
            let decoded = LogEntry::decode(&encoded).expect("round trip");
            assert_eq!(decoded, entry, "failed for {encoded:?}");
        }
    }

    #[test]
    fn codec_preserves_values_with_spaces_and_unicode() {
        let t = Transaction::builder(TxnId::new(3, 4), GroupId(7), LogPosition(2))
            .read(item(0), Some("hello world 1:2 3"))
            .read(item(1), None)
            .write(item(2), "värde : med 空白")
            .build();
        let entry = LogEntry::single(t);
        assert_eq!(LogEntry::decode(&entry.encode()), Some(entry));
    }

    #[test]
    fn codec_rejects_malformed_input() {
        assert_eq!(LogEntry::decode(""), None);
        assert_eq!(LogEntry::decode("garbage"), None);
        assert_eq!(LogEntry::decode("LE1 0"), None);
        assert_eq!(LogEntry::decode("LE1 0 1 1"), None);
        // Truncated netstring.
        assert_eq!(LogEntry::decode("LE1 0 1 0 1 0 0 0 1 0 0 10:short"), None);
        // Trailing garbage.
        let valid = LogEntry::noop().encode();
        assert_eq!(LogEntry::decode(&format!("{valid} extra")), None);
    }
}
