//! # walog — the replicated write-ahead log and serializability theory
//!
//! Section 3 of the paper defines the correctness framework for the
//! transaction tier: a fully replicated, per-transaction-group write-ahead
//! log whose entries are committed transactions, subject to
//!
//! * **(L1)** the log contains only operations of committed transactions,
//! * **(L2)** all operations of a committed transaction live in one log
//!   position,
//! * **(L3)** appending an entry preserves one-copy serializability of the
//!   history contained in the log,
//! * **(R1)** no two replicas disagree on the value of a log position,
//!
//! plus the read rules **(A1)** (read-your-writes) and **(A2)** (all reads
//! of a transaction are served at a single read position).
//!
//! This crate provides the vocabulary types ([`Transaction`], [`LogEntry`],
//! [`LogPosition`], [`GroupLog`]), the conflict relations used by the
//! Paxos-CP *combination* and *promotion* enhancements, and an offline
//! [`checker`] that verifies one-copy serializability (Definition 1) and
//! replica agreement over the logs produced by a simulation — the same
//! obligations the paper discharges by proof, discharged here by exhaustive
//! checking on every experiment run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod combine;
mod entry;
mod log;
mod types;

pub use entry::LogEntry;
pub use log::{GroupLog, LogError};
pub use types::{GroupKey, ItemRef, LogPosition, ReadRecord, Transaction, TxnId, WriteRecord};
