//! # walog — the replicated write-ahead log and serializability theory
//!
//! Section 3 of the paper defines the correctness framework for the
//! transaction tier: a fully replicated, per-transaction-group write-ahead
//! log whose entries are committed transactions, subject to
//!
//! * **(L1)** the log contains only operations of committed transactions,
//! * **(L2)** all operations of a committed transaction live in one log
//!   position,
//! * **(L3)** appending an entry preserves one-copy serializability of the
//!   history contained in the log,
//! * **(R1)** no two replicas disagree on the value of a log position,
//!
//! plus the read rules **(A1)** (read-your-writes) and **(A2)** (all reads
//! of a transaction are served at a single read position).
//!
//! This crate provides the interned identifier plane ([`ident`]: the
//! cluster-wide [`SymbolTable`] mapping group/key/attribute names to dense
//! `Copy` ids), the vocabulary types built on it ([`Transaction`],
//! [`LogEntry`], [`LogPosition`], [`GroupLog`]), the conflict relations used
//! by the Paxos-CP *combination* and *promotion* enhancements (integer-set
//! intersections over cached packed write sets), and an offline [`checker`]
//! that verifies one-copy serializability (Definition 1) and replica
//! agreement over the logs produced by a simulation — the same obligations
//! the paper discharges by proof, discharged here by exhaustive checking on
//! every experiment run.
//!
//! Decided log values are shared as `Arc<LogEntry>` across messages, votes,
//! replica logs and install paths: one allocation per decided value, no
//! matter how many replicas learn it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod combine;
mod entry;
pub mod ident;
mod log;
mod types;

pub use entry::LogEntry;
pub use ident::{AttrId, GroupId, KeyId, SymbolTable};
pub use log::{GroupLog, LogError};
pub use types::{ItemRef, LogPosition, ReadRecord, Transaction, TxnId, WriteRecord};
