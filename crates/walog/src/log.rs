//! A single replica's copy of a transaction group's write-ahead log.

use crate::entry::LogEntry;
use crate::types::LogPosition;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors raised by log maintenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogError {
    /// An attempt was made to install a different value at an
    /// already-decided position — this would violate replication property
    /// (R1) and indicates a protocol bug, so the log refuses it.
    ConflictingEntry {
        /// The position being written.
        position: LogPosition,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::ConflictingEntry { position } => {
                write!(
                    f,
                    "conflicting entry for already-decided log position {position}"
                )
            }
        }
    }
}

impl std::error::Error for LogError {}

/// One replica's write-ahead log for one transaction group.
///
/// Entries are held as `Arc<LogEntry>`: a decided value is shared between
/// the Paxos messages that carried it, every replica's log, and the
/// checker's merged history without ever being deep-cloned.
///
/// Entries may be installed out of order (a replica can miss Paxos messages
/// and learn later positions first); the log tracks both the highest decided
/// position and the highest position up to which the prefix is gap-free,
/// plus an *applied* cursor recording how far entries have been flushed into
/// the local key-value store.
///
/// A log may be **truncated**: entries at or below the `base` position are
/// dropped once a snapshot covers them (see the storage plane). The base
/// starts at 0 (nothing truncated); installing at or below the base is a
/// no-op, and the contiguous prefix is counted from `base + 1`.
#[derive(Clone, Debug, Default)]
pub struct GroupLog {
    entries: BTreeMap<LogPosition, Arc<LogEntry>>,
    applied_through: LogPosition,
    base: LogPosition,
}

impl GroupLog {
    /// An empty log.
    pub fn new() -> Self {
        GroupLog::default()
    }

    /// Install `entry` at `position` (idempotent). Installing a *different*
    /// entry at a decided position is an (R1) violation and returns an error.
    pub fn install(&mut self, position: LogPosition, entry: Arc<LogEntry>) -> Result<(), LogError> {
        debug_assert!(position > LogPosition::ZERO, "log positions start at 1");
        if position <= self.base {
            // The position was decided, applied, snapshotted and truncated
            // away; re-learning it (e.g. from a slow peer) is a no-op.
            return Ok(());
        }
        match self.entries.get(&position) {
            Some(existing) => {
                // Same shared allocation (the common case once a value is
                // decided) or structurally equal: idempotent re-install.
                if Arc::ptr_eq(existing, &entry) || **existing == *entry {
                    Ok(())
                } else {
                    Err(LogError::ConflictingEntry { position })
                }
            }
            None => {
                self.entries.insert(position, entry);
                Ok(())
            }
        }
    }

    /// The entry at `position`, if decided locally.
    pub fn get(&self, position: LogPosition) -> Option<&Arc<LogEntry>> {
        self.entries.get(&position)
    }

    /// Whether `position` has been decided locally.
    pub fn contains(&self, position: LogPosition) -> bool {
        self.entries.contains_key(&position)
    }

    /// The highest decided position (the truncation base when no entries
    /// are retained — everything at or below the base was decided).
    pub fn last_decided(&self) -> LogPosition {
        self.entries
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.base)
    }

    /// The truncation base: every position `1..=base` was decided, applied
    /// and truncated away (0 when nothing has been truncated).
    pub fn base(&self) -> LogPosition {
        self.base
    }

    /// Drop retained entries strictly below `floor` and raise the base to
    /// `floor - 1`. The caller asserts that everything below `floor` is
    /// durably covered by a snapshot. Returns entries removed.
    pub fn truncate_below(&mut self, floor: LogPosition) -> usize {
        let keep = self.entries.split_off(&floor);
        let removed = self.entries.len();
        self.entries = keep;
        if floor.prev() > self.base {
            self.base = floor.prev();
        }
        removed
    }

    /// Restart path: declare positions `1..=base` decided-and-applied from
    /// a snapshot. The applied cursor advances to at least `base`.
    pub fn restore_base(&mut self, base: LogPosition) {
        if base > self.base {
            self.base = base;
        }
        if base > self.applied_through {
            self.applied_through = base;
        }
    }

    /// The highest position `p` such that every position `base+1..=p` is
    /// decided locally (positions at or below the base count as decided);
    /// equals the base when position `base+1` is missing. This is the
    /// position a local read can safely be served at without catch-up.
    pub fn contiguous_prefix(&self) -> LogPosition {
        let mut expect = self.base.next();
        for (pos, _) in self.entries.range(self.base.next()..) {
            if *pos == expect {
                expect = expect.next();
            } else if *pos > expect {
                break;
            }
        }
        expect.prev()
    }

    /// Positions `base+1..=through` that are not yet decided locally (the
    /// gaps a recovering replica must learn before serving reads at
    /// `through`).
    pub fn missing_up_to(&self, through: LogPosition) -> Vec<LogPosition> {
        (self.base.0 + 1..=through.0)
            .map(LogPosition)
            .filter(|p| !self.entries.contains_key(p))
            .collect()
    }

    /// Iterate decided entries in position order.
    pub fn iter(&self) -> impl Iterator<Item = (LogPosition, &Arc<LogEntry>)> {
        self.entries.iter().map(|(p, e)| (*p, e))
    }

    /// Number of decided positions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been decided.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest position whose entry has been applied to the key-value store.
    pub fn applied_through(&self) -> LogPosition {
        self.applied_through
    }

    /// Record that entries up to and including `position` have been applied.
    /// The cursor never moves backwards.
    pub fn mark_applied_through(&mut self, position: LogPosition) {
        if position > self.applied_through {
            self.applied_through = position;
        }
    }

    /// Entries decided but not yet applied, up to `through`, in order.
    /// Returns `None` if some position in `(applied_through, through]` is
    /// missing (the caller must catch up first).
    pub fn unapplied_range(
        &self,
        through: LogPosition,
    ) -> Option<Vec<(LogPosition, Arc<LogEntry>)>> {
        let mut out = Vec::new();
        let mut pos = self.applied_through.next();
        while pos <= through {
            match self.entries.get(&pos) {
                Some(e) => out.push((pos, Arc::clone(e))),
                None => return None,
            }
            pos = pos.next();
        }
        Some(out)
    }

    /// Total number of committed transactions across all decided entries.
    pub fn committed_transaction_count(&self) -> usize {
        self.entries.values().map(|e| e.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::{AttrId, GroupId, KeyId};
    use crate::types::{ItemRef, Transaction, TxnId};

    fn entry(seq: u64) -> Arc<LogEntry> {
        Arc::new(LogEntry::single(
            Transaction::builder(TxnId::new(0, seq), GroupId(0), LogPosition(0))
                .write(ItemRef::new(KeyId(0), AttrId(0)), seq.to_string())
                .build(),
        ))
    }

    #[test]
    fn install_is_idempotent_but_rejects_conflicts() {
        let mut log = GroupLog::new();
        let e1 = entry(1);
        log.install(LogPosition(1), Arc::clone(&e1)).unwrap();
        // Same Arc and a structurally equal but distinct allocation are both
        // accepted.
        log.install(LogPosition(1), e1).unwrap();
        log.install(LogPosition(1), entry(1)).unwrap();
        let err = log.install(LogPosition(1), entry(2)).unwrap_err();
        assert_eq!(
            err,
            LogError::ConflictingEntry {
                position: LogPosition(1)
            }
        );
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn contiguous_prefix_and_gaps() {
        let mut log = GroupLog::new();
        assert_eq!(log.contiguous_prefix(), LogPosition::ZERO);
        log.install(LogPosition(1), entry(1)).unwrap();
        log.install(LogPosition(2), entry(2)).unwrap();
        log.install(LogPosition(4), entry(4)).unwrap();
        assert_eq!(log.last_decided(), LogPosition(4));
        assert_eq!(log.contiguous_prefix(), LogPosition(2));
        assert_eq!(log.missing_up_to(LogPosition(4)), vec![LogPosition(3)]);
        assert_eq!(log.missing_up_to(LogPosition(2)), vec![]);
        log.install(LogPosition(3), entry(3)).unwrap();
        assert_eq!(log.contiguous_prefix(), LogPosition(4));
    }

    #[test]
    fn applied_cursor_and_unapplied_range() {
        let mut log = GroupLog::new();
        for i in 1..=3 {
            log.install(LogPosition(i), entry(i)).unwrap();
        }
        let pending = log.unapplied_range(LogPosition(3)).unwrap();
        assert_eq!(pending.len(), 3);
        log.mark_applied_through(LogPosition(2));
        assert_eq!(log.applied_through(), LogPosition(2));
        let pending = log.unapplied_range(LogPosition(3)).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, LogPosition(3));
        // Cursor never regresses.
        log.mark_applied_through(LogPosition(1));
        assert_eq!(log.applied_through(), LogPosition(2));
        // A gap makes the range unavailable.
        log.install(LogPosition(5), entry(5)).unwrap();
        assert!(log.unapplied_range(LogPosition(5)).is_none());
    }

    #[test]
    fn truncation_raises_the_base_and_stays_idempotent() {
        let mut log = GroupLog::new();
        for i in 1..=6 {
            log.install(LogPosition(i), entry(i)).unwrap();
        }
        log.mark_applied_through(LogPosition(6));
        let removed = log.truncate_below(LogPosition(4));
        assert_eq!(removed, 3);
        assert_eq!(log.base(), LogPosition(3));
        assert_eq!(log.len(), 3);
        // The prefix still counts truncated positions as decided.
        assert_eq!(log.contiguous_prefix(), LogPosition(6));
        assert_eq!(log.missing_up_to(LogPosition(6)), vec![]);
        assert_eq!(log.last_decided(), LogPosition(6));
        // Re-learning a truncated position is a silent no-op, even with a
        // different value (the decided value is gone; trust the snapshot).
        log.install(LogPosition(2), entry(99)).unwrap();
        assert!(!log.contains(LogPosition(2)));
        // Truncating below an older floor never lowers the base.
        log.truncate_below(LogPosition(2));
        assert_eq!(log.base(), LogPosition(3));
    }

    #[test]
    fn restore_base_declares_the_snapshot_prefix_decided() {
        let mut log = GroupLog::new();
        log.restore_base(LogPosition(5));
        assert_eq!(log.base(), LogPosition(5));
        assert_eq!(log.applied_through(), LogPosition(5));
        assert_eq!(log.contiguous_prefix(), LogPosition(5));
        assert_eq!(log.last_decided(), LogPosition(5));
        // Entries after the base extend the prefix normally.
        log.install(LogPosition(6), entry(6)).unwrap();
        assert_eq!(log.contiguous_prefix(), LogPosition(6));
        assert_eq!(
            log.missing_up_to(LogPosition(8)),
            vec![LogPosition(7), LogPosition(8)]
        );
        let pending = log.unapplied_range(LogPosition(6)).unwrap();
        assert_eq!(pending.len(), 1);
    }

    #[test]
    fn committed_transaction_count_sums_entries() {
        let mut log = GroupLog::new();
        log.install(LogPosition(1), entry(1)).unwrap();
        log.install(
            LogPosition(2),
            Arc::new(LogEntry::combined(vec![
                Transaction::builder(TxnId::new(0, 10), GroupId(0), LogPosition(1))
                    .write(ItemRef::new(KeyId(0), AttrId(1)), "1")
                    .build(),
                Transaction::builder(TxnId::new(1, 11), GroupId(0), LogPosition(1))
                    .write(ItemRef::new(KeyId(0), AttrId(2)), "2")
                    .build(),
            ])),
        )
        .unwrap();
        log.install(LogPosition(3), Arc::new(LogEntry::noop()))
            .unwrap();
        assert_eq!(log.committed_transaction_count(), 3);
    }
}
