//! Vocabulary types: log positions, transaction identifiers, read/write sets.
//!
//! Every name in these types is an interned id (see [`crate::ident`]):
//! [`ItemRef`] is a `Copy` pair of integers, and each [`Transaction`] caches
//! its deduplicated write set as a sorted array of packed `u64` items, so
//! the conflict relations the Paxos-CP enhancements evaluate on every
//! contended commit are integer-set intersections — no string hashing, no
//! allocation.

use crate::ident::{AttrId, GroupId, KeyId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Position in a transaction group's write-ahead log.
///
/// Positions are numbered from 1; position 0 denotes the empty log prefix
/// ("no transaction committed yet") and is used as the read position of the
/// very first transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogPosition(pub u64);

impl LogPosition {
    /// The empty prefix (before the first entry).
    pub const ZERO: LogPosition = LogPosition(0);

    /// The following log position.
    pub fn next(self) -> LogPosition {
        LogPosition(self.0 + 1)
    }

    /// The preceding log position (saturating at zero).
    pub fn prev(self) -> LogPosition {
        LogPosition(self.0.saturating_sub(1))
    }

    /// Convert to the key-value-store timestamp used for writes committed at
    /// this position (§3.2: the commit log position is the write timestamp).
    pub fn as_timestamp(self) -> mvkv::Timestamp {
        mvkv::Timestamp(self.0)
    }
}

impl fmt::Debug for LogPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pos({})", self.0)
    }
}

impl fmt::Display for LogPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Globally unique transaction identifier: the issuing client plus a
/// client-local sequence number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId {
    /// Issuing transaction client (node id in the simulation).
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Construct a transaction id.
    pub fn new(client: u32, seq: u64) -> Self {
        TxnId { client, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}t{}", self.client, self.seq)
    }
}

/// A reference to a data item: an interned row key plus an interned
/// attribute (column). The paper's evaluation uses a single row with many
/// attributes, so conflicts are attribute-granular.
///
/// `ItemRef` is `Copy` and packs into a single `u64`
/// ([`ItemRef::packed`]), which is what the conflict relations compare.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ItemRef {
    /// Row key within the transaction group.
    pub key: KeyId,
    /// Attribute (column) id.
    pub attr: AttrId,
}

impl ItemRef {
    /// Construct an item reference.
    pub fn new(key: KeyId, attr: AttrId) -> Self {
        ItemRef { key, attr }
    }

    /// The item as a single integer (key in the high half, attribute in the
    /// low half); the representation conflict checks intersect on.
    pub fn packed(self) -> u64 {
        ((self.key.0 as u64) << 32) | self.attr.0 as u64
    }

    /// Inverse of [`ItemRef::packed`].
    pub fn from_packed(packed: u64) -> Self {
        ItemRef {
            key: KeyId((packed >> 32) as u32),
            attr: AttrId(packed as u32),
        }
    }
}

impl fmt::Display for ItemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.key, self.attr)
    }
}

/// One read performed by a transaction, with the value it observed (used by
/// the offline serializability checker to validate reads-from relations).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReadRecord {
    /// The item that was read.
    pub item: ItemRef,
    /// The value observed; `None` means the item had never been written as
    /// of the transaction's read position.
    pub observed: Option<String>,
}

/// One write performed by a transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WriteRecord {
    /// The item written.
    pub item: ItemRef,
    /// The value written.
    pub value: String,
}

/// A read/write transaction as it appears in the write-ahead log: its
/// identity, the read position it used for every read (A2), the reads it
/// performed (with observed values) and the writes it intends to install.
///
/// Read-only transactions never enter the log (§3.2) and are therefore not
/// represented by this type.
///
/// Construct via [`Transaction::new`] or [`Transaction::builder`]; both
/// finalize the cached sorted write set the conflict relations use.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Unique transaction identifier.
    pub id: TxnId,
    /// The transaction group this transaction operated on.
    pub group: GroupId,
    /// The log position whose prefix every read observed (A2).
    pub read_position: LogPosition,
    /// Reads performed, in program order. Private so the cached write set
    /// below can never desynchronize; read via [`Transaction::reads`].
    reads: Vec<ReadRecord>,
    /// Writes to be installed at the commit position. Private for the same
    /// reason; read via [`Transaction::writes`].
    writes: Vec<WriteRecord>,
    /// Deduplicated write set as sorted packed items — the integer-set
    /// representation conflict checks intersect on. Derived from `writes`
    /// at construction; immutability of `writes` keeps it exact.
    write_items: Box<[u64]>,
}

/// Canonical packed-item set representation: sorted and deduplicated, ready
/// for binary search. The single construction point for both the
/// per-transaction and per-entry caches, so the invariant lives in one
/// place.
pub(crate) fn sorted_packed_set(mut items: Vec<u64>) -> Box<[u64]> {
    items.sort_unstable();
    items.dedup();
    items.into_boxed_slice()
}

/// Build the packed write set of a write list.
fn packed_write_set(writes: &[WriteRecord]) -> Box<[u64]> {
    sorted_packed_set(writes.iter().map(|w| w.item.packed()).collect())
}

impl Transaction {
    /// Construct a transaction from its recorded reads and writes.
    pub fn new(
        id: TxnId,
        group: GroupId,
        read_position: LogPosition,
        reads: Vec<ReadRecord>,
        writes: Vec<WriteRecord>,
    ) -> Self {
        let write_items = packed_write_set(&writes);
        Transaction {
            id,
            group,
            read_position,
            reads,
            writes,
            write_items,
        }
    }

    /// Start building a transaction.
    pub fn builder(id: TxnId, group: GroupId, read_position: LogPosition) -> TransactionBuilder {
        TransactionBuilder {
            id,
            group,
            read_position,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// The reads performed, in program order.
    pub fn reads(&self) -> &[ReadRecord] {
        &self.reads
    }

    /// The writes to install at the commit position, in program order.
    pub fn writes(&self) -> &[WriteRecord] {
        &self.writes
    }

    /// The deduplicated write set as sorted packed items.
    pub fn write_items(&self) -> &[u64] {
        &self.write_items
    }

    /// Whether this transaction writes `item` (binary search over the packed
    /// write set).
    pub fn writes_item(&self, item: ItemRef) -> bool {
        self.write_items.binary_search(&item.packed()).is_ok()
    }

    /// The set of items read (deduplicated).
    pub fn read_set(&self) -> BTreeSet<ItemRef> {
        self.reads.iter().map(|r| r.item).collect()
    }

    /// The set of items written (deduplicated, last write wins is irrelevant
    /// for conflict analysis).
    pub fn write_set(&self) -> BTreeSet<ItemRef> {
        self.write_items
            .iter()
            .map(|p| ItemRef::from_packed(*p))
            .collect()
    }

    /// The final value written per item (last write in program order wins).
    pub fn final_writes(&self) -> BTreeMap<ItemRef, &str> {
        let mut map = BTreeMap::new();
        for w in &self.writes {
            map.insert(w.item, w.value.as_str());
        }
        map
    }

    /// Whether this transaction wrote anything (read-only transactions are
    /// never logged, but the type does not forbid constructing them).
    pub fn is_read_write(&self) -> bool {
        !self.writes.is_empty()
    }

    /// Does this transaction read any item that `other` writes?
    ///
    /// This is the relation the Paxos-CP enhancements care about: if `self`
    /// reads something `other` wrote and `other` is serialized after
    /// `self`'s read position but before `self`, then `self`'s reads are
    /// stale and it cannot be combined with or promoted past `other`.
    pub fn reads_item_written_by(&self, other: &Transaction) -> bool {
        if other.write_items.is_empty() {
            return false;
        }
        self.reads.iter().any(|r| other.writes_item(r.item))
    }

    /// Does this transaction write any item that `other` also writes?
    /// Not a correctness obstacle in the paper's model (blind writes at the
    /// same position are ordered by list order), but useful for analysis.
    pub fn writes_overlap(&self, other: &Transaction) -> bool {
        // Sorted-merge intersection over the two packed write sets.
        let (mut a, mut b) = (self.write_items.iter(), other.write_items.iter());
        let (mut x, mut y) = (a.next(), b.next());
        while let (Some(va), Some(vb)) = (x, y) {
            match va.cmp(vb) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
            }
        }
        false
    }
}

/// Builder for [`Transaction`].
pub struct TransactionBuilder {
    id: TxnId,
    group: GroupId,
    read_position: LogPosition,
    reads: Vec<ReadRecord>,
    writes: Vec<WriteRecord>,
}

impl TransactionBuilder {
    /// Record a read of `item` observing `observed`.
    pub fn read(mut self, item: ItemRef, observed: Option<&str>) -> Self {
        self.reads.push(ReadRecord {
            item,
            observed: observed.map(str::to_owned),
        });
        self
    }

    /// Record a write of `value` to `item`.
    pub fn write(mut self, item: ItemRef, value: impl Into<String>) -> Self {
        self.writes.push(WriteRecord {
            item,
            value: value.into(),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> Transaction {
        Transaction::new(
            self.id,
            self.group,
            self.read_position,
            self.reads,
            self.writes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::{AttrId, GroupId, KeyId};

    fn item(a: u32) -> ItemRef {
        ItemRef::new(KeyId(0), AttrId(a))
    }

    fn txn(id: u64, reads: &[u32], writes: &[u32]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(1, id), GroupId(0), LogPosition(0));
        for r in reads {
            b = b.read(item(*r), Some("v"));
        }
        for w in writes {
            b = b.write(item(*w), "x");
        }
        b.build()
    }

    #[test]
    fn log_position_arithmetic() {
        assert_eq!(LogPosition(3).next(), LogPosition(4));
        assert_eq!(LogPosition(3).prev(), LogPosition(2));
        assert_eq!(LogPosition::ZERO.prev(), LogPosition::ZERO);
        assert_eq!(LogPosition(5).as_timestamp(), mvkv::Timestamp(5));
        assert_eq!(format!("{}", LogPosition(5)), "5");
    }

    #[test]
    fn read_write_sets_deduplicate() {
        let t = txn(1, &[0, 0, 1], &[2, 2]);
        assert_eq!(t.read_set().len(), 2);
        assert_eq!(t.write_set().len(), 1);
        assert_eq!(t.write_items().len(), 1);
        assert!(t.is_read_write());
        assert!(!txn(2, &[0], &[]).is_read_write());
    }

    #[test]
    fn packed_item_round_trips() {
        let i = ItemRef::new(KeyId(7), AttrId(9));
        assert_eq!(ItemRef::from_packed(i.packed()), i);
        // Key occupies the high half: distinct keys with equal attrs differ.
        assert_ne!(
            ItemRef::new(KeyId(1), AttrId(0)).packed(),
            ItemRef::new(KeyId(0), AttrId(1)).packed()
        );
    }

    #[test]
    fn final_writes_takes_last_value() {
        let t = Transaction::builder(TxnId::new(1, 1), GroupId(0), LogPosition(0))
            .write(item(0), "first")
            .write(item(0), "second")
            .build();
        let finals = t.final_writes();
        assert_eq!(finals.len(), 1);
        assert_eq!(finals.values().next().copied(), Some("second"));
    }

    #[test]
    fn conflict_relations() {
        let reader = txn(1, &[0, 1], &[25]);
        let writer = txn(2, &[], &[1]);
        let disjoint = txn(3, &[16], &[17]);
        assert!(reader.reads_item_written_by(&writer));
        assert!(!writer.reads_item_written_by(&reader));
        assert!(!reader.reads_item_written_by(&disjoint));
        let other_writer = txn(4, &[], &[25]);
        assert!(reader.writes_overlap(&other_writer));
        assert!(!reader.writes_overlap(&writer));
    }

    #[test]
    fn writes_item_uses_the_cached_set() {
        let t = txn(1, &[], &[3, 1, 2, 1]);
        assert_eq!(
            t.write_items(),
            &[item(1).packed(), item(2).packed(), item(3).packed()]
        );
        assert!(t.writes_item(item(2)));
        assert!(!t.writes_item(item(9)));
    }

    #[test]
    fn txn_id_display_and_ordering() {
        assert_eq!(format!("{}", TxnId::new(3, 9)), "c3t9");
        assert!(TxnId::new(1, 2) < TxnId::new(2, 0));
        assert_eq!(format!("{}", ItemRef::new(KeyId(0), AttrId(7))), "k0.a7");
    }
}
