//! Vocabulary types: log positions, transaction identifiers, read/write sets.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Key of a transaction group: the unit of transactional access and of
/// write-ahead-log replication (§2.1). Every data item belongs to exactly
/// one group.
pub type GroupKey = String;

/// Position in a transaction group's write-ahead log.
///
/// Positions are numbered from 1; position 0 denotes the empty log prefix
/// ("no transaction committed yet") and is used as the read position of the
/// very first transaction.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LogPosition(pub u64);

impl LogPosition {
    /// The empty prefix (before the first entry).
    pub const ZERO: LogPosition = LogPosition(0);

    /// The following log position.
    pub fn next(self) -> LogPosition {
        LogPosition(self.0 + 1)
    }

    /// The preceding log position (saturating at zero).
    pub fn prev(self) -> LogPosition {
        LogPosition(self.0.saturating_sub(1))
    }

    /// Convert to the key-value-store timestamp used for writes committed at
    /// this position (§3.2: the commit log position is the write timestamp).
    pub fn as_timestamp(self) -> mvkv::Timestamp {
        mvkv::Timestamp(self.0)
    }
}

impl fmt::Debug for LogPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pos({})", self.0)
    }
}

impl fmt::Display for LogPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Globally unique transaction identifier: the issuing client plus a
/// client-local sequence number.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub struct TxnId {
    /// Issuing transaction client (node id in the simulation).
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Construct a transaction id.
    pub fn new(client: u32, seq: u64) -> Self {
        TxnId { client, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}t{}", self.client, self.seq)
    }
}

/// A reference to a data item: a row key plus an attribute (column) name.
/// The paper's evaluation uses a single row with many attributes, so
/// conflicts are attribute-granular.
#[derive(
    Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub struct ItemRef {
    /// Row key within the transaction group.
    pub key: String,
    /// Attribute (column) name.
    pub attr: String,
}

impl ItemRef {
    /// Construct an item reference.
    pub fn new(key: impl Into<String>, attr: impl Into<String>) -> Self {
        ItemRef {
            key: key.into(),
            attr: attr.into(),
        }
    }
}

impl fmt::Display for ItemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.key, self.attr)
    }
}

/// One read performed by a transaction, with the value it observed (used by
/// the offline serializability checker to validate reads-from relations).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ReadRecord {
    /// The item that was read.
    pub item: ItemRef,
    /// The value observed; `None` means the item had never been written as
    /// of the transaction's read position.
    pub observed: Option<String>,
}

/// One write performed by a transaction.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct WriteRecord {
    /// The item written.
    pub item: ItemRef,
    /// The value written.
    pub value: String,
}

/// A read/write transaction as it appears in the write-ahead log: its
/// identity, the read position it used for every read (A2), the reads it
/// performed (with observed values) and the writes it intends to install.
///
/// Read-only transactions never enter the log (§3.2) and are therefore not
/// represented by this type.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique transaction identifier.
    pub id: TxnId,
    /// The transaction group this transaction operated on.
    pub group: GroupKey,
    /// The log position whose prefix every read observed (A2).
    pub read_position: LogPosition,
    /// Reads performed, in program order.
    pub reads: Vec<ReadRecord>,
    /// Writes to be installed at the commit position.
    pub writes: Vec<WriteRecord>,
}

impl Transaction {
    /// Start building a transaction.
    pub fn builder(id: TxnId, group: impl Into<GroupKey>, read_position: LogPosition) -> TransactionBuilder {
        TransactionBuilder {
            txn: Transaction {
                id,
                group: group.into(),
                read_position,
                reads: Vec::new(),
                writes: Vec::new(),
            },
        }
    }

    /// The set of items read (deduplicated).
    pub fn read_set(&self) -> BTreeSet<&ItemRef> {
        self.reads.iter().map(|r| &r.item).collect()
    }

    /// The set of items written (deduplicated, last write wins is irrelevant
    /// for conflict analysis).
    pub fn write_set(&self) -> BTreeSet<&ItemRef> {
        self.writes.iter().map(|w| &w.item).collect()
    }

    /// The final value written per item (last write in program order wins).
    pub fn final_writes(&self) -> BTreeMap<&ItemRef, &str> {
        let mut map = BTreeMap::new();
        for w in &self.writes {
            map.insert(&w.item, w.value.as_str());
        }
        map
    }

    /// Whether this transaction wrote anything (read-only transactions are
    /// never logged, but the type does not forbid constructing them).
    pub fn is_read_write(&self) -> bool {
        !self.writes.is_empty()
    }

    /// Does this transaction read any item that `other` writes?
    ///
    /// This is the relation the Paxos-CP enhancements care about: if `self`
    /// reads something `other` wrote and `other` is serialized after
    /// `self`'s read position but before `self`, then `self`'s reads are
    /// stale and it cannot be combined with or promoted past `other`.
    pub fn reads_item_written_by(&self, other: &Transaction) -> bool {
        let writes = other.write_set();
        self.reads.iter().any(|r| writes.contains(&r.item))
    }

    /// Does this transaction write any item that `other` also writes?
    /// Not a correctness obstacle in the paper's model (blind writes at the
    /// same position are ordered by list order), but useful for analysis.
    pub fn writes_overlap(&self, other: &Transaction) -> bool {
        let writes = other.write_set();
        self.writes.iter().any(|w| writes.contains(&w.item))
    }
}

/// Builder for [`Transaction`].
pub struct TransactionBuilder {
    txn: Transaction,
}

impl TransactionBuilder {
    /// Record a read of `item` observing `observed`.
    pub fn read(mut self, item: ItemRef, observed: Option<&str>) -> Self {
        self.txn.reads.push(ReadRecord {
            item,
            observed: observed.map(str::to_owned),
        });
        self
    }

    /// Record a write of `value` to `item`.
    pub fn write(mut self, item: ItemRef, value: impl Into<String>) -> Self {
        self.txn.writes.push(WriteRecord {
            item,
            value: value.into(),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> Transaction {
        self.txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(a: &str) -> ItemRef {
        ItemRef::new("row", a)
    }

    fn txn(id: u64, reads: &[&str], writes: &[&str]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(1, id), "g", LogPosition(0));
        for r in reads {
            b = b.read(item(r), Some("v"));
        }
        for w in writes {
            b = b.write(item(w), "x");
        }
        b.build()
    }

    #[test]
    fn log_position_arithmetic() {
        assert_eq!(LogPosition(3).next(), LogPosition(4));
        assert_eq!(LogPosition(3).prev(), LogPosition(2));
        assert_eq!(LogPosition::ZERO.prev(), LogPosition::ZERO);
        assert_eq!(LogPosition(5).as_timestamp(), mvkv::Timestamp(5));
        assert_eq!(format!("{}", LogPosition(5)), "5");
    }

    #[test]
    fn read_write_sets_deduplicate() {
        let t = txn(1, &["a", "a", "b"], &["c", "c"]);
        assert_eq!(t.read_set().len(), 2);
        assert_eq!(t.write_set().len(), 1);
        assert!(t.is_read_write());
        assert!(!txn(2, &["a"], &[]).is_read_write());
    }

    #[test]
    fn final_writes_takes_last_value() {
        let t = Transaction::builder(TxnId::new(1, 1), "g", LogPosition(0))
            .write(item("a"), "first")
            .write(item("a"), "second")
            .build();
        let finals = t.final_writes();
        assert_eq!(finals.len(), 1);
        assert_eq!(finals.values().next().copied(), Some("second"));
    }

    #[test]
    fn conflict_relations() {
        let reader = txn(1, &["a", "b"], &["z"]);
        let writer = txn(2, &[], &["b"]);
        let disjoint = txn(3, &["q"], &["r"]);
        assert!(reader.reads_item_written_by(&writer));
        assert!(!writer.reads_item_written_by(&reader));
        assert!(!reader.reads_item_written_by(&disjoint));
        let other_writer = txn(4, &[], &["z"]);
        assert!(reader.writes_overlap(&other_writer));
        assert!(!reader.writes_overlap(&writer));
    }

    #[test]
    fn txn_id_display_and_ordering() {
        assert_eq!(format!("{}", TxnId::new(3, 9)), "c3t9");
        assert!(TxnId::new(1, 2) < TxnId::new(2, 0));
        assert_eq!(format!("{}", ItemRef::new("row", "a7")), "row.a7");
    }
}
