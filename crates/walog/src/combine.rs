//! The *combination* logic of Paxos-CP (§5).
//!
//! When no value can yet have a majority for a log position, the proposing
//! client is free to choose any value. Instead of proposing only its own
//! transaction, a Paxos-CP client proposes an ordered list built from its
//! own transaction plus transactions seen in other replicas' votes, as long
//! as the list itself is one-copy serializable: *no transaction in the list
//! reads an item written by any preceding transaction in the list*.
//!
//! The paper notes the exhaustive search is over every subset in every
//! order, which is fine because contention keeps the candidate count tiny
//! (two or three); for larger candidate sets it prescribes a greedy single
//! pass. Both are implemented here and selected by a threshold.
//!
//! With interned items, every conflict edge evaluated by the search is a
//! binary search of packed integers against a transaction's cached write
//! set — the inner loop of the enhanced commit protocol runs without
//! touching a string.

use crate::types::Transaction;
use std::collections::BTreeSet;

/// Is the ordered list a valid combined entry? True iff no transaction
/// reads an item written by any *preceding* transaction in the list.
pub fn is_valid_combination(list: &[Transaction]) -> bool {
    for (i, later) in list.iter().enumerate() {
        for earlier in &list[..i] {
            if later.reads_item_written_by(earlier) {
                return false;
            }
        }
    }
    true
}

/// Can `txn` be appended to `list` without invalidating its reads?
pub fn can_append(list: &[Transaction], txn: &Transaction) -> bool {
    list.iter()
        .all(|earlier| !txn.reads_item_written_by(earlier))
}

/// Candidate-count threshold above which [`best_combination`] switches from
/// exhaustive permutation search to the greedy single pass.
pub const EXHAUSTIVE_LIMIT: usize = 4;

/// Build the combined value a Paxos-CP client proposes: an ordered list that
/// contains `own` and as many of `candidates` as possible while remaining a
/// valid combination.
///
/// Candidates equal to `own` (same id) or duplicated among themselves are
/// ignored. With at most [`EXHAUSTIVE_LIMIT`] distinct candidates the search
/// is exhaustive (maximum list length, ties broken towards placing `own`
/// earliest); beyond that a greedy pass appends each candidate that still
/// fits, in the order given.
pub fn best_combination(own: &Transaction, candidates: &[Transaction]) -> Vec<Transaction> {
    let mut seen: BTreeSet<_> = BTreeSet::new();
    seen.insert(own.id);
    let distinct: Vec<&Transaction> = candidates.iter().filter(|c| seen.insert(c.id)).collect();

    if distinct.len() <= EXHAUSTIVE_LIMIT {
        exhaustive(own, &distinct)
    } else {
        greedy(own, &distinct)
    }
}

/// Split an ordered list of transactions into a maximal batch that is a
/// valid combination (in the order given) and the deferred remainder.
///
/// This is the client-side *batching* gate: a proposer that wants to commit
/// several independent transactions from one submission window in a single
/// Paxos-CP instance first runs its window through this partition. Each
/// transaction is kept iff appending it to the batch built so far keeps the
/// list a valid combination ([`can_append`]: it must not read an item
/// written by any earlier batch member); everything else is deferred to a
/// later instance. Write-write overlap does not split a batch — within an
/// entry, later writes simply supersede earlier ones, matching the
/// serialization order of the list.
///
/// The conflict test is the packed-write-set intersection cached on every
/// [`Transaction`], so partitioning a window of `n` transactions costs
/// `O(n²)` integer binary searches and no allocation beyond the outputs.
///
/// This is the *reference* form of the partition: the `mdstore` committer
/// inlines the same [`can_append`] rule in its slot-selection loop (which
/// also enforces window caps and pipeline speculation limits), so keep the
/// two in agreement when the rule changes.
pub fn partition_compatible(txns: Vec<Transaction>) -> (Vec<Transaction>, Vec<Transaction>) {
    let mut batch: Vec<Transaction> = Vec::with_capacity(txns.len());
    let mut deferred = Vec::new();
    for txn in txns {
        if can_append(&batch, &txn) {
            batch.push(txn);
        } else {
            deferred.push(txn);
        }
    }
    (batch, deferred)
}

fn greedy(own: &Transaction, candidates: &[&Transaction]) -> Vec<Transaction> {
    let mut list = vec![own.clone()];
    for cand in candidates {
        if can_append(&list, cand) {
            list.push((*cand).clone());
        }
    }
    list
}

/// Exhaustive search: depth-first over all orderings of all subsets of the
/// full pool (own + candidates), keeping the longest valid list that
/// contains `own`. The pool is at most `EXHAUSTIVE_LIMIT + 1` transactions,
/// so the search space is bounded by `5! · 2^5` interleavings in the worst
/// case — microseconds in practice.
fn exhaustive(own: &Transaction, candidates: &[&Transaction]) -> Vec<Transaction> {
    let mut pool: Vec<&Transaction> = Vec::with_capacity(candidates.len() + 1);
    pool.push(own);
    pool.extend_from_slice(candidates);

    let mut best: Vec<usize> = vec![0]; // indices into pool; always contains `own`
    let mut current: Vec<usize> = Vec::new();
    let mut used = vec![false; pool.len()];

    fn dfs(
        pool: &[&Transaction],
        used: &mut Vec<bool>,
        current: &mut Vec<usize>,
        best: &mut Vec<usize>,
    ) {
        // Record current if it is better (longer) and contains own (index 0).
        if current.contains(&0) && current.len() > best.len() {
            *best = current.clone();
        }
        for i in 0..pool.len() {
            if used[i] {
                continue;
            }
            // Appending pool[i] must not let it read from anything already in
            // the list.
            let ok = current
                .iter()
                .all(|&j| !pool[i].reads_item_written_by(pool[j]));
            if !ok {
                continue;
            }
            used[i] = true;
            current.push(i);
            dfs(pool, used, current, best);
            current.pop();
            used[i] = false;
        }
    }

    dfs(&pool, &mut used, &mut current, &mut best);
    best.into_iter().map(|i| pool[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::{AttrId, GroupId, KeyId};
    use crate::types::{ItemRef, LogPosition, TxnId};

    fn item(a: u32) -> ItemRef {
        ItemRef::new(KeyId(0), AttrId(a))
    }

    fn txn(seq: u64, reads: &[u32], writes: &[u32]) -> Transaction {
        let mut b = Transaction::builder(TxnId::new(0, seq), GroupId(0), LogPosition(0));
        for r in reads {
            b = b.read(item(*r), Some("v"));
        }
        for w in writes {
            b = b.write(item(*w), "x");
        }
        b.build()
    }

    #[test]
    fn valid_combination_rejects_read_after_write() {
        let w = txn(1, &[], &[0]);
        let r = txn(2, &[0], &[1]);
        assert!(is_valid_combination(&[r.clone(), w.clone()]));
        assert!(!is_valid_combination(&[w.clone(), r.clone()]));
        assert!(is_valid_combination(&[]));
        assert!(is_valid_combination(&[w]));
    }

    #[test]
    fn can_append_checks_only_new_transaction_reads() {
        let list = vec![txn(1, &[], &[0]), txn(2, &[], &[1])];
        assert!(!can_append(&list, &txn(3, &[0], &[2])));
        assert!(can_append(&list, &txn(4, &[25], &[0])));
    }

    #[test]
    fn combination_includes_all_disjoint_transactions() {
        let own = txn(1, &[0], &[0]);
        let cands = vec![txn(2, &[1], &[1]), txn(3, &[2], &[2])];
        let combo = best_combination(&own, &cands);
        assert_eq!(combo.len(), 3);
        assert!(combo.iter().any(|t| t.id == own.id));
        assert!(is_valid_combination(&combo));
    }

    #[test]
    fn combination_orders_around_conflicts() {
        // own reads a0; candidate writes a0. Valid only with own first.
        let own = txn(1, &[0], &[25]);
        let cand = vec![txn(2, &[], &[0])];
        let combo = best_combination(&own, &cand);
        assert_eq!(combo.len(), 2);
        assert_eq!(combo[0].id, own.id);
        assert!(is_valid_combination(&combo));
    }

    #[test]
    fn combination_drops_irreconcilable_conflicts() {
        // own reads a0 and writes a0; candidate reads a0 and writes a0.
        // Whichever goes second reads the other's write, so only one fits.
        let own = txn(1, &[0], &[0]);
        let cand = vec![txn(2, &[0], &[0])];
        let combo = best_combination(&own, &cand);
        assert_eq!(combo.len(), 1);
        assert_eq!(combo[0].id, own.id);
    }

    #[test]
    fn duplicates_and_own_id_in_candidates_are_ignored() {
        let own = txn(1, &[0], &[0]);
        let cands = vec![own.clone(), txn(2, &[1], &[1]), txn(2, &[1], &[1])];
        let combo = best_combination(&own, &cands);
        assert_eq!(combo.len(), 2);
    }

    #[test]
    fn greedy_path_used_for_many_candidates() {
        let own = txn(0, &[100], &[100]);
        // 6 candidates (> EXHAUSTIVE_LIMIT), all mutually disjoint: candidate
        // i reads attr i and writes attr 50+i.
        let cands: Vec<Transaction> = (1..=6)
            .map(|i| txn(i, &[i as u32], &[50 + i as u32]))
            .collect();
        let combo = best_combination(&own, &cands);
        assert_eq!(combo.len(), 7);
        assert!(is_valid_combination(&combo));
    }

    #[test]
    fn partition_keeps_compatible_prefix_and_defers_readers() {
        // w writes a0; r reads a0: r cannot ride in the same batch after w.
        let w = txn(1, &[], &[0]);
        let r = txn(2, &[0], &[1]);
        let disjoint = txn(3, &[5], &[6]);
        let (batch, deferred) = partition_compatible(vec![w.clone(), r.clone(), disjoint.clone()]);
        assert_eq!(batch.len(), 2);
        assert!(is_valid_combination(&batch));
        assert_eq!(deferred.len(), 1);
        assert_eq!(deferred[0].id, r.id);
        // Reader first is fine: it reads before the writer's write applies.
        let (batch, deferred) = partition_compatible(vec![r, w]);
        assert_eq!(batch.len(), 2);
        assert!(deferred.is_empty());
        // Write-write overlap never splits a batch.
        let ww = vec![txn(4, &[], &[9]), txn(5, &[], &[9])];
        let (batch, deferred) = partition_compatible(ww);
        assert_eq!(batch.len(), 2);
        assert!(deferred.is_empty());
    }

    #[test]
    fn exhaustive_beats_greedy_on_order_sensitive_input() {
        // Candidate c1 writes a7; candidate c2 reads a7. Greedy order
        // [own, c1, c2] would reject c2; exhaustive finds [own, c2, c1].
        let own = txn(0, &[30], &[30]);
        let c1 = txn(1, &[], &[7]);
        let c2 = txn(2, &[7], &[8]);
        let combo = best_combination(&own, &[c1, c2]);
        assert_eq!(combo.len(), 3, "exhaustive search should fit all three");
        assert!(is_valid_combination(&combo));
    }
}
