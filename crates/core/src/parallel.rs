//! Multi-core cluster bring-up: shard the data plane over worker threads.
//!
//! [`ParallelCluster`] assembles the same pieces as
//! [`Cluster`](crate::Cluster) — one storage core and one
//! [`TransactionService`] per datacenter, a [`Directory`] wiring them
//! together — but on the [`simnet::ParallelRuntime`] instead of the
//! deterministic simulation, and **once per worker thread**: each worker
//! owns a complete replica set (a *shard*) that leads a disjoint subset of
//! transaction groups. A group's entire commit pipeline — the clients'
//! requests, the service-hosted [`GroupCommitter`](crate::GroupCommitter),
//! the Paxos acceptors, the replica logs — lives on its shard's worker, so
//! consensus traffic never crosses threads; only driver→service commit
//! requests and replies do (over the runtime's bounded channels).
//!
//! This is the sharding the paper's data model promises (§2.1: transaction
//! groups are independent units of consistency) projected onto cores:
//! adding a worker adds a full set of group pipelines. Protocol code is
//! untouched — the services and committers are byte-for-byte the actors
//! the simulation runs; only the harness differs.
//!
//! Every shard keeps its own [`Directory`] (its three services, its
//! cores), but all shards intern names through one cluster-wide
//! [`SymbolTable`], so group/key/attribute ids — and therefore shard
//! routing — agree across workers.

use crate::batch::BatchConfig;
use crate::datacenter::{DatacenterCore, SharedCore};
use crate::directory::Directory;
use crate::metrics::{MetricsHub, RunMetrics};
use crate::msg::Msg;
use crate::service::TransactionService;
use crate::session::ClientConfig;
use crate::topology::Topology;
use paxos::CommitProtocol;
use simnet::{
    Actor, LatencyMatrix, NetworkConfig, NodeId, ParallelReport, ParallelRuntime, SimDuration,
    SiteId,
};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;
use walog::checker::{self, CheckReport, Violation};
use walog::{AttrId, GroupId, GroupLog, KeyId, SymbolTable};

/// Configuration of a sharded parallel cluster.
#[derive(Clone, Debug)]
pub struct ParallelClusterConfig {
    /// Datacenter layout each shard replicates (regions + RTTs).
    pub topology: Topology,
    /// Commit protocol of the service-hosted engines.
    pub protocol: CommitProtocol,
    /// Window/pipeline settings of the service-hosted commit engines.
    pub batch: BatchConfig,
    /// Whether the services run the orphaned-position janitor.
    pub janitor: bool,
    /// Seed deriving the per-worker RNGs (scheduling is still wall-clock,
    /// so runs are *not* deterministic).
    pub seed: u64,
    /// Worker threads = shards (each owns one full replica set).
    pub workers: usize,
    /// Scale factor applied to every latency in the topology (1.0 = the
    /// paper's wide-area RTTs in real time; 0.1 = ten times faster).
    /// Message timeouts are *not* scaled.
    pub rtt_scale: f64,
}

impl ParallelClusterConfig {
    /// A two-worker cluster with the given topology and protocol, seed 42,
    /// unscaled latencies.
    pub fn new(topology: Topology, protocol: CommitProtocol) -> Self {
        ParallelClusterConfig {
            topology,
            protocol,
            batch: BatchConfig::default(),
            janitor: true,
            seed: 42,
            workers: 2,
            rtt_scale: 1.0,
        }
    }

    /// Builder-style worker-count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style commit-engine window/pipeline override.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Builder-style latency scale override (clamped positive).
    pub fn with_rtt_scale(mut self, scale: f64) -> Self {
        self.rtt_scale = if scale > 0.0 { scale } else { 1.0 };
        self
    }

    /// Builder-style janitor switch.
    pub fn with_janitor(mut self, enabled: bool) -> Self {
        self.janitor = enabled;
        self
    }
}

/// One worker's replica set: its directory (services, cores, leader map).
struct Shard {
    directory: Arc<Directory>,
}

/// A sharded multi-core cluster on the parallel runtime.
pub struct ParallelCluster {
    config: ParallelClusterConfig,
    runtime: Option<ParallelRuntime<Msg>>,
    symbols: Arc<SymbolTable>,
    shards: Vec<Shard>,
    /// Shard owning each registered group.
    group_shard: HashMap<GroupId, usize>,
    /// Groups in registration order.
    groups: Vec<GroupId>,
    service_metrics: MetricsHub,
}

impl ParallelCluster {
    /// Build the cluster: `workers` shards, each with one site, one
    /// storage core and one Transaction Service per datacenter of the
    /// topology, all interning through one shared symbol table.
    pub fn build(config: ParallelClusterConfig) -> Self {
        let mut runtime: ParallelRuntime<Msg> =
            ParallelRuntime::new(network_config(&config), config.workers, config.seed);
        let symbols = SymbolTable::shared();
        let service_metrics = MetricsHub::new();
        let mut commit_config = ClientConfig::for_protocol(config.protocol);
        commit_config.message_timeout = config.topology.message_timeout;
        let mut shards = Vec::with_capacity(config.workers);
        for worker in 0..config.workers {
            let directory = Directory::with_symbols(Arc::clone(&symbols));
            for (replica, region) in config.topology.regions().iter().enumerate() {
                let name = format!("w{worker}-{region}-{replica}");
                let site = runtime.add_site(name.clone());
                let core: SharedCore = DatacenterCore::shared(name, replica);
                let service = TransactionService::new(
                    replica,
                    core.clone(),
                    directory.clone(),
                    config.topology.message_timeout,
                )
                .with_commit_engine(commit_config.clone(), config.batch.clone())
                .with_commit_metrics(service_metrics.register())
                .with_janitor(config.janitor);
                let node = runtime.add_node(site, worker, Box::new(service));
                directory.register_datacenter(node, core);
            }
            shards.push(Shard { directory });
        }
        ParallelCluster {
            config,
            runtime: Some(runtime),
            symbols,
            shards,
            group_shard: HashMap::new(),
            groups: Vec::new(),
            service_metrics,
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ParallelClusterConfig {
        &self.config
    }

    /// The cluster-wide symbol table.
    pub fn symbols(&self) -> Arc<SymbolTable> {
        Arc::clone(&self.symbols)
    }

    /// Number of worker threads (= shards).
    pub fn num_workers(&self) -> usize {
        self.shards.len()
    }

    /// Datacenters per shard.
    pub fn num_datacenters(&self) -> usize {
        self.config.topology.num_datacenters()
    }

    /// Intern a group name and assign it to a shard (round-robin over the
    /// workers in registration order). Returns its cluster-wide id.
    pub fn register_group(&mut self, name: &str) -> GroupId {
        let group = self.symbols.group(name);
        let shard = self.groups.len() % self.shards.len();
        self.group_shard.entry(group).or_insert(shard);
        self.groups.push(group);
        group
    }

    /// The groups registered so far, in registration order.
    pub fn groups(&self) -> &[GroupId] {
        &self.groups
    }

    /// The shard (worker) owning a registered group.
    pub fn shard_of_group(&self, group: GroupId) -> usize {
        *self
            .group_shard
            .get(&group)
            .expect("group was registered with register_group")
    }

    /// The Transaction Service node commit requests for `group` go to: the
    /// group home's service within the owning shard.
    pub fn service_for_group(&self, group: GroupId) -> NodeId {
        let shard = &self.shards[self.shard_of_group(group)];
        shard
            .directory
            .service_node(shard.directory.group_home(group))
    }

    /// The storage core of the group home's datacenter within the owning
    /// shard (drivers refresh read positions from it).
    pub fn home_core(&self, group: GroupId) -> SharedCore {
        let shard = &self.shards[self.shard_of_group(group)];
        shard.directory.core(shard.directory.group_home(group))
    }

    /// The Transaction Service node of `replica` within the shard owning
    /// `group`. Snapshot-read harnesses target non-home replicas with this
    /// — any replica of the owning shard can serve the group's watermark
    /// reads, which is what the scale-out read plane measures.
    pub fn service_for_group_at(&self, group: GroupId, replica: usize) -> NodeId {
        self.shards[self.shard_of_group(group)]
            .directory
            .service_node(replica)
    }

    /// The storage core of `replica` within the shard owning `group`
    /// (snapshot-read harnesses refresh watermarks from — and hold read
    /// leases on — the serving replica, not just the home).
    pub fn core_for_group_at(&self, group: GroupId, replica: usize) -> SharedCore {
        self.shards[self.shard_of_group(group)]
            .directory
            .core(replica)
    }

    /// Add a driver actor on `worker`, placed at that shard's `replica`
    /// site. The closure receives the node id the actor will run as.
    pub fn add_driver<F>(&mut self, worker: usize, replica: usize, make_actor: F) -> NodeId
    where
        F: FnOnce(NodeId) -> Box<dyn Actor<Msg> + Send>,
    {
        let runtime = self
            .runtime
            .as_mut()
            .expect("drivers must be added before run()");
        let expected = NodeId(runtime.node_count() as u32);
        self.shards[worker]
            .directory
            .register_client(expected, replica);
        let site = SiteId((worker * self.config.topology.num_datacenters() + replica) as u32);
        let node = runtime.add_node(site, worker, make_actor(expected));
        assert_eq!(
            node, expected,
            "node ids are assigned densely in registration order"
        );
        node
    }

    /// Launch the worker threads and run until `done()` or `max_wall`.
    /// Consumes the runtime: a cluster runs once.
    pub fn run<F>(&mut self, max_wall: Duration, done: F) -> ParallelReport
    where
        F: FnMut() -> bool,
    {
        self.runtime
            .take()
            .expect("a ParallelCluster runs exactly once")
            .run(max_wall, done)
    }

    /// Every group any shard has a log for (registered or recovered).
    fn logged_groups(&self, shard: &Shard) -> Vec<GroupId> {
        let mut groups = BTreeSet::new();
        for core in shard.directory.cores() {
            for (group, _) in core.lock().logs() {
                groups.insert(group);
            }
        }
        groups.into_iter().collect()
    }

    /// Verify replica agreement and one-copy serializability of everything
    /// every shard decided, per group (same checker the simulation harness
    /// runs after every experiment).
    pub fn verify(&self) -> Result<Vec<(GroupId, CheckReport)>, Violation> {
        let mut reports = Vec::new();
        for shard in &self.shards {
            for group in self.logged_groups(shard) {
                let logs: Vec<GroupLog> = shard
                    .directory
                    .cores()
                    .iter()
                    .map(|core| core.lock().log(group).cloned().unwrap_or_default())
                    .collect();
                let refs: Vec<&GroupLog> = logs.iter().collect();
                reports.push((group, checker::check_all(&refs)?));
            }
        }
        Ok(reports)
    }

    /// Committed transactions recorded in the owning shard's replica-0 log
    /// for a group.
    pub fn committed_in_log(&self, group: GroupId) -> usize {
        self.shards[self.shard_of_group(group)]
            .directory
            .core(0)
            .lock()
            .log(group)
            .map(|l| l.committed_transaction_count())
            .unwrap_or(0)
    }

    /// Read one item's currently committed value from the group home's
    /// store (as of the home's read position). Used by equivalence tests
    /// to compare final state against a simulation run.
    pub fn read_committed(&self, group: GroupId, key: KeyId, attr: AttrId) -> Option<String> {
        let core = self.home_core(group);
        let mut core = core.lock();
        let position = core.read_position(group);
        core.read(group, key, attr, position).ok().flatten()
    }

    /// Aggregate counters of every service-hosted commit engine across all
    /// shards, merged from the per-engine sinks at call time.
    pub fn service_commit_metrics(&self) -> RunMetrics {
        self.service_metrics.merged()
    }

    /// Remote reads expired plus store versions reclaimed, summed over
    /// every shard's cores (harnesses fold these into run totals).
    pub fn service_side_counters(&self) -> (u64, u64) {
        let mut expired = 0;
        let mut reclaimed = 0;
        for shard in &self.shards {
            for core in shard.directory.cores() {
                let core = core.lock();
                expired += core.expired_read_count();
                reclaimed += core.reclaimed_version_count();
            }
        }
        (expired, reclaimed)
    }
}

/// Build the runtime's network configuration: one site per (shard,
/// datacenter) pair, with every latency scaled by
/// [`ParallelClusterConfig::rtt_scale`]. Latencies between shards follow
/// the same region-to-region RTTs as within a shard — two workers'
/// Virginia sites are two machines in the same region, not one machine.
fn network_config(config: &ParallelClusterConfig) -> NetworkConfig {
    let scale = |d: SimDuration| -> SimDuration {
        SimDuration::from_micros(((d.as_micros() as f64 * config.rtt_scale) as u64).max(1))
    };
    let mut latency = LatencyMatrix::new(
        scale(SimDuration::from_micros(250)),
        scale(SimDuration::from_millis(45)),
    );
    let regions = config.topology.regions();
    let d = regions.len();
    let sites = config.workers * d;
    for i in 0..sites {
        for j in (i + 1)..sites {
            let rtt = regions[i % d].rtt_to(regions[j % d]);
            latency.set_rtt(SiteId(i as u32), SiteId(j as u32), scale(rtt));
        }
    }
    NetworkConfig {
        latency,
        loss_probability: config.topology.loss_probability,
        jitter: config.topology.jitter,
        // The wall-clock runtime ignores chaos policies (see
        // `simnet::ParallelRuntime`): deterministic chaos runs belong to
        // the simulation, which the equivalence tests compare against.
        chaos: simnet::ChaosConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_wires_one_replica_set_per_worker() {
        let mut cluster = ParallelCluster::build(
            ParallelClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp)
                .with_workers(2)
                .with_rtt_scale(0.5),
        );
        assert_eq!(cluster.num_workers(), 2);
        assert_eq!(cluster.num_datacenters(), 3);
        let g0 = cluster.register_group("g0");
        let g1 = cluster.register_group("g1");
        assert_eq!(cluster.shard_of_group(g0), 0);
        assert_eq!(cluster.shard_of_group(g1), 1);
        // Shard-local service nodes: 3 per worker, ids dense in build order.
        let s0 = cluster.service_for_group(g0);
        let s1 = cluster.service_for_group(g1);
        assert!(s0.0 < 3, "shard 0 services are nodes 0..3");
        assert!((3..6).contains(&s1.0), "shard 1 services are nodes 3..6");
        // Per-replica accessors reach every datacenter of the owning shard.
        assert_eq!(cluster.service_for_group_at(g1, 0), NodeId(3));
        assert_eq!(cluster.service_for_group_at(g1, 2), NodeId(5));
        assert_eq!(cluster.core_for_group_at(g1, 2).lock().replica(), 2);
        assert_eq!(cluster.committed_in_log(g0), 0);
        assert!(cluster.verify().unwrap().is_empty());
        let (expired, reclaimed) = cluster.service_side_counters();
        assert_eq!((expired, reclaimed), (0, 0));
    }

    #[test]
    fn scaled_network_keeps_region_shape() {
        let config = ParallelClusterConfig::new(
            Topology::from_name("VOC").unwrap(),
            CommitProtocol::PaxosCp,
        )
        .with_workers(2)
        .with_rtt_scale(0.1);
        let net = network_config(&config);
        // Within shard 0: Virginia (site 0) to Oregon (site 1) is a 90 ms
        // RTT scaled to 9 ms, i.e. 4.5 ms one way.
        assert_eq!(
            net.latency.one_way(SiteId(0), SiteId(1)),
            SimDuration::from_micros(4_500)
        );
        // Across shards, same region (Virginia of shard 0 and of shard 1):
        // the intra-region 1.5 ms RTT scaled to 150 us, 75 us one way.
        assert_eq!(
            net.latency.one_way(SiteId(0), SiteId(3)),
            SimDuration::from_micros(75)
        );
    }
}
