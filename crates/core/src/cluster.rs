//! Cluster assembly: wire datacenters, services and clients into one
//! deterministic simulation, with failure injection and post-run
//! verification.

use crate::batch::BatchConfig;
use crate::datacenter::RestartReport;
use crate::datacenter::{DatacenterCore, SharedCore};
use crate::directory::Directory;
use crate::metrics::{MetricsHub, RunMetrics};
use crate::msg::Msg;
use crate::service::TransactionService;
use crate::session::ClientConfig;
use crate::topology::Topology;
use paxos::CommitProtocol;
use simnet::{Actor, NodeId, SimDuration, SimTime, Simulation};
use std::collections::BTreeSet;
use std::sync::Arc;
use storage::{DcStorage, DurableConfig, StorageConfig, StorageError};
use walog::checker::{self, CheckReport, Violation};
use walog::{GroupId, GroupLog, SymbolTable};

/// Configuration of a cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Datacenter layout and network behaviour.
    pub topology: Topology,
    /// Commit protocol every client uses (individual clients may override).
    pub protocol: CommitProtocol,
    /// Window/pipeline settings of the commit engines the Transaction
    /// Services host for the submitted commit route.
    pub batch: BatchConfig,
    /// Whether the services run the orphaned-position janitor.
    pub janitor: bool,
    /// Simulation seed (same seed ⇒ identical execution).
    pub seed: u64,
    /// Whether datacenters persist to disk ([`StorageConfig::InMemory`] by
    /// default). In durable mode each replica gets a `dc<replica>`
    /// subdirectory of the configured root.
    pub storage: StorageConfig,
}

impl ClusterConfig {
    /// A cluster with the given topology and protocol, seed 42.
    pub fn new(topology: Topology, protocol: CommitProtocol) -> Self {
        ClusterConfig {
            topology,
            protocol,
            batch: BatchConfig::default(),
            janitor: true,
            seed: 42,
            storage: StorageConfig::InMemory,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the service-hosted commit engines'
    /// window/pipeline settings.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Builder-style switch for the services' orphaned-position janitor.
    pub fn with_janitor(mut self, enabled: bool) -> Self {
        self.janitor = enabled;
        self
    }

    /// Builder-style switch for the durable storage plane.
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// The per-datacenter durable configuration (`dc<replica>` under the
    /// configured root), or `None` in in-memory mode.
    pub fn durable_config(&self, replica: usize) -> Option<DurableConfig> {
        match &self.storage {
            StorageConfig::InMemory => None,
            StorageConfig::Durable(cfg) => {
                let mut dc = cfg.clone();
                dc.dir = cfg.dir.join(format!("dc{replica}"));
                Some(dc)
            }
        }
    }
}

/// A running multi-datacenter cluster: the simulation, the datacenter
/// storage cores and the lookup directory (which also carries the shared
/// symbol table every name is interned through).
pub struct Cluster {
    sim: Simulation<Msg>,
    directory: Arc<Directory>,
    config: ClusterConfig,
    service_nodes: Vec<NodeId>,
    /// One sink per service-hosted commit engine (window occupancy,
    /// pipeline depth, split/stale counters), registered in a
    /// [`MetricsHub`] and merged at run end — the same aggregation shape
    /// the parallel runtime uses, where per-worker sinks must never share
    /// a mutable aggregate.
    service_metrics: MetricsHub,
}

impl Cluster {
    /// Build the cluster: one site, one storage core and one Transaction
    /// Service per datacenter in the topology. Every service hosts a commit
    /// engine for the submitted route, configured from
    /// [`ClusterConfig::batch`] and the cluster's protocol.
    pub fn build(config: ClusterConfig) -> Self {
        let mut sim: Simulation<Msg> =
            Simulation::new(config.topology.network_config(), config.seed);
        let directory = Directory::new();
        let mut service_nodes = Vec::new();
        let service_metrics = MetricsHub::new();
        let mut commit_config = ClientConfig::for_protocol(config.protocol);
        commit_config.message_timeout = config.topology.message_timeout;
        for (replica, region) in config.topology.regions().iter().enumerate() {
            let site = sim.add_site(format!("{region}-{replica}"));
            let core: SharedCore = DatacenterCore::shared(format!("{region}-{replica}"), replica);
            let service = TransactionService::new(
                replica,
                core.clone(),
                directory.clone(),
                config.topology.message_timeout,
            )
            .with_commit_engine(commit_config.clone(), config.batch.clone())
            .with_commit_metrics(service_metrics.register())
            .with_janitor(config.janitor);
            if let Some(durable) = config.durable_config(replica) {
                let storage =
                    DcStorage::open(durable).expect("durable storage directory must be creatable");
                core.lock().attach_storage(storage);
            }
            let node = sim.add_node(site, Box::new(service));
            directory.register_datacenter(node, core);
            service_nodes.push(node);
        }
        Cluster {
            sim,
            directory,
            config,
            service_nodes,
            service_metrics,
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared directory (services, cores, client placement).
    pub fn directory(&self) -> Arc<Directory> {
        self.directory.clone()
    }

    /// The cluster-wide symbol table.
    pub fn symbols(&self) -> Arc<SymbolTable> {
        Arc::clone(self.directory.symbols())
    }

    /// Number of datacenters.
    pub fn num_datacenters(&self) -> usize {
        self.service_nodes.len()
    }

    /// The Transaction Service node of a replica.
    pub fn service_node(&self, replica: usize) -> NodeId {
        self.service_nodes[replica]
    }

    /// The storage core of a replica.
    pub fn core(&self, replica: usize) -> SharedCore {
        self.directory.core(replica)
    }

    /// The default client configuration for this cluster's protocol, using
    /// the topology's message timeout.
    pub fn client_config(&self) -> ClientConfig {
        let mut cfg = ClientConfig::for_protocol(self.config.protocol);
        cfg.message_timeout = self.config.topology.message_timeout;
        cfg
    }

    /// Add a client actor homed in `replica`'s datacenter. The closure
    /// receives the node id the actor will run as (so it can construct its
    /// embedded [`crate::Session`]).
    pub fn add_client<F>(&mut self, replica: usize, make_actor: F) -> NodeId
    where
        F: FnOnce(NodeId) -> Box<dyn Actor<Msg>>,
    {
        let expected = NodeId(self.sim.node_count() as u32);
        self.directory.register_client(expected, replica);
        let actor = make_actor(expected);
        let node = self.sim.add_node(simnet::SiteId(replica as u32), actor);
        assert_eq!(
            node, expected,
            "node ids are assigned densely in registration order"
        );
        node
    }

    /// Direct access to the simulation (running, failure injection, stats).
    pub fn sim(&self) -> &Simulation<Msg> {
        &self.sim
    }

    /// Mutable access to the simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<Msg> {
        &mut self.sim
    }

    /// Run until no events remain (capped to guard against livelock).
    pub fn run_to_completion(&mut self) -> u64 {
        self.sim.run_until_idle_capped(200_000_000)
    }

    /// Run for a span of virtual time.
    pub fn run_for(&mut self, span: SimDuration) -> u64 {
        self.sim.run_for(span)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Take a whole datacenter offline (its service stops answering and all
    /// messages to/from its site are dropped).
    pub fn crash_datacenter(&mut self, replica: usize) {
        self.sim.crash_site(simnet::SiteId(replica as u32));
    }

    /// Bring a datacenter back online.
    pub fn recover_datacenter(&mut self, replica: usize) {
        self.sim.recover_site(simnet::SiteId(replica as u32));
    }

    /// Crash-restart a datacenter's state from disk (durable mode only):
    /// wipe what a process crash loses and rebuild from the latest group
    /// snapshots plus the WAL tail. Asserts the rebuilt state fingerprint
    /// matches the pre-crash one — with persist-before-ack nothing
    /// acknowledged may be lost. Call between
    /// [`Cluster::crash_datacenter`] and [`Cluster::recover_datacenter`].
    ///
    /// Panics when the cluster runs [`StorageConfig::InMemory`].
    pub fn restart_datacenter_from_disk(
        &mut self,
        replica: usize,
    ) -> Result<RestartReport, StorageError> {
        let cfg = self
            .config
            .durable_config(replica)
            .expect("restart_datacenter_from_disk requires StorageConfig::Durable");
        let core = self.directory.core(replica);
        let mut core = core.lock();
        let before = core.state_fingerprint();
        let report = core.restart_from_disk(&cfg)?;
        let after = core.state_fingerprint();
        assert_eq!(
            before, after,
            "restart-from-disk must reproduce the acknowledged state exactly \
             (replica {replica}: {report:?})"
        );
        Ok(report)
    }

    /// Per-replica storage-plane counters (durable mode; `None` entries for
    /// in-memory datacenters).
    pub fn storage_stats(&self) -> Vec<Option<storage::StorageStats>> {
        self.directory
            .cores()
            .iter()
            .map(|core| core.lock().storage_stats())
            .collect()
    }

    /// All transaction groups any datacenter has a log for.
    pub fn groups(&self) -> Vec<GroupId> {
        let mut groups = BTreeSet::new();
        for core in self.directory.cores() {
            for (group, _) in core.lock().logs() {
                groups.insert(group);
            }
        }
        groups.into_iter().collect()
    }

    /// Snapshot every datacenter's log for one group (entries are shared
    /// with the live logs, not deep-copied).
    pub fn replica_logs(&self, group: GroupId) -> Vec<GroupLog> {
        self.directory
            .cores()
            .iter()
            .map(|core| core.lock().log(group).cloned().unwrap_or_default())
            .collect()
    }

    /// Verify the paper's correctness properties over everything the cluster
    /// decided: replica agreement (R1) and one-copy serializability
    /// (Definition 1 / L1–L3) of the merged history, per transaction group.
    /// Returns the merged check report of every group.
    pub fn verify(&self) -> Result<Vec<(GroupId, CheckReport)>, Violation> {
        let mut reports = Vec::new();
        for group in self.groups() {
            let logs = self.replica_logs(group);
            let refs: Vec<&GroupLog> = logs.iter().collect();
            let report = checker::check_all(&refs)?;
            reports.push((group, report));
        }
        Ok(reports)
    }

    /// Total committed transactions recorded in a replica's log for a named
    /// group (used by experiments to cross-check client-side metrics).
    /// Returns 0 for a group name that was never interned.
    pub fn committed_in_log(&self, replica: usize, group: &str) -> usize {
        self.directory
            .symbols()
            .try_group(group)
            .map(|id| self.committed_in_log_id(replica, id))
            .unwrap_or(0)
    }

    /// Total committed transactions recorded in a replica's log for a group.
    pub fn committed_in_log_id(&self, replica: usize, group: GroupId) -> usize {
        self.directory
            .core(replica)
            .lock()
            .log(group)
            .map(|l| l.committed_transaction_count())
            .unwrap_or(0)
    }

    /// Decided non-noop log entries (= Paxos instances that committed work)
    /// in a replica's log for a group. Dividing
    /// [`Cluster::committed_in_log_id`] by this gives the batching/
    /// combination amortization: committed transactions per Paxos instance.
    pub fn decided_instances_id(&self, replica: usize, group: GroupId) -> usize {
        self.directory
            .core(replica)
            .lock()
            .log(group)
            .map(|l| l.iter().filter(|(_, e)| !e.is_noop()).count())
            .unwrap_or(0)
    }

    /// Per-replica counts of remote reads expired by the Transaction
    /// Services (answered `unavailable` after the requester's timeout), in
    /// replica order. Harnesses fold these into
    /// [`RunMetrics::expired_reads`](crate::RunMetrics).
    pub fn expired_read_counts(&self) -> Vec<u64> {
        self.directory
            .cores()
            .iter()
            .map(|core| core.lock().expired_read_count())
            .collect()
    }

    /// Per-replica counts of multi-version store versions reclaimed by the
    /// apply-time GC behind the read-lease watermark, in replica order.
    /// Harnesses fold these into
    /// [`RunMetrics::reclaimed_versions`](crate::RunMetrics).
    pub fn reclaimed_version_counts(&self) -> Vec<u64> {
        self.directory
            .cores()
            .iter()
            .map(|core| core.lock().reclaimed_version_count())
            .collect()
    }

    /// The aggregate counters the service-hosted commit engines recorded
    /// (window occupancy, pipeline depth, batch splits, stale-member
    /// aborts), merged over all replicas. Harnesses fold this into their
    /// run totals after a submitted-route run.
    pub fn service_commit_metrics(&self) -> RunMetrics {
        self.service_metrics.merged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn build_creates_one_service_per_datacenter() {
        let cluster = Cluster::build(ClusterConfig::new(
            Topology::from_name("VOC").unwrap(),
            CommitProtocol::PaxosCp,
        ));
        assert_eq!(cluster.num_datacenters(), 3);
        assert_eq!(cluster.sim().node_count(), 3);
        assert_eq!(cluster.directory().num_replicas(), 3);
        assert_eq!(cluster.groups().len(), 0);
        assert!(cluster.verify().unwrap().is_empty());
        assert_eq!(cluster.committed_in_log(0, "g"), 0);
    }

    #[test]
    fn client_config_follows_protocol_and_timeout() {
        let cluster = Cluster::build(ClusterConfig::new(
            Topology::vvv(),
            CommitProtocol::BasicPaxos,
        ));
        let cfg = cluster.client_config();
        assert_eq!(cfg.protocol, CommitProtocol::BasicPaxos);
        assert_eq!(cfg.message_timeout, SimDuration::from_secs(2));
    }
}
