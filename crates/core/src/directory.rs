//! Cluster directory: how clients and services find each other, the shared
//! symbol table they intern names through, and the per-group leader map
//! that shards log leadership across datacenters.

use crate::datacenter::SharedCore;
use parking_lot::RwLock;
use simnet::NodeId;
use std::collections::HashMap;
use std::sync::Arc;
use walog::{GroupId, LogPosition, SymbolTable};

/// Immutable-after-wiring lookup table shared by every actor in a cluster:
/// which node is the Transaction Service of each replica, which datacenter a
/// client lives in, the shared storage core of each datacenter, the
/// cluster-wide [`SymbolTable`] mapping group/key/attribute names to the
/// interned ids the whole data plane runs on, and the **group leader map**.
///
/// The leader map is what makes the sharded multi-group data plane scale:
/// each transaction group's log has a *home* datacenter that prefers to
/// lead its positions (the paper's leader-per-position fast path, §4.1,
/// seeds from it), so disjoint subsets of groups are led by disjoint
/// datacenters and commit in parallel with no cross-group coordination.
/// By default homes are assigned round-robin by group id; explicit
/// assignments override (e.g. to co-locate a group with the datacenter
/// that generates its traffic).
pub struct Directory {
    symbols: Arc<SymbolTable>,
    service_nodes: RwLock<Vec<NodeId>>,
    cores: RwLock<Vec<SharedCore>>,
    client_replica: RwLock<HashMap<NodeId, usize>>,
    group_homes: RwLock<HashMap<GroupId, usize>>,
}

impl Default for Directory {
    fn default() -> Self {
        Directory {
            symbols: SymbolTable::shared(),
            service_nodes: RwLock::new(Vec::new()),
            cores: RwLock::new(Vec::new()),
            client_replica: RwLock::new(HashMap::new()),
            group_homes: RwLock::new(HashMap::new()),
        }
    }
}

impl Directory {
    /// Create an empty directory, to be populated by the cluster builder.
    pub fn new() -> Arc<Self> {
        Arc::new(Directory::default())
    }

    /// Create an empty directory that interns through an existing symbol
    /// table. Used by the parallel runtime's sharded bring-up: every shard
    /// has its own replica set (and therefore its own directory), but
    /// group/key/attribute names must resolve to the same ids cluster-wide.
    pub fn with_symbols(symbols: Arc<SymbolTable>) -> Arc<Self> {
        Arc::new(Directory {
            symbols,
            service_nodes: RwLock::new(Vec::new()),
            cores: RwLock::new(Vec::new()),
            client_replica: RwLock::new(HashMap::new()),
            group_homes: RwLock::new(HashMap::new()),
        })
    }

    /// The cluster-wide symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// Register a datacenter: its service node and its shared storage core.
    /// Must be called in replica order.
    pub fn register_datacenter(&self, service: NodeId, core: SharedCore) -> usize {
        let mut services = self.service_nodes.write();
        let mut cores = self.cores.write();
        services.push(service);
        cores.push(core);
        services.len() - 1
    }

    /// Register a client node as living in the given replica's datacenter.
    pub fn register_client(&self, client: NodeId, replica: usize) {
        self.client_replica.write().insert(client, replica);
    }

    /// Number of datacenters (replicas).
    pub fn num_replicas(&self) -> usize {
        self.service_nodes.read().len()
    }

    /// The Transaction Service node of a replica.
    pub fn service_node(&self, replica: usize) -> NodeId {
        self.service_nodes.read()[replica]
    }

    /// All Transaction Service nodes, in replica order.
    pub fn service_nodes(&self) -> Vec<NodeId> {
        self.service_nodes.read().clone()
    }

    /// The replica index whose service node is `node`, if any.
    pub fn replica_of_service(&self, node: NodeId) -> Option<usize> {
        self.service_nodes.read().iter().position(|n| *n == node)
    }

    /// The storage core of a replica's datacenter.
    pub fn core(&self, replica: usize) -> SharedCore {
        self.cores.read()[replica].clone()
    }

    /// All storage cores, in replica order.
    pub fn cores(&self) -> Vec<SharedCore> {
        self.cores.read().clone()
    }

    /// The datacenter (replica index) a client node lives in.
    pub fn replica_of_client(&self, client: NodeId) -> Option<usize> {
        self.client_replica.read().get(&client).copied()
    }

    /// The datacenter of a client identified by its raw node id (used to
    /// resolve the leader of a log position from the winning transaction's
    /// client id).
    pub fn replica_of_client_raw(&self, client_raw: u64) -> Option<usize> {
        self.replica_of_client(NodeId(client_raw as u32))
    }

    /// The home datacenter of a transaction group: the replica that prefers
    /// to lead the group's log positions. Explicit assignments (see
    /// [`Directory::set_group_home`]) win; otherwise homes are spread
    /// round-robin by group id so a cluster with `D` datacenters leads `D`
    /// disjoint shards of the group space in parallel.
    pub fn group_home(&self, group: GroupId) -> usize {
        if let Some(home) = self.group_homes.read().get(&group) {
            return *home;
        }
        let replicas = self.num_replicas();
        if replicas == 0 {
            0
        } else {
            group.0 as usize % replicas
        }
    }

    /// Pin a group's home datacenter, overriding the round-robin default.
    pub fn set_group_home(&self, group: GroupId, replica: usize) {
        self.group_homes.write().insert(group, replica);
    }

    /// Pick the datacenter a snapshot (read-only) handle reads `group`
    /// from. Watermark reads can be served by *any* replica — that is the
    /// point of the snapshot read plane — so unlike
    /// [`Directory::group_home`] this spreads read traffic across
    /// datacenters instead of funneling it to the home: the client's own
    /// datacenter (`nearest`) wins whenever it is in the serving set (reads
    /// stay local, zero wide-area hops), otherwise the choice is a
    /// deterministic pseudo-random spread over the serving replicas keyed
    /// by `(group, salt)`. `serving_replicas` bounds the set to the first
    /// `N` datacenters — sessions pass [`Directory::num_replicas`];
    /// scale-out harnesses sweep `1..=D` to measure read throughput per
    /// serving-replica count.
    pub fn snapshot_replica(
        &self,
        group: GroupId,
        nearest: usize,
        salt: u64,
        serving_replicas: usize,
    ) -> usize {
        let replicas = self.num_replicas();
        if replicas == 0 {
            return 0;
        }
        let serving = serving_replicas.clamp(1, replicas);
        if nearest < serving {
            return nearest;
        }
        let mix = (group.0 as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt)
            .wrapping_mul(0xd129_0d3d_a3ac_b56b);
        (mix % serving as u64) as usize
    }

    /// The replica hosting the leader of `position` in `group` (§4.1: the
    /// site local to the client that won the previous position, read from
    /// `home_replica`'s log), defaulting to the group's home in the leader
    /// map when unknown — the very first position, a no-op entry, or a
    /// winner from an unregistered client. The home default is what shards
    /// leadership: each datacenter seeds the fast path for its own subset
    /// of groups. Shared by the single-transaction client and the batching
    /// committer so their routing can never diverge.
    pub fn leader_replica(
        &self,
        home_replica: usize,
        group: GroupId,
        position: LogPosition,
    ) -> usize {
        self.core(home_replica)
            .lock()
            .previous_winner_client(group, position)
            .and_then(|client| self.replica_of_client_raw(client))
            .unwrap_or_else(|| self.group_home(group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DatacenterCore;

    #[test]
    fn registration_and_lookup() {
        let dir = Directory::new();
        let c0 = DatacenterCore::shared("dc0", 0);
        let c1 = DatacenterCore::shared("dc1", 1);
        assert_eq!(dir.register_datacenter(NodeId(0), c0), 0);
        assert_eq!(dir.register_datacenter(NodeId(1), c1), 1);
        dir.register_client(NodeId(5), 1);

        assert_eq!(dir.num_replicas(), 2);
        assert_eq!(dir.service_node(1), NodeId(1));
        assert_eq!(dir.service_nodes(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(dir.replica_of_service(NodeId(1)), Some(1));
        assert_eq!(dir.replica_of_service(NodeId(9)), None);
        assert_eq!(dir.replica_of_client(NodeId(5)), Some(1));
        assert_eq!(dir.replica_of_client(NodeId(6)), None);
        assert_eq!(dir.replica_of_client_raw(5), Some(1));
        assert_eq!(dir.core(0).lock().name(), "dc0");
        assert_eq!(dir.cores().len(), 2);
    }

    #[test]
    fn group_homes_default_round_robin_and_accept_overrides() {
        let dir = Directory::new();
        dir.register_datacenter(NodeId(0), DatacenterCore::shared("dc0", 0));
        dir.register_datacenter(NodeId(1), DatacenterCore::shared("dc1", 1));
        dir.register_datacenter(NodeId(2), DatacenterCore::shared("dc2", 2));
        assert_eq!(dir.group_home(GroupId(0)), 0);
        assert_eq!(dir.group_home(GroupId(1)), 1);
        assert_eq!(dir.group_home(GroupId(2)), 2);
        assert_eq!(dir.group_home(GroupId(3)), 0);
        dir.set_group_home(GroupId(3), 2);
        assert_eq!(dir.group_home(GroupId(3)), 2);
        // A directory with no datacenters yet falls back to replica 0.
        assert_eq!(Directory::new().group_home(GroupId(7)), 0);
    }

    #[test]
    fn snapshot_replica_prefers_nearest_and_spreads_otherwise() {
        let dir = Directory::new();
        for r in 0..3 {
            dir.register_datacenter(
                NodeId(r),
                DatacenterCore::shared(format!("dc{r}"), r as usize),
            );
        }
        // The client's own datacenter serves whenever it is in the set.
        assert_eq!(dir.snapshot_replica(GroupId(5), 2, 7, 3), 2);
        assert_eq!(dir.snapshot_replica(GroupId(5), 0, 7, 3), 0);
        // With the serving set narrowed below the client's replica, the
        // pick falls inside the set and is deterministic.
        let pick = dir.snapshot_replica(GroupId(5), 2, 7, 2);
        assert!(pick < 2);
        assert_eq!(pick, dir.snapshot_replica(GroupId(5), 2, 7, 2));
        // Serving only one replica funnels everyone to it.
        assert_eq!(dir.snapshot_replica(GroupId(5), 2, 7, 1), 0);
        // Varying the salt spreads across the serving set.
        let picks: std::collections::HashSet<usize> = (0..32)
            .map(|salt| dir.snapshot_replica(GroupId(9), 5, salt, 3))
            .collect();
        assert!(picks.len() > 1, "salted picks must spread: {picks:?}");
        assert!(picks.iter().all(|p| *p < 3));
        // An empty directory falls back to replica 0.
        assert_eq!(Directory::new().snapshot_replica(GroupId(1), 0, 0, 3), 0);
    }

    #[test]
    fn symbols_are_shared_cluster_wide() {
        let dir = Directory::new();
        let a = dir.symbols().group("ledger");
        let b = dir.symbols().group("ledger");
        assert_eq!(a, b);
        assert_eq!(dir.symbols().group_name(a).as_deref(), Some("ledger"));
    }
}
