//! Cluster directory: how clients and services find each other, and the
//! shared symbol table they intern names through.

use crate::datacenter::SharedCore;
use parking_lot::RwLock;
use simnet::NodeId;
use std::collections::HashMap;
use std::sync::Arc;
use walog::SymbolTable;

/// Immutable-after-wiring lookup table shared by every actor in a cluster:
/// which node is the Transaction Service of each replica, which datacenter a
/// client lives in, the shared storage core of each datacenter, and the
/// cluster-wide [`SymbolTable`] mapping group/key/attribute names to the
/// interned ids the whole data plane runs on.
pub struct Directory {
    symbols: Arc<SymbolTable>,
    service_nodes: RwLock<Vec<NodeId>>,
    cores: RwLock<Vec<SharedCore>>,
    client_replica: RwLock<HashMap<NodeId, usize>>,
}

impl Default for Directory {
    fn default() -> Self {
        Directory {
            symbols: SymbolTable::shared(),
            service_nodes: RwLock::new(Vec::new()),
            cores: RwLock::new(Vec::new()),
            client_replica: RwLock::new(HashMap::new()),
        }
    }
}

impl Directory {
    /// Create an empty directory, to be populated by the cluster builder.
    pub fn new() -> Arc<Self> {
        Arc::new(Directory::default())
    }

    /// The cluster-wide symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// Register a datacenter: its service node and its shared storage core.
    /// Must be called in replica order.
    pub fn register_datacenter(&self, service: NodeId, core: SharedCore) -> usize {
        let mut services = self.service_nodes.write();
        let mut cores = self.cores.write();
        services.push(service);
        cores.push(core);
        services.len() - 1
    }

    /// Register a client node as living in the given replica's datacenter.
    pub fn register_client(&self, client: NodeId, replica: usize) {
        self.client_replica.write().insert(client, replica);
    }

    /// Number of datacenters (replicas).
    pub fn num_replicas(&self) -> usize {
        self.service_nodes.read().len()
    }

    /// The Transaction Service node of a replica.
    pub fn service_node(&self, replica: usize) -> NodeId {
        self.service_nodes.read()[replica]
    }

    /// All Transaction Service nodes, in replica order.
    pub fn service_nodes(&self) -> Vec<NodeId> {
        self.service_nodes.read().clone()
    }

    /// The replica index whose service node is `node`, if any.
    pub fn replica_of_service(&self, node: NodeId) -> Option<usize> {
        self.service_nodes.read().iter().position(|n| *n == node)
    }

    /// The storage core of a replica's datacenter.
    pub fn core(&self, replica: usize) -> SharedCore {
        self.cores.read()[replica].clone()
    }

    /// All storage cores, in replica order.
    pub fn cores(&self) -> Vec<SharedCore> {
        self.cores.read().clone()
    }

    /// The datacenter (replica index) a client node lives in.
    pub fn replica_of_client(&self, client: NodeId) -> Option<usize> {
        self.client_replica.read().get(&client).copied()
    }

    /// The datacenter of a client identified by its raw node id (used to
    /// resolve the leader of a log position from the winning transaction's
    /// client id).
    pub fn replica_of_client_raw(&self, client_raw: u64) -> Option<usize> {
        self.replica_of_client(NodeId(client_raw as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DatacenterCore;

    #[test]
    fn registration_and_lookup() {
        let dir = Directory::new();
        let c0 = DatacenterCore::shared("dc0", 0);
        let c1 = DatacenterCore::shared("dc1", 1);
        assert_eq!(dir.register_datacenter(NodeId(0), c0), 0);
        assert_eq!(dir.register_datacenter(NodeId(1), c1), 1);
        dir.register_client(NodeId(5), 1);

        assert_eq!(dir.num_replicas(), 2);
        assert_eq!(dir.service_node(1), NodeId(1));
        assert_eq!(dir.service_nodes(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(dir.replica_of_service(NodeId(1)), Some(1));
        assert_eq!(dir.replica_of_service(NodeId(9)), None);
        assert_eq!(dir.replica_of_client(NodeId(5)), Some(1));
        assert_eq!(dir.replica_of_client(NodeId(6)), None);
        assert_eq!(dir.replica_of_client_raw(5), Some(1));
        assert_eq!(dir.core(0).lock().name(), "dc0");
        assert_eq!(dir.cores().len(), 2);
    }

    #[test]
    fn symbols_are_shared_cluster_wide() {
        let dir = Directory::new();
        let a = dir.symbols().group("ledger");
        let b = dir.symbols().group("ledger");
        assert_eq!(a, b);
        assert_eq!(dir.symbols().group_name(a).as_deref(), Some("ledger"));
    }
}
