//! The wire protocol between Transaction Clients and Transaction Services.
//!
//! Everything a client cannot do against its local datacenter's store goes
//! over the simulated network: the Paxos commit protocol, the begin/read
//! fallback used when the local datacenter is unavailable (§2.2: "If a
//! Transaction Client cannot access the Transaction Service within its own
//! datacenter, it can access the Transaction Service in another
//! datacenter"), and the **submitted commit route**: a session that commits
//! with [`crate::session::CommitRoute::Submitted`] ships its finished
//! transaction to the group home's Transaction Service as a
//! [`Msg::CommitRequest`] and receives the decision as a
//! [`Msg::CommitReply`], letting the service-hosted
//! [`crate::GroupCommitter`] batch and pipeline commits from every client
//! of the group.
//!
//! Groups, keys and attributes travel as interned `Copy` ids; only read
//! *values* are owned strings.

use paxos::{AbortReason, PaxosMsg};
use walog::{AttrId, GroupId, KeyId, LogPosition, Transaction, TxnId};

/// All messages exchanged in the system.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A commit-protocol message (client → service or service → client).
    Paxos(PaxosMsg),
    /// Remote `begin`: ask a service for the current read position of a
    /// transaction group.
    BeginRequest {
        /// Client-chosen correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
    },
    /// Answer to [`Msg::BeginRequest`].
    BeginReply {
        /// Echoed correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// Read position the transaction should use.
        read_position: LogPosition,
    },
    /// Remote read: ask a service for the value of one item as of a read
    /// position.
    ReadRequest {
        /// Client-chosen correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// Row key.
        key: KeyId,
        /// Attribute id.
        attr: AttrId,
        /// Read position (A2: every read of the transaction uses this).
        read_position: LogPosition,
    },
    /// Answer to [`Msg::ReadRequest`].
    ReadReply {
        /// Echoed correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// Row key.
        key: KeyId,
        /// Attribute id.
        attr: AttrId,
        /// The value observed, or `None` if the item has never been written
        /// as of the read position.
        value: Option<String>,
        /// True when the service could not serve the read (e.g. it is still
        /// catching up); the client should retry elsewhere.
        unavailable: bool,
    },
    /// Snapshot read: ask *any* replica of the group — not just the home —
    /// for the value of one item at or below a snapshot watermark. Unlike
    /// [`Msg::ReadRequest`], a snapshot read never parks behind a log gap,
    /// never triggers recovery, and never expires: a replica that has not
    /// applied up to `at` answers `unavailable` immediately and the client
    /// retries elsewhere (or at the same replica later).
    SnapshotRead {
        /// Client-chosen correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// Row key.
        key: KeyId,
        /// Attribute id.
        attr: AttrId,
        /// Snapshot watermark: the applied-prefix position captured at
        /// `begin_read_only`; the read observes the newest version ≤ `at`.
        at: LogPosition,
    },
    /// Answer to [`Msg::SnapshotRead`].
    SnapshotReadReply {
        /// Echoed correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// Row key.
        key: KeyId,
        /// Attribute id.
        attr: AttrId,
        /// The value observed at the watermark, or `None` if the item has
        /// never been written at or below it.
        value: Option<String>,
        /// True when this replica has not applied up to the watermark; the
        /// reply carries no value and the client should try another replica.
        unavailable: bool,
    },
    /// Submitted commit route: ship a finished transaction to the group
    /// home's Transaction Service, whose hosted
    /// [`crate::GroupCommitter`] batches it with other clients' commits
    /// into pipelined Paxos-CP instances.
    CommitRequest {
        /// Client-chosen correlation id.
        req_id: u64,
        /// The finished transaction (reads, writes, read position).
        txn: Transaction,
    },
    /// Answer to [`Msg::CommitRequest`]: the per-member fate of the
    /// transaction as decided by the service-hosted commit engine.
    CommitReply {
        /// Echoed correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// The transaction the fate is for.
        txn: TxnId,
        /// Whether the transaction committed.
        committed: bool,
        /// Paxos-CP promotions (lost positions) it went through.
        promotions: u32,
        /// Whether it committed inside a combined (multi-transaction) entry.
        combined: bool,
        /// Prepare/accept rounds executed across all positions.
        rounds: u32,
        /// Abort reason when not committed.
        abort_reason: Option<AbortReason>,
    },
}

impl Msg {
    /// Short tag for logging and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Paxos(p) => p.kind(),
            Msg::BeginRequest { .. } => "begin_request",
            Msg::BeginReply { .. } => "begin_reply",
            Msg::ReadRequest { .. } => "read_request",
            Msg::ReadReply { .. } => "read_reply",
            Msg::SnapshotRead { .. } => "snapshot_read",
            Msg::SnapshotReadReply { .. } => "snapshot_read_reply",
            Msg::CommitRequest { .. } => "commit_request",
            Msg::CommitReply { .. } => "commit_reply",
        }
    }
}

impl From<PaxosMsg> for Msg {
    fn from(msg: PaxosMsg) -> Self {
        Msg::Paxos(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxos::Ballot;

    #[test]
    fn kinds_and_conversion() {
        let m: Msg = PaxosMsg::Prepare {
            group: GroupId(0),
            position: LogPosition(1),
            ballot: Ballot::initial(1),
        }
        .into();
        assert_eq!(m.kind(), "prepare");
        assert_eq!(
            Msg::BeginRequest {
                req_id: 1,
                group: GroupId(0)
            }
            .kind(),
            "begin_request"
        );
        assert_eq!(
            Msg::ReadReply {
                req_id: 1,
                group: GroupId(0),
                key: KeyId(0),
                attr: AttrId(0),
                value: None,
                unavailable: false
            }
            .kind(),
            "read_reply"
        );
    }
}
