//! The wire protocol between Transaction Clients and Transaction Services.
//!
//! Everything a client cannot do against its local datacenter's store goes
//! over the simulated network: the Paxos commit protocol, and the
//! begin/read fallback used when the local datacenter is unavailable
//! (§2.2: "If a Transaction Client cannot access the Transaction Service
//! within its own datacenter, it can access the Transaction Service in
//! another datacenter").
//!
//! Groups, keys and attributes travel as interned `Copy` ids; only read
//! *values* are owned strings.

use paxos::PaxosMsg;
use walog::{AttrId, GroupId, KeyId, LogPosition};

/// All messages exchanged in the system.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A commit-protocol message (client → service or service → client).
    Paxos(PaxosMsg),
    /// Remote `begin`: ask a service for the current read position of a
    /// transaction group.
    BeginRequest {
        /// Client-chosen correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
    },
    /// Answer to [`Msg::BeginRequest`].
    BeginReply {
        /// Echoed correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// Read position the transaction should use.
        read_position: LogPosition,
    },
    /// Remote read: ask a service for the value of one item as of a read
    /// position.
    ReadRequest {
        /// Client-chosen correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// Row key.
        key: KeyId,
        /// Attribute id.
        attr: AttrId,
        /// Read position (A2: every read of the transaction uses this).
        read_position: LogPosition,
    },
    /// Answer to [`Msg::ReadRequest`].
    ReadReply {
        /// Echoed correlation id.
        req_id: u64,
        /// Transaction group.
        group: GroupId,
        /// Row key.
        key: KeyId,
        /// Attribute id.
        attr: AttrId,
        /// The value observed, or `None` if the item has never been written
        /// as of the read position.
        value: Option<String>,
        /// True when the service could not serve the read (e.g. it is still
        /// catching up); the client should retry elsewhere.
        unavailable: bool,
    },
}

impl Msg {
    /// Short tag for logging and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Paxos(p) => p.kind(),
            Msg::BeginRequest { .. } => "begin_request",
            Msg::BeginReply { .. } => "begin_reply",
            Msg::ReadRequest { .. } => "read_request",
            Msg::ReadReply { .. } => "read_reply",
        }
    }
}

impl From<PaxosMsg> for Msg {
    fn from(msg: PaxosMsg) -> Self {
        Msg::Paxos(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxos::Ballot;

    #[test]
    fn kinds_and_conversion() {
        let m: Msg = PaxosMsg::Prepare {
            group: GroupId(0),
            position: LogPosition(1),
            ballot: Ballot::initial(1),
        }
        .into();
        assert_eq!(m.kind(), "prepare");
        assert_eq!(
            Msg::BeginRequest {
                req_id: 1,
                group: GroupId(0)
            }
            .kind(),
            "begin_request"
        );
        assert_eq!(
            Msg::ReadReply {
                req_id: 1,
                group: GroupId(0),
                key: KeyId(0),
                attr: AttrId(0),
                value: None,
                unavailable: false
            }
            .kind(),
            "read_reply"
        );
    }
}
