//! The Transaction Service: one per datacenter (logically — the paper runs
//! many stateless processes; state lives in the store, so one actor per
//! datacenter is behaviourally identical).
//!
//! Responsibilities (§2.2, §4):
//! * answer remote `begin` and `read` requests from Transaction Clients
//!   whose local datacenter is unavailable;
//! * serve **snapshot reads** ([`Msg::SnapshotRead`]): watermark-bounded
//!   reads from read-only sessions, answered synchronously off the local
//!   store at or below the carried position — never parked, never expiring,
//!   never triggering recovery (`unavailable` on a gap, retry elsewhere) —
//!   so *any* replica of a group can serve its read traffic, not just the
//!   group home;
//! * play the Paxos acceptor role (Algorithm 1) for every log position;
//! * install decided entries into the local write-ahead log and apply them
//!   to the local key-value store;
//! * catch up missing log positions by running recovery Paxos instances
//!   proposing no-ops (§4.1, Fault Tolerance and Recovery);
//! * host the **group commit engine** for the submitted commit route: a
//!   [`Msg::CommitRequest`] carrying a finished transaction is submitted to
//!   a lazily-created per-group [`GroupCommitter`], which batches commits
//!   from every client of the group into pipelined Paxos-CP instances; the
//!   per-member fate returns to the requester as a [`Msg::CommitReply`];
//! * run the **orphaned-position janitor**: when the first undecided
//!   position of a group stays orphaned past a timeout — a dead proposer's
//!   majority-voted value that nobody pushes through, which wedges
//!   read-carrying transactions into conflict-abort loops — the service
//!   re-proposes it through a recovery instance, adopting the voted value
//!   (or filling a no-op) so the prefix advances and liveness returns.
//!
//! The service is group-agnostic by construction: every message names its
//! transaction group, per-group state lives in the shared
//! [`DatacenterCore`](crate::DatacenterCore) (one log per group,
//! group-qualified store rows), and a decided `Apply` — whether it carries
//! a single transaction or a whole batched/combined entry — installs in
//! one step and unblocks only its own group's parked reads. Sharding the
//! workload over many groups therefore needs no service-side changes:
//! each datacenter leads its subset of groups (see
//! [`crate::Directory::group_home`]) while acting as acceptor for all.
//!
//! Reads that arrive before the local log caught up are parked in a map
//! keyed by `(group, read position)`: one bucket per position being waited
//! on, duplicate requests (same requester and correlation id) replace their
//! earlier entry instead of accumulating, and a re-attempted read that is
//! *still* gapped after its requester's timeout is answered
//! `unavailable` (retry elsewhere) and evicted — the unbounded-growth
//! failure mode of the original flat list cannot occur, and a read whose
//! data became servable is always served, however late.

use crate::batch::{BatchConfig, GroupCommitter};
use crate::datacenter::SharedCore;
use crate::directory::Directory;
use crate::metrics::RunMetrics;
use crate::msg::Msg;
use crate::session::{ClientAction, ClientConfig};
use parking_lot::Mutex;
use paxos::{
    AbortReason, PaxosMsg, Proposer, ProposerAction, ProposerConfig, ProposerEvent, ReplicaId,
    TimerKind,
};
use simnet::{Actor, Context, NodeId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use walog::{AttrId, GroupId, KeyId, LogPosition, Transaction, TxnId};

/// Timer tag reserved for the janitor tick (recovery/committer tags count
/// up from 1 and can never collide with it).
const JANITOR_TAG: u64 = u64::MAX;

/// High bit mixed into the ballot identity of service-side recovery
/// proposers. The service's hosted committers propose under the service
/// node's own id; a recovery instance racing a committer slot for the same
/// position must not share its ballot identity, or the acceptors (and the
/// two proposers' reply filters) could not tell their rounds apart.
const RECOVERY_BALLOT_BIT: u64 = 1 << 40;

/// Janitor attempts per orphaned position before giving up (a position
/// that cannot decide — e.g. behind a long partition — must not keep the
/// simulation busy forever; reads still trigger recovery on demand).
const JANITOR_MAX_ATTEMPTS: u32 = 5;

/// The remembered outcome of a decided member: everything needed to
/// reconstruct the original [`Msg::CommitReply`] for a retried submission.
#[derive(Clone, Debug)]
struct DecidedFate {
    group: GroupId,
    committed: bool,
    promotions: u32,
    combined: bool,
    rounds: u32,
    abort_reason: Option<AbortReason>,
}

/// A remote read waiting for the local log to catch up.
#[derive(Clone, Debug)]
struct PendingRead {
    from: NodeId,
    req_id: u64,
    group: GroupId,
    key: KeyId,
    attr: AttrId,
    read_position: LogPosition,
    /// When the read was first parked; re-attempts that still cannot be
    /// served after the requester's timeout answer `unavailable` and evict.
    enqueued_at: SimTime,
}

/// The per-datacenter Transaction Service actor.
pub struct TransactionService {
    replica: usize,
    core: SharedCore,
    directory: Arc<Directory>,
    message_timeout: SimDuration,
    backoff_max: SimDuration,
    recovery: BTreeMap<(GroupId, LogPosition), Proposer>,
    /// Timer tag → (recovery instance key, proposer timer token).
    timers: BTreeMap<u64, ((GroupId, LogPosition), u64)>,
    next_tag: u64,
    /// Parked remote reads, bucketed by the (group, read position) they
    /// wait for.
    pending_reads: BTreeMap<(GroupId, LogPosition), Vec<PendingRead>>,
    /// The applied prefix this service last reacted to, per group. The
    /// shared core's prefix can advance *between* Apply messages (a local
    /// proposer's `Learned` installs directly), so the service compares
    /// against what it last saw rather than the per-install delta — every
    /// decide is followed by an Apply broadcast to every service, so no
    /// advance goes unobserved for long.
    flushed_through: BTreeMap<GroupId, LogPosition>,
    /// Protocol settings of the hosted commit engine (promotion cap,
    /// combination, timeouts); the route field is irrelevant here.
    commit_config: ClientConfig,
    /// Window/pipeline settings of the hosted committers.
    batch_config: BatchConfig,
    /// One lazily-created commit engine per group this service has received
    /// `CommitRequest`s for (normally the groups it is the home of).
    committers: BTreeMap<GroupId, GroupCommitter>,
    /// Timer tag → (group, committer-local timer tag).
    committer_timers: BTreeMap<u64, (GroupId, u64)>,
    /// In-flight submitted commits: the member's id → (requester,
    /// correlation id). Duplicate requests for an in-flight id are not
    /// resubmitted — the committer already carries the member and proposing
    /// it twice could commit it twice — but they do re-point the reply at
    /// the latest requester so a retried submission still gets answered.
    commit_requests: BTreeMap<TxnId, (NodeId, u64)>,
    /// Fates of members this service has already decided, so a retry of a
    /// decided transaction (a reply lost to a crash or partition) is
    /// answered with the original outcome instead of being re-proposed.
    decided_fates: BTreeMap<TxnId, DecidedFate>,
    /// Optional sink the hosted committers record window occupancy,
    /// pipeline depth and split/stale counters into.
    commit_metrics: Option<Arc<Mutex<RunMetrics>>>,
    /// Whether the orphaned-position janitor runs.
    janitor_enabled: bool,
    /// How long the first undecided position may stay orphaned before the
    /// janitor re-proposes it.
    janitor_patience: SimDuration,
    /// Whether a janitor tick timer is currently armed.
    janitor_armed: bool,
    /// Groups whose recent traffic (votes cast, out-of-order installs) may
    /// have left an orphaned position; the tick scans only these.
    orphan_hints: BTreeSet<GroupId>,
    /// Per-group watch state: the first undecided position last observed,
    /// when it was first seen there, and re-proposal attempts made for it.
    orphan_watch: BTreeMap<GroupId, (LogPosition, SimTime, u32)>,
}

impl TransactionService {
    /// Create the service for `replica`, backed by the datacenter's shared
    /// storage core. The hosted commit engine defaults to Paxos-CP with the
    /// given message timeout and default batching; override with
    /// [`TransactionService::with_commit_engine`].
    pub fn new(
        replica: usize,
        core: SharedCore,
        directory: Arc<Directory>,
        message_timeout: SimDuration,
    ) -> Self {
        let mut commit_config = ClientConfig::cp();
        commit_config.message_timeout = message_timeout;
        TransactionService {
            replica,
            core,
            directory,
            message_timeout,
            backoff_max: SimDuration::from_millis(100),
            recovery: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_tag: 0,
            pending_reads: BTreeMap::new(),
            flushed_through: BTreeMap::new(),
            commit_config,
            batch_config: BatchConfig::default(),
            committers: BTreeMap::new(),
            committer_timers: BTreeMap::new(),
            commit_requests: BTreeMap::new(),
            decided_fates: BTreeMap::new(),
            commit_metrics: None,
            janitor_enabled: true,
            janitor_patience: message_timeout,
            janitor_armed: false,
            orphan_hints: BTreeSet::new(),
            orphan_watch: BTreeMap::new(),
        }
    }

    /// Configure the hosted commit engine: the commit-protocol settings and
    /// the window/pipeline settings its per-group committers run with.
    pub fn with_commit_engine(mut self, config: ClientConfig, batch: BatchConfig) -> Self {
        self.commit_config = config;
        self.batch_config = batch;
        self
    }

    /// Record the hosted committers' window occupancy, pipeline depth and
    /// split/stale counters into a shared [`RunMetrics`] sink.
    pub fn with_commit_metrics(mut self, metrics: Arc<Mutex<RunMetrics>>) -> Self {
        self.commit_metrics = Some(metrics);
        self
    }

    /// Enable or disable the orphaned-position janitor (enabled by
    /// default; regression tests disable it to demonstrate the wedge).
    pub fn with_janitor(mut self, enabled: bool) -> Self {
        self.janitor_enabled = enabled;
        self
    }

    /// The replica index this service belongs to.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Groups this service currently hosts a commit engine for.
    pub fn hosted_committer_groups(&self) -> Vec<GroupId> {
        self.committers.keys().copied().collect()
    }

    /// Number of remote reads currently parked waiting for log catch-up.
    pub fn pending_read_count(&self) -> usize {
        self.pending_reads.values().map(Vec::len).sum()
    }

    /// Parked reads answered `unavailable` because their requester timed
    /// out. The counter lives in the datacenter's shared [`SharedCore`], so
    /// experiment harnesses can surface it in their run metrics after the
    /// service actor has been consumed by the simulation.
    pub fn expired_read_count(&self) -> u64 {
        self.core.lock().expired_read_count()
    }

    fn node_for_replica(&self, replica: ReplicaId) -> NodeId {
        self.directory.service_node(replica)
    }

    fn handle_paxos(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: PaxosMsg) {
        // Proposer replies may belong to a hosted committer's pipeline slot
        // rather than a recovery instance; the committer filters by slot
        // position and ballot, so offering every reply is safe (recovery
        // proposers carry a distinct ballot identity, see
        // `RECOVERY_BALLOT_BIT`).
        if matches!(
            msg,
            PaxosMsg::PrepareReply { .. }
                | PaxosMsg::AcceptReply { .. }
                | PaxosMsg::LeaderClaimReply { .. }
        ) {
            self.drive_committer_reply(ctx, from, &msg);
        }
        match msg {
            PaxosMsg::Prepare {
                group,
                position,
                ballot,
            } => {
                // Persist-before-ack: a granted promise must hit the WAL
                // before the reply leaves. A failed sync drops the reply —
                // indistinguishable from a crash just before answering,
                // which Paxos already tolerates. Rejections create no new
                // durable state (the promise they reveal already is).
                let (outcome, durable) = {
                    let mut core = self.core.lock();
                    let outcome = core.acceptor().handle_prepare(group, position, ballot);
                    let durable =
                        !outcome.promised || core.persist_promise(group, position, ballot);
                    (outcome, durable)
                };
                if durable {
                    ctx.send(
                        from,
                        Msg::Paxos(PaxosMsg::PrepareReply {
                            group,
                            position,
                            ballot,
                            promised: outcome.promised,
                            next_bal: outcome.next_bal,
                            last_vote: outcome.last_vote,
                        }),
                    );
                }
                // A prepare at an undecided position is exactly the wedge
                // signal — read-carrying clients re-preparing behind an
                // orphaned vote — so let the janitor take a look.
                self.hint_orphan(ctx, group);
            }
            PaxosMsg::Accept {
                group,
                position,
                ballot,
                value,
            } => {
                // Persist-before-ack, as for promises: a cast vote must be
                // durable before the acceptance is acknowledged.
                let (accepted, durable) = {
                    let mut core = self.core.lock();
                    let accepted = core
                        .acceptor()
                        .handle_accept(group, position, ballot, &value);
                    let durable = !accepted || core.persist_vote(group, position, ballot, &value);
                    (accepted, durable)
                };
                if durable {
                    ctx.send(
                        from,
                        Msg::Paxos(PaxosMsg::AcceptReply {
                            group,
                            position,
                            ballot,
                            accepted,
                        }),
                    );
                }
                // A cast vote is what an orphaned position is made of: if
                // its proposer dies before the decide, only the janitor (or
                // a pipelined slot) will push the value through. A rejected
                // accept still signals proposer activity at an undecided
                // position (e.g. a stale retry after a partition healed), so
                // hint regardless — the tick validates orphanhood.
                self.hint_orphan(ctx, group);
            }
            PaxosMsg::Apply {
                group,
                position,
                ballot,
                value,
            } => {
                let outcome = {
                    let mut core = self.core.lock();
                    core.acceptor()
                        .handle_apply(group, position, ballot, &value);
                    core.install_entry(group, position, value)
                };
                // The decide makes any recovery instance for the position
                // redundant; parked reads react only to *prefix advances*
                // (a pipelined decide above a gap cannot unblock anything —
                // entries apply strictly in position order).
                self.recovery.remove(&(group, position));
                // An out-of-order install means a gap below a decided
                // position: the first undecided position may be orphaned.
                if position > outcome.prefix {
                    self.hint_orphan(ctx, group);
                }
                self.react_to_prefix(ctx, group, outcome.prefix);
            }
            PaxosMsg::LeaderClaim { group, position } => {
                let granted = self
                    .core
                    .lock()
                    .leader_claim(group, position, from.0 as u64);
                ctx.send(
                    from,
                    Msg::Paxos(PaxosMsg::LeaderClaimReply {
                        group,
                        position,
                        granted,
                    }),
                );
            }
            PaxosMsg::PrepareReply {
                group,
                position,
                ballot,
                promised,
                next_bal,
                ref last_vote,
            } => {
                let replica = self.directory.replica_of_service(from).unwrap_or(0);
                self.drive_recovery(
                    ctx,
                    (group, position),
                    ProposerEvent::PrepareReply {
                        from: replica,
                        position,
                        ballot,
                        promised,
                        next_bal,
                        last_vote: last_vote.clone(),
                    },
                );
            }
            PaxosMsg::AcceptReply {
                group,
                position,
                ballot,
                accepted,
            } => {
                let replica = self.directory.replica_of_service(from).unwrap_or(0);
                self.drive_recovery(
                    ctx,
                    (group, position),
                    ProposerEvent::AcceptReply {
                        from: replica,
                        position,
                        ballot,
                        accepted,
                    },
                );
            }
            PaxosMsg::LeaderClaimReply { .. } => {
                // Recovery proposers never use the fast path; the hosted
                // committers were offered the reply above.
            }
        }
    }

    /// Offer a proposer reply to the hosted committer of its group (the
    /// committer routes it to the pipeline slot at the carried position).
    fn drive_committer_reply(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: &PaxosMsg) {
        let group = msg.group();
        let Some(committer) = self.committers.get_mut(&group) else {
            // No hosted committer for this group (e.g. a pure direct-route
            // run): skip before cloning the reply.
            return;
        };
        let wrapped = Msg::Paxos(msg.clone());
        let actions = committer.on_message(ctx.now(), from, &wrapped);
        self.apply_committer_actions(ctx, group, actions);
    }

    /// Submitted commit route: feed the finished transaction into the
    /// group's hosted commit engine, creating it on first use.
    fn handle_commit_request(
        &mut self,
        ctx: &mut Context<Msg>,
        from: NodeId,
        req_id: u64,
        txn: Transaction,
    ) {
        let group = txn.group;
        // A retry of an already-decided member is answered with the
        // original fate; re-proposing it could commit it twice.
        if let Some(fate) = self.decided_fates.get(&txn.id) {
            let fate = fate.clone();
            self.note_duplicate_suppressed();
            ctx.send(
                from,
                Msg::CommitReply {
                    req_id,
                    group: fate.group,
                    txn: txn.id,
                    committed: fate.committed,
                    promotions: fate.promotions,
                    combined: fate.combined,
                    rounds: fate.rounds,
                    abort_reason: fate.abort_reason,
                },
            );
            return;
        }
        // A retry that lands here after a group-home migration: this
        // service never saw the original submission, but the replicated log
        // may already carry the member (the old home decided it before
        // failing over). Answer committed rather than double-committing.
        if self.core.lock().is_committed(group, txn.id) {
            self.note_duplicate_suppressed();
            ctx.send(
                from,
                Msg::CommitReply {
                    req_id,
                    group,
                    txn: txn.id,
                    committed: true,
                    promotions: 0,
                    combined: false,
                    rounds: 0,
                    abort_reason: None,
                },
            );
            return;
        }
        // A duplicate of an in-flight member must not be resubmitted — the
        // committer already carries it — but the reply is re-pointed at the
        // latest requester so the retry still gets answered.
        if let Some(slot) = self.commit_requests.get_mut(&txn.id) {
            *slot = (from, req_id);
            self.note_duplicate_suppressed();
            return;
        }
        self.commit_requests.insert(txn.id, (from, req_id));
        if !self.committers.contains_key(&group) {
            let mut committer = GroupCommitter::new(
                ctx.node(),
                self.replica,
                group,
                Arc::clone(&self.directory),
                self.commit_config.clone(),
                self.batch_config.clone(),
            );
            if let Some(sink) = &self.commit_metrics {
                committer = committer.with_metrics(Arc::clone(sink));
            }
            self.committers.insert(group, committer);
        }
        let actions = self
            .committers
            .get_mut(&group)
            .expect("inserted above")
            .submit(ctx.now(), txn);
        self.apply_committer_actions(ctx, group, actions);
    }

    /// Execute a hosted committer's requested effects: wire sends go out as
    /// this service's messages, timers are re-tagged into the service's tag
    /// space, and per-member outcomes return to their requesters as
    /// [`Msg::CommitReply`]s.
    fn apply_committer_actions(
        &mut self,
        ctx: &mut Context<Msg>,
        group: GroupId,
        actions: Vec<ClientAction>,
    ) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    self.next_tag += 1;
                    let service_tag = self.next_tag;
                    self.committer_timers.insert(service_tag, (group, tag));
                    ctx.set_timer(delay, service_tag);
                }
                ClientAction::Finished(result) => {
                    let Some(id) = result.txn else {
                        continue;
                    };
                    // Remember the fate before answering: a retry arriving
                    // after the reply was lost must get the same outcome.
                    // `Unavailable` is not a fate — the member may still be
                    // undecided, and a retry must be allowed to re-drive it.
                    if result.abort_reason != Some(AbortReason::Unavailable) {
                        self.decided_fates.insert(
                            id,
                            DecidedFate {
                                group,
                                committed: result.committed,
                                promotions: result.promotions,
                                combined: result.combined,
                                rounds: result.rounds,
                                abort_reason: result.abort_reason,
                            },
                        );
                    }
                    let Some((requester, req_id)) = self.commit_requests.remove(&id) else {
                        continue;
                    };
                    ctx.send(
                        requester,
                        Msg::CommitReply {
                            req_id,
                            group,
                            txn: id,
                            committed: result.committed,
                            promotions: result.promotions,
                            combined: result.combined,
                            rounds: result.rounds,
                            abort_reason: result.abort_reason,
                        },
                    );
                }
            }
        }
    }

    /// Count a duplicate submission this service absorbed instead of
    /// re-proposing.
    fn note_duplicate_suppressed(&self) {
        if let Some(sink) = &self.commit_metrics {
            sink.lock().duplicate_suppressions += 1;
        }
    }

    /// Note that `group` may have an orphaned position and make sure a
    /// janitor tick is scheduled to look.
    fn hint_orphan(&mut self, ctx: &mut Context<Msg>, group: GroupId) {
        if !self.janitor_enabled {
            return;
        }
        self.orphan_hints.insert(group);
        self.ensure_janitor(ctx);
    }

    fn janitor_period(&self) -> SimDuration {
        SimDuration::from_micros((self.janitor_patience.as_micros() / 2).max(1))
    }

    fn ensure_janitor(&mut self, ctx: &mut Context<Msg>) {
        if !self.janitor_enabled || self.janitor_armed || self.orphan_hints.is_empty() {
            return;
        }
        self.janitor_armed = true;
        ctx.set_timer(self.janitor_period(), JANITOR_TAG);
    }

    /// One janitor pass: for every hinted group, find the first undecided
    /// position; if it is orphaned — decided entries sit above it, or a
    /// majority-voted value lingers at it, and nobody is pushing it through
    /// — and it has stayed put past the patience window, re-propose it via
    /// a recovery instance (which adopts any voted value per the Paxos
    /// safety rule, or fills a no-op).
    fn janitor_tick(&mut self, ctx: &mut Context<Msg>) {
        self.janitor_armed = false;
        let now = ctx.now();
        let hinted: Vec<GroupId> = self.orphan_hints.iter().copied().collect();
        let mut to_recover = Vec::new();
        {
            let core = self.core.lock();
            for group in hinted {
                let prefix = core.read_position(group);
                let candidate = prefix.next();
                let orphaned = !core.has_entry(group, candidate)
                    && (core
                        .log(group)
                        .is_some_and(|log| log.last_decided() > candidate)
                        || core.acceptor().current_vote(group, candidate).is_some());
                if !orphaned {
                    self.orphan_hints.remove(&group);
                    self.orphan_watch.remove(&group);
                    continue;
                }
                let watch = self
                    .orphan_watch
                    .entry(group)
                    .or_insert((candidate, now, 0));
                if watch.0 != candidate {
                    *watch = (candidate, now, 0);
                }
                if watch.2 >= JANITOR_MAX_ATTEMPTS {
                    // Stop burning ticks on a position that cannot decide
                    // (e.g. behind a partition). Drop the watch along with
                    // the hint: when new traffic re-hints the group (say,
                    // after the partition heals), the position gets a fresh
                    // budget of attempts instead of being abandoned forever.
                    self.orphan_hints.remove(&group);
                    self.orphan_watch.remove(&group);
                    continue;
                }
                let committer_competing = self
                    .committers
                    .get(&group)
                    .is_some_and(|c| c.slot_positions().contains(&candidate));
                if now.since(watch.1) >= self.janitor_patience
                    && !committer_competing
                    && !self.recovery.contains_key(&(group, candidate))
                {
                    watch.2 += 1;
                    to_recover.push((group, candidate));
                }
            }
        }
        for (group, position) in to_recover {
            self.start_recovery(ctx, group, position);
        }
        self.ensure_janitor(ctx);
    }

    /// Serve a snapshot read synchronously at its watermark. The snapshot
    /// plane deliberately bypasses the whole pending-read machinery: no
    /// parking, no recovery instances, no expiry. A replica that has not
    /// applied up to the watermark answers `unavailable` immediately and
    /// the client retries elsewhere — snapshot reads are the non-blocking,
    /// non-aborting path, and blocking here would reintroduce exactly the
    /// coupling to the commit plane they exist to avoid. Consistency across
    /// the calls of one snapshot handle comes from the client-held read
    /// lease on the serving replica (see
    /// [`crate::Session::begin_read_only`]), not from anything the service
    /// retains: the core lock is held for the duration of the serve, so
    /// apply-time version GC can never interleave within a single read.
    #[allow(clippy::too_many_arguments)]
    fn handle_snapshot_read(
        &mut self,
        ctx: &mut Context<Msg>,
        from: NodeId,
        req_id: u64,
        group: GroupId,
        key: KeyId,
        attr: AttrId,
        at: LogPosition,
    ) {
        let (value, unavailable) = match self.core.lock().read(group, key, attr, at) {
            Ok(value) => (value, false),
            Err(_gap) => (None, true),
        };
        ctx.send(
            from,
            Msg::SnapshotReadReply {
                req_id,
                group,
                key,
                attr,
                value,
                unavailable,
            },
        );
    }

    fn handle_begin(&mut self, ctx: &mut Context<Msg>, from: NodeId, req_id: u64, group: GroupId) {
        let read_position = self.core.lock().read_position(group);
        ctx.send(
            from,
            Msg::BeginReply {
                req_id,
                group,
                read_position,
            },
        );
    }

    fn handle_read(&mut self, ctx: &mut Context<Msg>, pending: PendingRead) {
        let result = self.core.lock().read(
            pending.group,
            pending.key,
            pending.attr,
            pending.read_position,
        );
        match result {
            Ok(value) => {
                ctx.send(
                    pending.from,
                    Msg::ReadReply {
                        req_id: pending.req_id,
                        group: pending.group,
                        key: pending.key,
                        attr: pending.attr,
                        value,
                        unavailable: false,
                    },
                );
            }
            Err(gap) => {
                // Still gapped. If the requester has been waiting longer
                // than the message timeout it has given up client-side:
                // answer `unavailable` (so a patient requester can retry
                // elsewhere) and evict instead of re-parking forever. A
                // fresh request is never expired — expiry only applies to
                // re-attempts of parked reads, after serving was tried.
                if ctx.now().since(pending.enqueued_at) > self.message_timeout {
                    self.expire_read(ctx, pending);
                    return;
                }
                // Start a recovery instance for every missing position, then
                // park the read until the log catches up.
                for position in gap.missing {
                    self.start_recovery(ctx, pending.group, position);
                }
                self.park_read(pending);
            }
        }
    }

    /// Give up on a read whose requester's patience ran out: answer
    /// `unavailable` (so a patient requester can retry elsewhere) and
    /// count it. The caller has already removed it from the parked map.
    fn expire_read(&mut self, ctx: &mut Context<Msg>, read: PendingRead) {
        self.core.lock().note_expired_read();
        ctx.send(
            read.from,
            Msg::ReadReply {
                req_id: read.req_id,
                group: read.group,
                key: read.key,
                attr: read.attr,
                value: None,
                unavailable: true,
            },
        );
    }

    /// Park a read in its `(group, read position)` bucket, replacing any
    /// earlier entry for the same requester and correlation id (a retried
    /// request must not accumulate). A newly parked read leases its
    /// position in the datacenter core so version GC cannot reclaim what
    /// it will need once servable.
    fn park_read(&mut self, pending: PendingRead) {
        let bucket = self
            .pending_reads
            .entry((pending.group, pending.read_position))
            .or_default();
        if let Some(existing) = bucket
            .iter_mut()
            .find(|p| p.from == pending.from && p.req_id == pending.req_id)
        {
            *existing = pending;
        } else {
            self.core
                .lock()
                .begin_read_lease(pending.group, pending.read_position);
            bucket.push(pending);
        }
    }

    /// Remove one bucket from the parked-read map, releasing its leases.
    /// Reads the caller re-parks (still gapped, within their requester's
    /// patience) take a fresh lease in [`TransactionService::park_read`].
    fn unpark_bucket(&mut self, key: (GroupId, LogPosition)) -> Vec<PendingRead> {
        let bucket = self.pending_reads.remove(&key).unwrap_or_default();
        if !bucket.is_empty() {
            let mut core = self.core.lock();
            for _ in &bucket {
                core.end_read_lease(key.0, key.1);
            }
        }
        bucket
    }

    /// Re-attempt every parked read (all groups): used after an outage,
    /// when anything might have changed. Serving is always attempted
    /// first; only reads that are *still* gapped are expired or re-parked
    /// (see [`TransactionService::handle_read`]).
    fn flush_pending_reads(&mut self, ctx: &mut Context<Msg>) {
        let keys: Vec<(GroupId, LogPosition)> = self.pending_reads.keys().copied().collect();
        for key in keys {
            for read in self.unpark_bucket(key) {
                self.handle_read(ctx, read);
            }
        }
    }

    /// React iff `prefix` moved past what this service last flushed at —
    /// whether this install advanced it or a local proposer's `Learned`
    /// already had. Serving is advance-driven, but overdue reads are
    /// expired on every decide of the group regardless: a wedged prefix
    /// (stalled recovery below pipelined decides) must not leave a
    /// requester waiting forever, nor its lease pinning the GC watermark.
    fn react_to_prefix(&mut self, ctx: &mut Context<Msg>, group: GroupId, prefix: LogPosition) {
        let seen = self
            .flushed_through
            .get(&group)
            .copied()
            .unwrap_or(LogPosition::ZERO);
        if prefix > seen {
            self.flushed_through.insert(group, prefix);
            self.on_prefix_advance(ctx, group, prefix);
        } else {
            self.expire_overdue_gapped(ctx, group, prefix);
        }
    }

    /// The group's applied prefix advanced (a pipeline completion at the
    /// head): serve every parked read the new prefix covers, and evict
    /// overdue reads that are still gapped above it. Reads of other groups
    /// and reads parked above a prefix that did not move are untouched —
    /// the service loop is driven by completions, not by per-flush polling.
    fn on_prefix_advance(&mut self, ctx: &mut Context<Msg>, group: GroupId, prefix: LogPosition) {
        let (servable, gapped): (Vec<_>, Vec<_>) = self
            .pending_reads
            .keys()
            .filter(|(g, _)| *g == group)
            .copied()
            .partition(|(_, position)| *position <= prefix);
        for key in servable {
            for read in self.unpark_bucket(key) {
                self.handle_read(ctx, read);
            }
        }
        // Reads still gapped whose requester has given up are answered
        // `unavailable` and evicted; the rest keep waiting (and keep their
        // leases).
        for key in gapped {
            self.expire_overdue_in_bucket(ctx, key);
        }
    }

    /// Evict the overdue reads of every still-gapped bucket of `group`
    /// (parked above `prefix`): answer `unavailable`, release the lease.
    /// Patient reads are re-parked untouched.
    fn expire_overdue_gapped(
        &mut self,
        ctx: &mut Context<Msg>,
        group: GroupId,
        prefix: LogPosition,
    ) {
        let gapped: Vec<(GroupId, LogPosition)> = self
            .pending_reads
            .keys()
            .filter(|(g, position)| *g == group && *position > prefix)
            .copied()
            .collect();
        for key in gapped {
            self.expire_overdue_in_bucket(ctx, key);
        }
    }

    fn expire_overdue_in_bucket(&mut self, ctx: &mut Context<Msg>, key: (GroupId, LogPosition)) {
        let bucket = self.unpark_bucket(key);
        for read in bucket {
            if ctx.now().since(read.enqueued_at) > self.message_timeout {
                self.expire_read(ctx, read);
            } else {
                self.park_read(read);
            }
        }
    }

    fn start_recovery(&mut self, ctx: &mut Context<Msg>, group: GroupId, position: LogPosition) {
        if self.recovery.contains_key(&(group, position)) {
            return;
        }
        if self.core.lock().has_entry(group, position) {
            return;
        }
        let cfg = ProposerConfig::basic(self.directory.num_replicas());
        // Recovery ballots carry a marked identity so they can never alias
        // a hosted committer's ballots (both run on this service's node).
        let proposer_id = ctx.node().0 as u64 | RECOVERY_BALLOT_BIT;
        let mut proposer = Proposer::new_recovery(cfg, group, proposer_id, position);
        let actions = proposer.start();
        self.recovery.insert((group, position), proposer);
        self.apply_recovery_actions(ctx, (group, position), actions);
    }

    fn drive_recovery(
        &mut self,
        ctx: &mut Context<Msg>,
        key: (GroupId, LogPosition),
        event: ProposerEvent,
    ) {
        let Some(proposer) = self.recovery.get_mut(&key) else {
            return;
        };
        let actions = proposer.on_event(event);
        self.apply_recovery_actions(ctx, key, actions);
    }

    fn apply_recovery_actions(
        &mut self,
        ctx: &mut Context<Msg>,
        key: (GroupId, LogPosition),
        actions: Vec<ProposerAction>,
    ) {
        for action in actions {
            match action {
                ProposerAction::Broadcast(msg) => {
                    for replica in 0..self.directory.num_replicas() {
                        ctx.send(self.node_for_replica(replica), Msg::Paxos(msg.clone()));
                    }
                }
                ProposerAction::SendToLeader(msg) => {
                    // Recovery never uses the fast path, but route sensibly
                    // anyway: ask our own datacenter.
                    ctx.send(self.node_for_replica(self.replica), Msg::Paxos(msg));
                }
                ProposerAction::ArmTimer { token, kind } => {
                    let delay = match kind {
                        TimerKind::ReplyTimeout => self.message_timeout,
                        TimerKind::Backoff => ctx.rand_backoff(self.backoff_max),
                        TimerKind::Gather => SimDuration::from_millis(50),
                    };
                    self.next_tag += 1;
                    let tag = self.next_tag;
                    self.timers.insert(tag, (key, token));
                    ctx.set_timer(delay, tag);
                }
                ProposerAction::Learned { position, entry } => {
                    self.core.lock().install_entry(key.0, position, entry);
                }
                ProposerAction::Finished(_) => {
                    self.recovery.remove(&key);
                    // The recovery instance learned (and installed) its
                    // position; react to however far the prefix reaches now.
                    let prefix = self.core.lock().read_position(key.0);
                    self.react_to_prefix(ctx, key.0, prefix);
                }
            }
        }
    }
}

impl Actor<Msg> for TransactionService {
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Paxos(p) => self.handle_paxos(ctx, from, p),
            Msg::BeginRequest { req_id, group } => self.handle_begin(ctx, from, req_id, group),
            Msg::ReadRequest {
                req_id,
                group,
                key,
                attr,
                read_position,
            } => {
                let pending = PendingRead {
                    from,
                    req_id,
                    group,
                    key,
                    attr,
                    read_position,
                    enqueued_at: ctx.now(),
                };
                self.handle_read(ctx, pending);
            }
            Msg::SnapshotRead {
                req_id,
                group,
                key,
                attr,
                at,
            } => {
                self.handle_snapshot_read(ctx, from, req_id, group, key, attr, at);
            }
            Msg::CommitRequest { req_id, txn } => {
                self.handle_commit_request(ctx, from, req_id, txn);
            }
            Msg::BeginReply { .. }
            | Msg::ReadReply { .. }
            | Msg::SnapshotReadReply { .. }
            | Msg::CommitReply { .. } => {
                // Services never issue begin/read/commit requests; stray
                // replies are ignored.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == JANITOR_TAG {
            self.janitor_tick(ctx);
            return;
        }
        if let Some((group, committer_tag)) = self.committer_timers.remove(&tag) {
            let actions = match self.committers.get_mut(&group) {
                Some(committer) => committer.on_timer(ctx.now(), committer_tag),
                None => return,
            };
            self.apply_committer_actions(ctx, group, actions);
            return;
        }
        if let Some((key, token)) = self.timers.remove(&tag) {
            self.drive_recovery(ctx, key, ProposerEvent::Timer { token });
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>) {
        // After an outage the service proactively catches up: it asks itself
        // for the read position (a no-op) and relies on incoming traffic plus
        // recovery instances started by reads to fill gaps. Pending reads
        // accumulated before the crash are re-examined.
        self.flush_pending_reads(ctx);
        // Groups whose home migrated away during the outage: every client
        // with a member still waiting in the local window has long timed
        // out and re-submitted to the new home (pending means unanswered),
        // so flushing the stale copies below would race the new home's
        // instance and could commit a transaction at two positions. Drop
        // them; the new home owns the reply.
        let moved: Vec<GroupId> = self
            .committers
            .keys()
            .filter(|group| self.directory.group_home(**group) != self.replica)
            .copied()
            .collect();
        for group in moved {
            if let Some(committer) = self.committers.get_mut(&group) {
                for id in committer.drop_pending_window() {
                    self.commit_requests.remove(&id);
                }
            }
        }
        // Timers that fired during the outage were suppressed, which would
        // leave committer slots and recovery proposers wedged forever.
        // Synthesize the fires now (the maps iterate in tag order, which
        // keeps replay deterministic). Firing a not-yet-due timer early only
        // triggers a spurious-but-safe timeout round; a later real fire
        // finds its map entry gone and is a no-op.
        for (_, (group, committer_tag)) in std::mem::take(&mut self.committer_timers) {
            let actions = match self.committers.get_mut(&group) {
                Some(committer) => committer.on_timer(ctx.now(), committer_tag),
                None => continue,
            };
            self.apply_committer_actions(ctx, group, actions);
        }
        for (_, (key, token)) in std::mem::take(&mut self.timers) {
            self.drive_recovery(ctx, key, ProposerEvent::Timer { token });
        }
        // The janitor tick may also have been suppressed; re-arm it.
        self.janitor_armed = false;
        self.ensure_janitor(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DatacenterCore;
    use paxos::Ballot;
    use simnet::{NetworkConfig, Simulation};
    use std::sync::Arc as StdArc;
    use walog::{ItemRef, LogEntry, Transaction, TxnId};

    const GROUP: GroupId = GroupId(0);
    const ROW: KeyId = KeyId(0);
    const A: AttrId = AttrId(0);

    /// A scripted prober actor that sends a batch of messages at start and
    /// records everything it receives.
    struct Prober {
        to_send: Vec<(NodeId, Msg)>,
        received: StdArc<parking_lot::Mutex<Vec<Msg>>>,
    }

    impl Actor<Msg> for Prober {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            for (to, msg) in self.to_send.drain(..) {
                ctx.send(to, msg);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            self.received.lock().push(msg);
        }
    }

    fn single_dc_harness(
        to_send: impl Fn(NodeId) -> Vec<(NodeId, Msg)>,
    ) -> (
        Simulation<Msg>,
        SharedCore,
        StdArc<parking_lot::Mutex<Vec<Msg>>>,
    ) {
        let mut sim: Simulation<Msg> =
            Simulation::new(NetworkConfig::uniform(SimDuration::from_millis(1)), 1);
        let site = sim.add_site("dc0");
        let core = DatacenterCore::shared("dc0", 0);
        let directory = Directory::new();
        let service = TransactionService::new(
            0,
            core.clone(),
            directory.clone(),
            SimDuration::from_secs(2),
        );
        let service_node = sim.add_node(site, Box::new(service));
        directory.register_datacenter(service_node, core.clone());
        let received = StdArc::new(parking_lot::Mutex::new(Vec::new()));
        let prober = Prober {
            to_send: to_send(service_node),
            received: received.clone(),
        };
        let prober_node = sim.add_node(site, Box::new(prober));
        directory.register_client(prober_node, 0);
        (sim, core, received)
    }

    fn entry(seq: u64, attr: AttrId, value: &str) -> Arc<LogEntry> {
        Arc::new(LogEntry::single(
            Transaction::builder(TxnId::new(1, seq), GROUP, LogPosition(0))
                .write(ItemRef::new(ROW, attr), value)
                .build(),
        ))
    }

    #[test]
    fn service_answers_begin_requests_with_read_position() {
        let (mut sim, core, received) = single_dc_harness(|svc| {
            vec![(
                svc,
                Msg::BeginRequest {
                    req_id: 1,
                    group: GROUP,
                },
            )]
        });
        core.lock()
            .install_entry(GROUP, LogPosition(1), entry(1, A, "1"));
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert_eq!(got.len(), 1);
        match &got[0] {
            Msg::BeginReply { read_position, .. } => assert_eq!(*read_position, LogPosition(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn service_acts_as_acceptor_for_prepare_and_accept() {
        let ballot = Ballot::initial(42);
        let value = entry(5, A, "v");
        let value_clone = Arc::clone(&value);
        let (mut sim, core, received) = single_dc_harness(move |svc| {
            vec![
                (
                    svc,
                    Msg::Paxos(PaxosMsg::Prepare {
                        group: GROUP,
                        position: LogPosition(1),
                        ballot,
                    }),
                ),
                (
                    svc,
                    Msg::Paxos(PaxosMsg::Accept {
                        group: GROUP,
                        position: LogPosition(1),
                        ballot,
                        value: Arc::clone(&value_clone),
                    }),
                ),
                (
                    svc,
                    Msg::Paxos(PaxosMsg::Apply {
                        group: GROUP,
                        position: LogPosition(1),
                        ballot,
                        value: Arc::clone(&value_clone),
                    }),
                ),
            ]
        });
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert!(got
            .iter()
            .any(|m| matches!(m, Msg::Paxos(PaxosMsg::PrepareReply { promised: true, .. }))));
        assert!(got
            .iter()
            .any(|m| matches!(m, Msg::Paxos(PaxosMsg::AcceptReply { accepted: true, .. }))));
        // The apply installed the entry and applied it to the store.
        assert!(core.lock().has_entry(GROUP, LogPosition(1)));
        assert_eq!(
            core.lock().read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("v".to_string())
        );
    }

    #[test]
    fn remote_read_is_served_at_the_requested_position() {
        let (mut sim, core, received) = single_dc_harness(|svc| {
            vec![(
                svc,
                Msg::ReadRequest {
                    req_id: 9,
                    group: GROUP,
                    key: ROW,
                    attr: A,
                    read_position: LogPosition(1),
                },
            )]
        });
        core.lock()
            .install_entry(GROUP, LogPosition(1), entry(1, A, "42"));
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert_eq!(got.len(), 1);
        match &got[0] {
            Msg::ReadReply {
                req_id,
                value,
                unavailable,
                ..
            } => {
                assert_eq!(*req_id, 9);
                assert_eq!(value.as_deref(), Some("42"));
                assert!(!unavailable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_read_is_served_at_the_watermark() {
        // Two versions of the row exist (positions 1 and 2); a snapshot
        // read at watermark 1 must observe position 1's value even though
        // the store has moved on.
        let (mut sim, core, received) = single_dc_harness(|svc| {
            vec![(
                svc,
                Msg::SnapshotRead {
                    req_id: 11,
                    group: GROUP,
                    key: ROW,
                    attr: A,
                    at: LogPosition(1),
                },
            )]
        });
        {
            let mut core = core.lock();
            core.install_entry(GROUP, LogPosition(1), entry(1, A, "old"));
            core.install_entry(GROUP, LogPosition(2), entry(2, A, "new"));
        }
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert_eq!(got.len(), 1);
        match &got[0] {
            Msg::SnapshotReadReply {
                req_id,
                value,
                unavailable,
                ..
            } => {
                assert_eq!(*req_id, 11);
                assert_eq!(value.as_deref(), Some("old"));
                assert!(!unavailable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gapped_snapshot_read_answers_unavailable_immediately_without_recovery() {
        // The peer is crashed so any recovery instance would stall forever;
        // a snapshot read above the applied prefix must NOT park or start
        // recovery — it answers `unavailable` straight away so the client
        // can retry at another replica.
        let (mut sim, _service_node, received) =
            stalled_recovery_harness(vec![Msg::SnapshotRead {
                req_id: 13,
                group: GROUP,
                key: ROW,
                attr: A,
                at: LogPosition(1),
            }]);
        sim.run_for(SimDuration::from_millis(100));
        let got = received.lock();
        assert_eq!(
            got.len(),
            1,
            "gapped snapshot read must be answered immediately, got {got:?}"
        );
        assert!(matches!(
            &got[0],
            Msg::SnapshotReadReply {
                req_id: 13,
                value: None,
                unavailable: true,
                ..
            }
        ));
    }

    #[test]
    fn commit_request_is_batched_and_answered_with_the_member_fate() {
        // Two clients' transactions arrive as CommitRequests; the hosted
        // committer windows them into one instance (single replica: its own
        // acceptor is the majority) and answers each requester.
        let txn_a = Transaction::builder(TxnId::new(9, 1), GROUP, LogPosition(0))
            .write(ItemRef::new(ROW, A), "a")
            .build();
        let txn_b = Transaction::builder(TxnId::new(9, 2), GROUP, LogPosition(0))
            .write(ItemRef::new(ROW, AttrId(1)), "b")
            .build();
        let (mut sim, core, received) = single_dc_harness(move |svc| {
            vec![
                (
                    svc,
                    Msg::CommitRequest {
                        req_id: 1,
                        txn: txn_a.clone(),
                    },
                ),
                (
                    svc,
                    Msg::CommitRequest {
                        req_id: 2,
                        txn: txn_b.clone(),
                    },
                ),
            ]
        });
        sim.run_until_idle_capped(100_000);
        let got = received.lock();
        let replies: Vec<(u64, bool)> = got
            .iter()
            .filter_map(|m| match m {
                Msg::CommitReply {
                    req_id, committed, ..
                } => Some((*req_id, *committed)),
                _ => None,
            })
            .collect();
        assert_eq!(replies.len(), 2, "every request gets one reply: {got:?}");
        assert!(replies.iter().all(|(_, committed)| *committed));
        drop(got);
        // Both members rode one combined entry at position 1.
        let core = core.lock();
        let log = core.log(GROUP).expect("group log");
        assert_eq!(log.get(LogPosition(1)).unwrap().txn_ids().len(), 2);
        assert_eq!(core.read_position(GROUP), LogPosition(1));
    }

    #[test]
    fn duplicate_commit_requests_are_not_resubmitted() {
        let txn = Transaction::builder(TxnId::new(9, 1), GROUP, LogPosition(0))
            .write(ItemRef::new(ROW, A), "a")
            .build();
        let (mut sim, core, received) = single_dc_harness(move |svc| {
            vec![
                (
                    svc,
                    Msg::CommitRequest {
                        req_id: 1,
                        txn: txn.clone(),
                    },
                ),
                (
                    svc,
                    Msg::CommitRequest {
                        req_id: 1,
                        txn: txn.clone(),
                    },
                ),
            ]
        });
        sim.run_until_idle_capped(100_000);
        let replies = received
            .lock()
            .iter()
            .filter(|m| matches!(m, Msg::CommitReply { .. }))
            .count();
        assert_eq!(replies, 1, "the duplicate must be ignored, not re-proposed");
        let core = core.lock();
        assert_eq!(
            core.log(GROUP).unwrap().committed_transaction_count(),
            1,
            "the member must commit exactly once"
        );
    }

    #[test]
    fn retries_of_decided_transactions_get_the_original_fate() {
        // Regression: a retry of an already-decided member (its reply was
        // lost to a crash or partition) used to be silently dropped — the
        // in-flight map entry was gone — leaving the client to time out as
        // `Unavailable` even though the transaction had committed. The
        // service now remembers decided fates and answers retries with the
        // original outcome, without re-proposing.
        struct RetryProber {
            service: NodeId,
            txn: Transaction,
            received: StdArc<parking_lot::Mutex<Vec<Msg>>>,
        }
        impl Actor<Msg> for RetryProber {
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                ctx.send(
                    self.service,
                    Msg::CommitRequest {
                        req_id: 1,
                        txn: self.txn.clone(),
                    },
                );
                // Retry well after the decision, as a resubmitting session
                // whose first reply was lost would.
                ctx.set_timer(SimDuration::from_secs(1), 7);
            }
            fn on_timer(&mut self, ctx: &mut Context<Msg>, _tag: u64) {
                ctx.send(
                    self.service,
                    Msg::CommitRequest {
                        req_id: 2,
                        txn: self.txn.clone(),
                    },
                );
            }
            fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
                self.received.lock().push(msg);
            }
        }
        let mut sim: Simulation<Msg> =
            Simulation::new(NetworkConfig::uniform(SimDuration::from_millis(1)), 1);
        let site = sim.add_site("dc0");
        let core = DatacenterCore::shared("dc0", 0);
        let directory = Directory::new();
        let service = TransactionService::new(
            0,
            core.clone(),
            directory.clone(),
            SimDuration::from_secs(2),
        );
        let service_node = sim.add_node(site, Box::new(service));
        directory.register_datacenter(service_node, core.clone());
        let received = StdArc::new(parking_lot::Mutex::new(Vec::new()));
        let txn = Transaction::builder(TxnId::new(9, 1), GROUP, LogPosition(0))
            .write(ItemRef::new(ROW, A), "a")
            .build();
        let prober_node = sim.add_node(
            site,
            Box::new(RetryProber {
                service: service_node,
                txn,
                received: received.clone(),
            }),
        );
        directory.register_client(prober_node, 0);
        sim.run_until_idle_capped(100_000);
        let got = received.lock();
        let replies: Vec<(u64, bool)> = got
            .iter()
            .filter_map(|m| match m {
                Msg::CommitReply {
                    req_id, committed, ..
                } => Some((*req_id, *committed)),
                _ => None,
            })
            .collect();
        assert_eq!(
            replies,
            vec![(1, true), (2, true)],
            "the retry must be answered with the original committed fate: {got:?}"
        );
        drop(got);
        let core = core.lock();
        assert_eq!(
            core.log(GROUP).unwrap().committed_transaction_count(),
            1,
            "the retry must not commit the member a second time"
        );
    }

    #[test]
    fn leader_claim_granted_once_per_position() {
        let (mut sim, _core, received) = single_dc_harness(|svc| {
            vec![(
                svc,
                Msg::Paxos(PaxosMsg::LeaderClaim {
                    group: GROUP,
                    position: LogPosition(1),
                }),
            )]
        });
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert!(matches!(
            got[0],
            Msg::Paxos(PaxosMsg::LeaderClaimReply { granted: true, .. })
        ));
    }

    #[test]
    fn read_with_log_gap_triggers_recovery_and_eventually_answers() {
        // The service is missing position 1 but a read at position 1 arrives.
        // With a single replica, the recovery instance reaches a majority (1
        // of 1) by talking to itself and decides a no-op, after which the
        // read is answered (with no value, since only a no-op committed).
        let (mut sim, core, received) = single_dc_harness(|svc| {
            vec![(
                svc,
                Msg::ReadRequest {
                    req_id: 3,
                    group: GROUP,
                    key: ROW,
                    attr: A,
                    read_position: LogPosition(1),
                },
            )]
        });
        sim.run_until_idle_capped(10_000);
        let got = received.lock();
        assert_eq!(got.len(), 1, "read must eventually be answered");
        match &got[0] {
            Msg::ReadReply {
                value, unavailable, ..
            } => {
                assert_eq!(value, &None);
                assert!(!unavailable);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The gap was filled with a no-op entry.
        let core = core.lock();
        let log = core.log(GROUP).unwrap();
        assert!(log.get(LogPosition(1)).unwrap().is_noop());
    }

    /// Two-service harness where the peer datacenter is crashed, so recovery
    /// (majority 2) cannot finish and parked reads stay parked until an
    /// Apply arrives from outside.
    fn stalled_recovery_harness(
        reads: Vec<Msg>,
    ) -> (
        Simulation<Msg>,
        NodeId,
        StdArc<parking_lot::Mutex<Vec<Msg>>>,
    ) {
        let mut sim: Simulation<Msg> =
            Simulation::new(NetworkConfig::uniform(SimDuration::from_millis(1)), 1);
        let directory = Directory::new();
        let mut nodes = Vec::new();
        for replica in 0..2 {
            let site = sim.add_site(format!("dc{replica}"));
            let core = DatacenterCore::shared(format!("dc{replica}"), replica);
            let service = TransactionService::new(
                replica,
                core.clone(),
                directory.clone(),
                SimDuration::from_secs(2),
            );
            let node = sim.add_node(site, Box::new(service));
            directory.register_datacenter(node, core);
            nodes.push(node);
        }
        // Peer down: recovery instances can never reach a majority.
        sim.crash_node(nodes[1]);
        let received = StdArc::new(parking_lot::Mutex::new(Vec::new()));
        let target = nodes[0];
        let prober = Prober {
            to_send: reads.into_iter().map(|m| (target, m)).collect(),
            received: received.clone(),
        };
        let site0 = sim.network().site_of(target);
        let prober_node = sim.add_node(site0, Box::new(prober));
        directory.register_client(prober_node, 0);
        (sim, target, received)
    }

    fn read_request_at(req_id: u64, position: u64) -> Msg {
        Msg::ReadRequest {
            req_id,
            group: GROUP,
            key: ROW,
            attr: A,
            read_position: LogPosition(position),
        }
    }

    fn read_request(req_id: u64) -> Msg {
        read_request_at(req_id, 1)
    }

    /// Decide position 1 of GROUP at service_node via an injected Apply.
    fn apply_position_one(sim: &mut Simulation<Msg>, service_node: NodeId, value: &str) {
        let helper = Prober {
            to_send: vec![(
                service_node,
                Msg::Paxos(PaxosMsg::Apply {
                    group: GROUP,
                    position: LogPosition(1),
                    ballot: Ballot::initial(9),
                    value: entry(1, A, value),
                }),
            )],
            received: StdArc::new(parking_lot::Mutex::new(Vec::new())),
        };
        let site = sim.network().site_of(service_node);
        sim.add_node(site, Box::new(helper));
    }

    #[test]
    fn parked_read_that_becomes_servable_is_served_even_after_the_timeout() {
        // The read waits at position 1; the position decides long after the
        // 2 s requester timeout. Serving is attempted before expiry, so the
        // requester gets the real value, not an `unavailable` brush-off.
        let (mut sim, service_node, received) = stalled_recovery_harness(vec![read_request(3)]);
        sim.run_for(SimDuration::from_secs(1));
        assert!(
            received.lock().is_empty(),
            "read must be parked, not answered"
        );
        sim.run_for(SimDuration::from_secs(10));
        apply_position_one(&mut sim, service_node, "late");
        sim.run_for(SimDuration::from_secs(5));
        let got = received.lock();
        assert_eq!(got.len(), 1, "late-but-servable read must get one answer");
        match &got[0] {
            Msg::ReadReply {
                req_id: 3,
                value,
                unavailable: false,
                ..
            } => assert_eq!(value.as_deref(), Some("late")),
            other => panic!("expected the real value, got {other:?}"),
        }
    }

    #[test]
    fn parked_reads_still_gapped_after_the_timeout_are_answered_unavailable_and_evicted() {
        // The read waits at position 2. Position 1 decides long after the
        // 2 s requester timeout, which triggers a flush — but position 2 is
        // still missing, so the read cannot be served: it is answered
        // `unavailable` (retry elsewhere) and evicted instead of being
        // re-parked forever.
        let (mut sim, service_node, received) =
            stalled_recovery_harness(vec![read_request_at(3, 2)]);
        sim.run_for(SimDuration::from_secs(1));
        assert!(
            received.lock().is_empty(),
            "read must be parked, not answered"
        );
        sim.run_for(SimDuration::from_secs(10));
        apply_position_one(&mut sim, service_node, "p1");
        sim.run_for(SimDuration::from_secs(5));
        let got = received.lock();
        assert_eq!(
            got.len(),
            1,
            "expired gapped read must get exactly one answer"
        );
        assert!(
            matches!(
                &got[0],
                Msg::ReadReply {
                    req_id: 3,
                    unavailable: true,
                    value: None,
                    ..
                }
            ),
            "expired gapped read must be answered unavailable, got {got:?}"
        );
    }

    #[test]
    fn decides_in_one_group_do_not_disturb_other_groups_parked_reads() {
        // A read parked on group 0 must stay parked (not be re-attempted or
        // expired) when an unrelated group's position decides.
        let (mut sim, service_node, received) = stalled_recovery_harness(vec![read_request(5)]);
        sim.run_for(SimDuration::from_millis(500));
        let other_group = GroupId(1);
        let helper = Prober {
            to_send: vec![(
                service_node,
                Msg::Paxos(PaxosMsg::Apply {
                    group: other_group,
                    position: LogPosition(1),
                    ballot: Ballot::initial(9),
                    value: StdArc::new(walog::LogEntry::noop()),
                }),
            )],
            received: StdArc::new(parking_lot::Mutex::new(Vec::new())),
        };
        let site = sim.network().site_of(service_node);
        sim.add_node(site, Box::new(helper));
        sim.run_for(SimDuration::from_millis(500));
        assert!(
            received.lock().is_empty(),
            "an unrelated group's decide must not answer group 0's parked read"
        );
    }

    #[test]
    fn out_of_order_applies_leave_reads_parked_until_the_prefix_advances() {
        // A read waits at position 2. Position 2's entry decides FIRST
        // (a pipelined out-of-order completion): it installs durably but
        // the prefix stays 0, so the read stays parked — no premature
        // serve, no premature expiry. Position 1 then decides, the prefix
        // jumps to 2, and the read is served with position 2's value.
        let (mut sim, service_node, received) =
            stalled_recovery_harness(vec![read_request_at(3, 2)]);
        sim.run_for(SimDuration::from_secs(1));
        let helper = Prober {
            to_send: vec![(
                service_node,
                Msg::Paxos(PaxosMsg::Apply {
                    group: GROUP,
                    position: LogPosition(2),
                    ballot: Ballot::initial(9),
                    value: entry(2, A, "p2"),
                }),
            )],
            received: StdArc::new(parking_lot::Mutex::new(Vec::new())),
        };
        let site = sim.network().site_of(service_node);
        sim.add_node(site, Box::new(helper));
        // Run far past the 2 s requester timeout: with only position 2
        // decided the prefix has not advanced, so the read must neither be
        // answered nor expired.
        sim.run_for(SimDuration::from_secs(10));
        assert!(
            received.lock().is_empty(),
            "an out-of-order decide must not disturb the parked read"
        );
        apply_position_one(&mut sim, service_node, "p1");
        sim.run_for(SimDuration::from_secs(5));
        let got = received.lock();
        assert_eq!(got.len(), 1);
        match &got[0] {
            Msg::ReadReply {
                req_id: 3,
                value,
                unavailable: false,
                ..
            } => assert_eq!(value.as_deref(), Some("p2")),
            other => panic!("expected position 2's value, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_parked_reads_are_replaced_not_accumulated() {
        // The same (requester, req_id) read arrives three times (client
        // retries); once the position decides within the timeout, exactly
        // one reply is sent.
        let (mut sim, service_node, received) =
            stalled_recovery_harness(vec![read_request(7), read_request(7), read_request(7)]);
        sim.run_for(SimDuration::from_millis(500));
        assert!(received.lock().is_empty());
        let helper = Prober {
            to_send: vec![(
                service_node,
                Msg::Paxos(PaxosMsg::Apply {
                    group: GROUP,
                    position: LogPosition(1),
                    ballot: Ballot::initial(9),
                    value: entry(1, A, "v"),
                }),
            )],
            received: StdArc::new(parking_lot::Mutex::new(Vec::new())),
        };
        let site = sim.network().site_of(service_node);
        sim.add_node(site, Box::new(helper));
        sim.run_for(SimDuration::from_secs(5));
        let got = received.lock();
        assert_eq!(
            got.len(),
            1,
            "duplicate parked reads must collapse to one reply, got {got:?}"
        );
        assert!(matches!(&got[0], Msg::ReadReply { req_id: 7, .. }));
    }
}
