//! The Transaction Service: one per datacenter (logically — the paper runs
//! many stateless processes; state lives in the store, so one actor per
//! datacenter is behaviourally identical).
//!
//! Responsibilities (§2.2, §4):
//! * answer remote `begin` and `read` requests from Transaction Clients
//!   whose local datacenter is unavailable;
//! * play the Paxos acceptor role (Algorithm 1) for every log position;
//! * install decided entries into the local write-ahead log and apply them
//!   to the local key-value store;
//! * catch up missing log positions by running recovery Paxos instances
//!   proposing no-ops (§4.1, Fault Tolerance and Recovery).

use crate::datacenter::SharedCore;
use crate::directory::Directory;
use crate::msg::Msg;
use paxos::{
    PaxosMsg, Proposer, ProposerAction, ProposerConfig, ProposerEvent, ReplicaId, TimerKind,
};
use simnet::{Actor, Context, NodeId, SimDuration};
use std::collections::HashMap;
use std::sync::Arc;
use walog::{GroupKey, LogPosition};

/// A remote read waiting for the local log to catch up.
#[derive(Clone, Debug)]
struct PendingRead {
    from: NodeId,
    req_id: u64,
    group: GroupKey,
    key: String,
    attr: String,
    read_position: LogPosition,
}

/// The per-datacenter Transaction Service actor.
pub struct TransactionService {
    replica: usize,
    core: SharedCore,
    directory: Arc<Directory>,
    message_timeout: SimDuration,
    backoff_max: SimDuration,
    recovery: HashMap<(GroupKey, LogPosition), Proposer>,
    /// Timer tag → (recovery instance key, proposer timer token).
    timers: HashMap<u64, ((GroupKey, LogPosition), u64)>,
    next_tag: u64,
    pending_reads: Vec<PendingRead>,
}

impl TransactionService {
    /// Create the service for `replica`, backed by the datacenter's shared
    /// storage core.
    pub fn new(
        replica: usize,
        core: SharedCore,
        directory: Arc<Directory>,
        message_timeout: SimDuration,
    ) -> Self {
        TransactionService {
            replica,
            core,
            directory,
            message_timeout,
            backoff_max: SimDuration::from_millis(100),
            recovery: HashMap::new(),
            timers: HashMap::new(),
            next_tag: 0,
            pending_reads: Vec::new(),
        }
    }

    /// The replica index this service belongs to.
    pub fn replica(&self) -> usize {
        self.replica
    }

    fn node_for_replica(&self, replica: ReplicaId) -> NodeId {
        self.directory.service_node(replica)
    }

    fn handle_paxos(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: PaxosMsg) {
        match msg {
            PaxosMsg::Prepare { group, position, ballot } => {
                let outcome = self.core.lock().acceptor().handle_prepare(&group, position, ballot);
                ctx.send(
                    from,
                    Msg::Paxos(PaxosMsg::PrepareReply {
                        group,
                        position,
                        ballot,
                        promised: outcome.promised,
                        next_bal: outcome.next_bal,
                        last_vote: outcome.last_vote,
                    }),
                );
            }
            PaxosMsg::Accept { group, position, ballot, value } => {
                let accepted = self
                    .core
                    .lock()
                    .acceptor()
                    .handle_accept(&group, position, ballot, &value);
                ctx.send(
                    from,
                    Msg::Paxos(PaxosMsg::AcceptReply { group, position, ballot, accepted }),
                );
            }
            PaxosMsg::Apply { group, position, ballot, value } => {
                {
                    let mut core = self.core.lock();
                    core.acceptor().handle_apply(&group, position, ballot, &value);
                    core.install_entry(&group, position, value);
                }
                // A decided position may unblock queued remote reads and
                // makes any recovery instance for it redundant.
                self.recovery.remove(&(group, position));
                self.flush_pending_reads(ctx);
            }
            PaxosMsg::LeaderClaim { group, position } => {
                let granted = self
                    .core
                    .lock()
                    .leader_claim(&group, position, from.0 as u64);
                ctx.send(
                    from,
                    Msg::Paxos(PaxosMsg::LeaderClaimReply { group, position, granted }),
                );
            }
            PaxosMsg::PrepareReply {
                ref group,
                position,
                ballot,
                promised,
                next_bal,
                ref last_vote,
            } => {
                let replica = self.directory.replica_of_service(from).unwrap_or(0);
                self.drive_recovery(
                    ctx,
                    (group.clone(), position),
                    ProposerEvent::PrepareReply {
                        from: replica,
                        position,
                        ballot,
                        promised,
                        next_bal,
                        last_vote: last_vote.clone(),
                    },
                );
            }
            PaxosMsg::AcceptReply { ref group, position, ballot, accepted } => {
                let replica = self.directory.replica_of_service(from).unwrap_or(0);
                self.drive_recovery(
                    ctx,
                    (group.clone(), position),
                    ProposerEvent::AcceptReply { from: replica, position, ballot, accepted },
                );
            }
            PaxosMsg::LeaderClaimReply { .. } => {
                // Recovery proposers never use the fast path; nothing to do.
            }
        }
    }

    fn handle_begin(&mut self, ctx: &mut Context<Msg>, from: NodeId, req_id: u64, group: GroupKey) {
        let read_position = self.core.lock().read_position(&group);
        ctx.send(from, Msg::BeginReply { req_id, group, read_position });
    }

    fn handle_read(&mut self, ctx: &mut Context<Msg>, pending: PendingRead) {
        let result = self.core.lock().read(
            &pending.group,
            &pending.key,
            &pending.attr,
            pending.read_position,
        );
        match result {
            Ok(value) => {
                ctx.send(
                    pending.from,
                    Msg::ReadReply {
                        req_id: pending.req_id,
                        group: pending.group,
                        key: pending.key,
                        attr: pending.attr,
                        value,
                        unavailable: false,
                    },
                );
            }
            Err(gap) => {
                // Start a recovery instance for every missing position, then
                // park the read until the log catches up.
                for position in gap.missing {
                    self.start_recovery(ctx, pending.group.clone(), position);
                }
                self.pending_reads.push(pending);
            }
        }
    }

    fn flush_pending_reads(&mut self, ctx: &mut Context<Msg>) {
        let pending = std::mem::take(&mut self.pending_reads);
        for read in pending {
            self.handle_read(ctx, read);
        }
    }

    fn start_recovery(&mut self, ctx: &mut Context<Msg>, group: GroupKey, position: LogPosition) {
        if self.recovery.contains_key(&(group.clone(), position)) {
            return;
        }
        if self.core.lock().has_entry(&group, position) {
            return;
        }
        let cfg = ProposerConfig::basic(self.directory.num_replicas());
        let mut proposer = Proposer::new_recovery(
            cfg,
            group.clone(),
            ctx.node().0 as u64,
            position,
        );
        let actions = proposer.start();
        self.recovery.insert((group.clone(), position), proposer);
        self.apply_recovery_actions(ctx, (group, position), actions);
    }

    fn drive_recovery(
        &mut self,
        ctx: &mut Context<Msg>,
        key: (GroupKey, LogPosition),
        event: ProposerEvent,
    ) {
        let Some(proposer) = self.recovery.get_mut(&key) else {
            return;
        };
        let actions = proposer.on_event(event);
        self.apply_recovery_actions(ctx, key, actions);
    }

    fn apply_recovery_actions(
        &mut self,
        ctx: &mut Context<Msg>,
        key: (GroupKey, LogPosition),
        actions: Vec<ProposerAction>,
    ) {
        for action in actions {
            match action {
                ProposerAction::Broadcast(msg) => {
                    for replica in 0..self.directory.num_replicas() {
                        ctx.send(self.node_for_replica(replica), Msg::Paxos(msg.clone()));
                    }
                }
                ProposerAction::SendToLeader(msg) => {
                    // Recovery never uses the fast path, but route sensibly
                    // anyway: ask our own datacenter.
                    ctx.send(self.node_for_replica(self.replica), Msg::Paxos(msg));
                }
                ProposerAction::ArmTimer { token, kind } => {
                    let delay = match kind {
                        TimerKind::ReplyTimeout => self.message_timeout,
                        TimerKind::Backoff => ctx.rand_backoff(self.backoff_max),
                        TimerKind::Gather => SimDuration::from_millis(50),
                    };
                    self.next_tag += 1;
                    let tag = self.next_tag;
                    self.timers.insert(tag, (key.clone(), token));
                    ctx.set_timer(delay, tag);
                }
                ProposerAction::Learned { position, entry } => {
                    self.core.lock().install_entry(&key.0, position, entry);
                }
                ProposerAction::Finished(_) => {
                    self.recovery.remove(&key);
                    self.flush_pending_reads(ctx);
                }
            }
        }
    }
}

impl Actor<Msg> for TransactionService {
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Paxos(p) => self.handle_paxos(ctx, from, p),
            Msg::BeginRequest { req_id, group } => self.handle_begin(ctx, from, req_id, group),
            Msg::ReadRequest { req_id, group, key, attr, read_position } => {
                let pending = PendingRead { from, req_id, group, key, attr, read_position };
                self.handle_read(ctx, pending);
            }
            Msg::BeginReply { .. } | Msg::ReadReply { .. } => {
                // Services never issue begin/read requests; stray replies are
                // ignored.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if let Some((key, token)) = self.timers.remove(&tag) {
            self.drive_recovery(ctx, key, ProposerEvent::Timer { token });
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>) {
        // After an outage the service proactively catches up: it asks itself
        // for the read position (a no-op) and relies on incoming traffic plus
        // recovery instances started by reads to fill gaps. Pending reads
        // accumulated before the crash are re-examined.
        self.flush_pending_reads(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DatacenterCore;
    use paxos::Ballot;
    use simnet::{NetworkConfig, Simulation};
    use walog::{ItemRef, LogEntry, Transaction, TxnId};

    /// A scripted prober actor that sends a batch of messages at start and
    /// records everything it receives.
    struct Prober {
        to_send: Vec<(NodeId, Msg)>,
        received: std::sync::Arc<parking_lot::Mutex<Vec<Msg>>>,
    }

    impl Actor<Msg> for Prober {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            for (to, msg) in self.to_send.drain(..) {
                ctx.send(to, msg);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            self.received.lock().push(msg);
        }
    }

    fn single_dc_harness(
        to_send: impl Fn(NodeId) -> Vec<(NodeId, Msg)>,
    ) -> (Simulation<Msg>, SharedCore, std::sync::Arc<parking_lot::Mutex<Vec<Msg>>>) {
        let mut sim: Simulation<Msg> =
            Simulation::new(NetworkConfig::uniform(SimDuration::from_millis(1)), 1);
        let site = sim.add_site("dc0");
        let core = DatacenterCore::shared("dc0", 0);
        let directory = Directory::new();
        let service = TransactionService::new(
            0,
            core.clone(),
            directory.clone(),
            SimDuration::from_secs(2),
        );
        let service_node = sim.add_node(site, Box::new(service));
        directory.register_datacenter(service_node, core.clone());
        let received = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let prober = Prober {
            to_send: to_send(service_node),
            received: received.clone(),
        };
        let prober_node = sim.add_node(site, Box::new(prober));
        directory.register_client(prober_node, 0);
        (sim, core, received)
    }

    fn entry(seq: u64, attr: &str, value: &str) -> LogEntry {
        LogEntry::single(
            Transaction::builder(TxnId::new(1, seq), "g", LogPosition(0))
                .write(ItemRef::new("row", attr), value)
                .build(),
        )
    }

    #[test]
    fn service_answers_begin_requests_with_read_position() {
        let (mut sim, core, received) = single_dc_harness(|svc| {
            vec![(svc, Msg::BeginRequest { req_id: 1, group: "g".into() })]
        });
        core.lock().install_entry(&"g".into(), LogPosition(1), entry(1, "a", "1"));
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert_eq!(got.len(), 1);
        match &got[0] {
            Msg::BeginReply { read_position, .. } => assert_eq!(*read_position, LogPosition(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn service_acts_as_acceptor_for_prepare_and_accept() {
        let ballot = Ballot::initial(42);
        let value = entry(5, "a", "v");
        let value_clone = value.clone();
        let (mut sim, core, received) = single_dc_harness(move |svc| {
            vec![
                (
                    svc,
                    Msg::Paxos(PaxosMsg::Prepare {
                        group: "g".into(),
                        position: LogPosition(1),
                        ballot,
                    }),
                ),
                (
                    svc,
                    Msg::Paxos(PaxosMsg::Accept {
                        group: "g".into(),
                        position: LogPosition(1),
                        ballot,
                        value: value_clone.clone(),
                    }),
                ),
                (
                    svc,
                    Msg::Paxos(PaxosMsg::Apply {
                        group: "g".into(),
                        position: LogPosition(1),
                        ballot,
                        value: value_clone.clone(),
                    }),
                ),
            ]
        });
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert!(got.iter().any(|m| matches!(
            m,
            Msg::Paxos(PaxosMsg::PrepareReply { promised: true, .. })
        )));
        assert!(got.iter().any(|m| matches!(
            m,
            Msg::Paxos(PaxosMsg::AcceptReply { accepted: true, .. })
        )));
        // The apply installed the entry and applied it to the store.
        assert!(core.lock().has_entry("g", LogPosition(1)));
        assert_eq!(
            core.lock().read("g", "row", "a", LogPosition(1)).unwrap(),
            Some("v".to_string())
        );
    }

    #[test]
    fn remote_read_is_served_at_the_requested_position() {
        let (mut sim, core, received) = single_dc_harness(|svc| {
            vec![(
                svc,
                Msg::ReadRequest {
                    req_id: 9,
                    group: "g".into(),
                    key: "row".into(),
                    attr: "a".into(),
                    read_position: LogPosition(1),
                },
            )]
        });
        core.lock().install_entry(&"g".into(), LogPosition(1), entry(1, "a", "42"));
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert_eq!(got.len(), 1);
        match &got[0] {
            Msg::ReadReply { req_id, value, unavailable, .. } => {
                assert_eq!(*req_id, 9);
                assert_eq!(value.as_deref(), Some("42"));
                assert!(!unavailable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leader_claim_granted_once_per_position() {
        let (mut sim, _core, received) = single_dc_harness(|svc| {
            vec![
                (svc, Msg::Paxos(PaxosMsg::LeaderClaim { group: "g".into(), position: LogPosition(1) })),
            ]
        });
        sim.run_until_idle_capped(1_000);
        let got = received.lock();
        assert!(matches!(
            got[0],
            Msg::Paxos(PaxosMsg::LeaderClaimReply { granted: true, .. })
        ));
    }

    #[test]
    fn read_with_log_gap_triggers_recovery_and_eventually_answers() {
        // The service is missing position 1 but a read at position 1 arrives.
        // With a single replica, the recovery instance reaches a majority (1
        // of 1) by talking to itself and decides a no-op, after which the
        // read is answered (with no value, since only a no-op committed).
        let (mut sim, core, received) = single_dc_harness(|svc| {
            vec![(
                svc,
                Msg::ReadRequest {
                    req_id: 3,
                    group: "g".into(),
                    key: "row".into(),
                    attr: "a".into(),
                    read_position: LogPosition(1),
                },
            )]
        });
        sim.run_until_idle_capped(10_000);
        let got = received.lock();
        assert_eq!(got.len(), 1, "read must eventually be answered");
        match &got[0] {
            Msg::ReadReply { value, unavailable, .. } => {
                assert_eq!(value, &None);
                assert!(!unavailable);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The gap was filled with a no-op entry.
        let core = core.lock();
        let log = core.log("g").unwrap();
        assert!(log.get(LogPosition(1)).unwrap().is_noop());
    }
}
