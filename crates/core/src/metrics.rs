//! Latency and commit statistics collected by clients and experiments.

use simnet::SimDuration;

/// Summary statistics over a set of latency samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency in milliseconds (the tail the open-loop
    /// latency-vs-throughput curves report).
    pub p99_ms: f64,
    /// Maximum latency in milliseconds.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Compute summary statistics from raw samples.
    pub fn from_samples(samples: &[SimDuration]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut ms: Vec<f64> = samples.iter().map(|d| d.as_millis_f64()).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let count = ms.len();
        let mean = ms.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            ms[idx.min(count - 1)]
        };
        LatencyStats {
            count,
            mean_ms: mean,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: *ms.last().expect("non-empty"),
        }
    }
}

/// Aggregated outcome counters for a set of transactions (one client or one
/// whole experiment).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Transactions attempted.
    pub attempted: usize,
    /// Transactions committed (any round).
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Committed transactions indexed by the number of promotions they
    /// needed: index 0 = committed on the first try, index 1 = one
    /// promotion, and so on (the per-round bars of Figures 4–8).
    pub commits_by_promotion: Vec<usize>,
    /// Transactions that committed as part of a combined (multi-transaction)
    /// log entry.
    pub combined_commits: usize,
    /// Read-only transactions (commit trivially, never logged).
    pub read_only: usize,
    /// Latency samples of committed transactions, in microseconds, grouped
    /// by promotion round (same indexing as `commits_by_promotion`).
    pub commit_latency_us_by_promotion: Vec<Vec<u64>>,
    /// Latency samples of aborted transactions, in microseconds.
    pub abort_latency_us: Vec<u64>,
    /// Transactions that timed out waiting for a commit decision (open-loop
    /// harnesses count a request whose patience expired as an abort *and*
    /// tick this counter; the closed-loop session never times out, so it
    /// stays 0 there).
    pub timed_out: u64,
    /// Remote reads the Transaction Services answered `unavailable` and
    /// evicted because the requester timed out before the local log caught
    /// up. Service-side (not per-transaction): harnesses populate it from
    /// the datacenter cores after a run (see
    /// `TransactionService::expired_read_count`), and [`RunMetrics::merge`]
    /// accumulates it like every other counter.
    pub expired_reads: u64,
    /// Windows a [`GroupCommitter`](crate::GroupCommitter) split because
    /// they were internally conflicting (a member read an earlier member's
    /// write — the `walog::combine::can_append` rule): the deferred
    /// members waited for a later instance instead of riding an invalid
    /// combination. Recorded by committers wired with
    /// [`GroupCommitter::with_metrics`](crate::GroupCommitter::with_metrics).
    pub batch_splits: u64,
    /// Window members aborted by the committer's optimistic revalidation at
    /// flush time: an entry decided since the member's read position had
    /// already invalidated its reads, so it never entered an instance.
    pub stale_member_aborts: u64,
    /// Multi-version store versions reclaimed by the watermark-driven GC
    /// that runs when decided entries apply (see
    /// `DatacenterCore::reclaimed_version_count`). Service-side; harnesses
    /// populate it from the datacenter cores after a run.
    pub reclaimed_versions: u64,
    /// Transactions per flushed committer window, one sample per window —
    /// the occupancy signal the adaptive window controller steers on.
    pub window_occupancy: Vec<u32>,
    /// Commit-pipeline depth in flight, sampled when each instance opens
    /// (1 = flush-and-wait behaviour, ≥ 2 = overlapping instances).
    pub pipeline_depth: Vec<u32>,
    /// Absolute simulated time (microseconds) of the latest recorded
    /// outcome. Harness actors stamp it after each decision so throughput
    /// can be measured over the *working* span of a run — `run until idle`
    /// otherwise pads the span with trailing reply-timeout timers.
    pub last_decision_us: u64,
    /// Faults injected by a chaos schedule over the run (crashes,
    /// partitions, group-home moves; repairs are not counted). Populated by
    /// chaos harnesses from `ChaosSchedule::faults_injected`.
    pub faults_injected: u64,
    /// Commit attempts automatically re-submitted after an `Unavailable`
    /// outcome or a submit-patience expiry (sessions and open-loop drivers
    /// count each re-send; the transaction id never changes).
    pub resubmissions: u64,
    /// Duplicate commit submissions the services absorbed: retries of
    /// in-flight transactions and retries answered from the decided-fate
    /// memory, none of which reached the commit pipeline again.
    pub duplicate_suppressions: u64,
}

impl RunMetrics {
    /// Record one transaction outcome.
    pub fn record(&mut self, result: &crate::session::TxnResult) {
        self.attempted += 1;
        if result.read_only {
            self.read_only += 1;
        }
        if result.committed {
            self.committed += 1;
            let round = result.promotions as usize;
            if self.commits_by_promotion.len() <= round {
                self.commits_by_promotion.resize(round + 1, 0);
                self.commit_latency_us_by_promotion
                    .resize_with(round + 1, Vec::new);
            }
            self.commits_by_promotion[round] += 1;
            self.commit_latency_us_by_promotion[round].push(result.latency.as_micros());
            if result.combined {
                self.combined_commits += 1;
            }
        } else {
            self.aborted += 1;
            self.abort_latency_us.push(result.latency.as_micros());
        }
    }

    /// Merge another set of metrics into this one (e.g. per-client metrics
    /// into an experiment total).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.attempted += other.attempted;
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.combined_commits += other.combined_commits;
        self.read_only += other.read_only;
        self.timed_out += other.timed_out;
        self.expired_reads += other.expired_reads;
        self.batch_splits += other.batch_splits;
        self.stale_member_aborts += other.stale_member_aborts;
        self.reclaimed_versions += other.reclaimed_versions;
        self.window_occupancy
            .extend_from_slice(&other.window_occupancy);
        self.pipeline_depth.extend_from_slice(&other.pipeline_depth);
        self.last_decision_us = self.last_decision_us.max(other.last_decision_us);
        self.faults_injected += other.faults_injected;
        self.resubmissions += other.resubmissions;
        self.duplicate_suppressions += other.duplicate_suppressions;
        if self.commits_by_promotion.len() < other.commits_by_promotion.len() {
            self.commits_by_promotion
                .resize(other.commits_by_promotion.len(), 0);
            self.commit_latency_us_by_promotion
                .resize_with(other.commits_by_promotion.len(), Vec::new);
        }
        for (i, n) in other.commits_by_promotion.iter().enumerate() {
            self.commits_by_promotion[i] += n;
        }
        for (i, samples) in other.commit_latency_us_by_promotion.iter().enumerate() {
            self.commit_latency_us_by_promotion[i].extend_from_slice(samples);
        }
        self.abort_latency_us
            .extend_from_slice(&other.abort_latency_us);
    }

    /// Commits that needed at least one promotion.
    pub fn promoted_commits(&self) -> usize {
        self.commits_by_promotion.iter().skip(1).sum()
    }

    /// Latency statistics of all committed transactions.
    pub fn commit_latency(&self) -> LatencyStats {
        let samples: Vec<SimDuration> = self
            .commit_latency_us_by_promotion
            .iter()
            .flatten()
            .map(|us| SimDuration::from_micros(*us))
            .collect();
        LatencyStats::from_samples(&samples)
    }

    /// Latency statistics of aborted transactions.
    pub fn abort_latency(&self) -> LatencyStats {
        let samples: Vec<SimDuration> = self
            .abort_latency_us
            .iter()
            .map(|us| SimDuration::from_micros(*us))
            .collect();
        LatencyStats::from_samples(&samples)
    }

    /// Latency statistics of commits at a specific promotion round.
    pub fn commit_latency_at_round(&self, round: usize) -> LatencyStats {
        let samples: Vec<SimDuration> = self
            .commit_latency_us_by_promotion
            .get(round)
            .map(|v| v.iter().map(|us| SimDuration::from_micros(*us)).collect())
            .unwrap_or_default();
        LatencyStats::from_samples(&samples)
    }

    /// Latency statistics of all transactions (committed and aborted).
    pub fn overall_latency(&self) -> LatencyStats {
        let samples: Vec<SimDuration> = self
            .commit_latency_us_by_promotion
            .iter()
            .flatten()
            .chain(self.abort_latency_us.iter())
            .map(|us| SimDuration::from_micros(*us))
            .collect();
        LatencyStats::from_samples(&samples)
    }

    /// The highest promotion round that produced a commit.
    pub fn max_promotion_round(&self) -> usize {
        self.commits_by_promotion
            .iter()
            .rposition(|n| *n > 0)
            .unwrap_or(0)
    }

    /// Mean transactions per flushed committer window (0 when no committer
    /// reported samples).
    pub fn mean_window_occupancy(&self) -> f64 {
        if self.window_occupancy.is_empty() {
            return 0.0;
        }
        self.window_occupancy.iter().map(|n| *n as u64).sum::<u64>() as f64
            / self.window_occupancy.len() as f64
    }

    /// The deepest commit pipeline observed (0 when no committer reported
    /// samples; 1 means instances never overlapped).
    pub fn max_pipeline_depth(&self) -> u32 {
        self.pipeline_depth.iter().copied().max().unwrap_or(0)
    }
}

/// A registry of per-actor metrics sinks, merged at run end.
///
/// Every recording actor (a service-hosted commit engine, a workload
/// driver) gets its *own* `Arc<Mutex<RunMetrics>>` via
/// [`MetricsHub::register`], so under the parallel runtime no two worker
/// threads ever contend on — or interleave partial updates into — a shared
/// mutable sink. The harness calls [`MetricsHub::merged`] once the run has
/// stopped, which folds every sink into one [`RunMetrics`] with the same
/// `merge` semantics the single-threaded harnesses always used.
#[derive(Default)]
pub struct MetricsHub {
    sinks: parking_lot::Mutex<Vec<std::sync::Arc<parking_lot::Mutex<RunMetrics>>>>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Create and track one fresh sink for a recording actor.
    pub fn register(&self) -> std::sync::Arc<parking_lot::Mutex<RunMetrics>> {
        let sink = std::sync::Arc::new(parking_lot::Mutex::new(RunMetrics::default()));
        self.sinks.lock().push(sink.clone());
        sink
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.lock().len()
    }

    /// Whether no sinks were registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold every registered sink into one aggregate. Call after the run
    /// has stopped (sinks still being written to are merged mid-flight but
    /// never torn, since each is read under its own lock).
    pub fn merged(&self) -> RunMetrics {
        let mut total = RunMetrics::default();
        for sink in self.sinks.lock().iter() {
            total.merge(&sink.lock());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TxnResult;

    fn result(committed: bool, promotions: u32, latency_ms: u64) -> TxnResult {
        TxnResult {
            committed,
            read_only: false,
            promotions,
            combined: false,
            rounds: 1,
            latency: SimDuration::from_millis(latency_ms),
            total_latency: SimDuration::from_millis(latency_ms),
            abort_reason: None,
            txn: None,
        }
    }

    #[test]
    fn latency_stats_from_samples() {
        let samples: Vec<SimDuration> = (1..=100).map(SimDuration::from_millis).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.count, 100);
        assert!((stats.mean_ms - 50.5).abs() < 1e-9);
        assert!((stats.p50_ms - 50.0).abs() <= 1.0);
        assert!((stats.p95_ms - 95.0).abs() <= 1.0);
        assert_eq!(stats.max_ms, 100.0);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn record_groups_commits_by_promotion_round() {
        let mut m = RunMetrics::default();
        m.record(&result(true, 0, 10));
        m.record(&result(true, 0, 20));
        m.record(&result(true, 2, 30));
        m.record(&result(false, 1, 40));
        assert_eq!(m.attempted, 4);
        assert_eq!(m.committed, 3);
        assert_eq!(m.aborted, 1);
        assert_eq!(m.commits_by_promotion, vec![2, 0, 1]);
        assert_eq!(m.promoted_commits(), 1);
        assert_eq!(m.max_promotion_round(), 2);
        assert_eq!(m.commit_latency().count, 3);
        assert_eq!(m.commit_latency_at_round(0).count, 2);
        assert_eq!(m.commit_latency_at_round(7).count, 0);
        assert_eq!(m.overall_latency().count, 4);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = RunMetrics::default();
        a.record(&result(true, 0, 10));
        let mut b = RunMetrics::default();
        b.record(&result(true, 3, 15));
        b.record(&result(false, 0, 5));
        b.expired_reads = 3;
        b.batch_splits = 2;
        b.stale_member_aborts = 1;
        b.reclaimed_versions = 7;
        b.window_occupancy = vec![4, 2];
        b.pipeline_depth = vec![1, 2];
        a.expired_reads = 1;
        a.window_occupancy = vec![6];
        a.pipeline_depth = vec![1];
        a.merge(&b);
        assert_eq!(a.attempted, 3);
        assert_eq!(a.committed, 2);
        assert_eq!(a.commits_by_promotion, vec![1, 0, 0, 1]);
        assert_eq!(a.abort_latency_us.len(), 1);
        assert_eq!(a.expired_reads, 4);
        assert_eq!(a.batch_splits, 2);
        assert_eq!(a.stale_member_aborts, 1);
        assert_eq!(a.reclaimed_versions, 7);
        assert_eq!(a.window_occupancy, vec![6, 4, 2]);
        assert_eq!(a.max_pipeline_depth(), 2);
        assert!((a.mean_window_occupancy() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_observability_defaults_are_empty() {
        let m = RunMetrics::default();
        assert_eq!(m.mean_window_occupancy(), 0.0);
        assert_eq!(m.max_pipeline_depth(), 0);
    }

    #[test]
    fn p99_tracks_the_tail() {
        let samples: Vec<SimDuration> = (1..=1000).map(SimDuration::from_millis).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert!((stats.p99_ms - 990.0).abs() <= 2.0);
        assert!(stats.p99_ms >= stats.p95_ms);
    }

    #[test]
    fn hub_merges_independent_sinks() {
        let hub = MetricsHub::new();
        assert!(hub.is_empty());
        let a = hub.register();
        let b = hub.register();
        a.lock().record(&result(true, 0, 10));
        b.lock().record(&result(false, 0, 20));
        b.lock().timed_out = 3;
        assert_eq!(hub.len(), 2);
        let total = hub.merged();
        assert_eq!(total.attempted, 2);
        assert_eq!(total.committed, 1);
        assert_eq!(total.aborted, 1);
        assert_eq!(total.timed_out, 3);
    }
}
