//! # mdstore — the multi-datacenter transactional datastore (the paper's core)
//!
//! This crate assembles the substrates (simulated network, multi-version
//! store, replicated write-ahead log, Paxos state machines) into the system
//! of the paper: a transactional datastore fully replicated at several
//! datacenters, where every datacenter can serve transactions and the commit
//! protocol — basic Paxos or **Paxos-CP** — provides both replication and
//! concurrency control.
//!
//! The pieces map one-to-one onto the paper's architecture (Figure 1):
//!
//! * [`topology`] — datacenters, regions and the wide-area RTTs measured in
//!   the paper's evaluation (Virginia ↔ Oregon/California ≈ 90 ms, intra
//!   Virginia ≈ 1.5 ms, Oregon ↔ California ≈ 20 ms).
//! * [`Directory`] — cluster-wide lookup (service nodes, storage cores,
//!   client placement) plus the shared `walog::SymbolTable`: every group,
//!   key and attribute name is interned once at the client API boundary and
//!   travels the rest of the pipeline as a `Copy` integer id.
//! * [`DatacenterCore`] — the per-datacenter storage state: the key-value
//!   store, the replicated write-ahead logs, and the leader bookkeeping for
//!   the fast path. Shared by the local Transaction Services and Transaction
//!   Clients, mirroring the paper's "client executes operations directly on
//!   its local key-value store" optimization.
//! * [`TransactionService`] — the per-datacenter service actor: answers
//!   begin/read requests from remote clients, plays the Paxos acceptor role
//!   (Algorithm 1), installs decided entries, catches up missing log
//!   positions by running recovery Paxos instances with no-op values.
//! * [`Session`] — the client library: `begin` returns a [`TxnHandle`];
//!   `read` / `write` / `commit` take the handle, so any number of
//!   transactions may be open concurrently. Commit routes down
//!   [`CommitRoute::Direct`] (the paper's client-driven proposer,
//!   Algorithm 2) or [`CommitRoute::Submitted`] (ship the transaction to
//!   the group home's service, which batches it with other clients'
//!   commits).
//! * [`GroupCommitter`] — the batching commit pipeline: independent
//!   transactions ride a single Paxos-CP instance as one combined entry,
//!   amortizing the wide-area round trips. Hosted by the group home's
//!   [`TransactionService`] for the submitted route (one committer per led
//!   group, serving every client of the group), or embedded directly by
//!   harness actors; the [`Directory`]'s per-group leader map shards
//!   leadership (and batching) across datacenters.
//! * [`Cluster`] — the harness that wires everything into a deterministic
//!   simulation, injects failures, and verifies the resulting logs with the
//!   serializability checker after every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cluster;
pub mod datacenter;
pub mod directory;
pub mod metrics;
pub mod msg;
pub mod parallel;
pub mod service;
pub mod session;
pub mod topology;

pub use batch::{BatchConfig, GroupCommitter};
pub use cluster::{Cluster, ClusterConfig};
pub use datacenter::{DatacenterCore, RestartReport};
pub use directory::Directory;
pub use metrics::{LatencyStats, MetricsHub, RunMetrics};
pub use msg::Msg;
pub use parallel::{ParallelCluster, ParallelClusterConfig};
pub use paxos::{AbortReason, CommitProtocol, ProposerConfig};
pub use service::TransactionService;
pub use session::{
    ClientAction, ClientConfig, CommitRoute, Session, SessionError, TxnHandle, TxnResult,
};
pub use storage::{remove_scratch_dir, scratch_dir, DurableConfig, StorageConfig, StorageStats};
pub use topology::{Region, Topology};
