//! Datacenter topology: regions and the wide-area latencies measured in the
//! paper's evaluation (§6).
//!
//! The paper deploys replicas on EC2 `c1.medium` instances in three Virginia
//! availability zones, Oregon and Northern California, and reports:
//!
//! * Virginia ↔ Virginia (distinct AZs): ≈ 1.5 ms round trip,
//! * Virginia ↔ Oregon and Virginia ↔ California: ≈ 90 ms round trip,
//! * Oregon ↔ California: ≈ 20 ms round trip,
//! * message-loss detection timeout: 2 s.
//!
//! Clusters in the figures are named by the first letter of each replica's
//! region — `VV`, `OV`, `VVV`, `COV`, `VVVO`, `VVVOC` — and this module can
//! parse those names directly.

use simnet::{LatencyMatrix, NetworkConfig, SimDuration};
use std::fmt;

/// Geographic region a datacenter lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// US-East (the paper uses three distinct availability zones here).
    Virginia,
    /// US-West-2.
    Oregon,
    /// US-West-1 (Northern California).
    California,
}

impl Region {
    /// The single-letter code used in the paper's cluster names.
    pub fn code(self) -> char {
        match self {
            Region::Virginia => 'V',
            Region::Oregon => 'O',
            Region::California => 'C',
        }
    }

    /// Parse a single-letter region code.
    pub fn from_code(c: char) -> Option<Region> {
        match c.to_ascii_uppercase() {
            'V' => Some(Region::Virginia),
            'O' => Some(Region::Oregon),
            'C' => Some(Region::California),
            _ => None,
        }
    }

    /// Round-trip latency between two regions, per the paper's measurements.
    /// Two datacenters in the same region are assumed to be distinct
    /// availability zones (the Virginia figure is used for all of them).
    pub fn rtt_to(self, other: Region) -> SimDuration {
        use Region::*;
        match (self, other) {
            (Virginia, Virginia) | (Oregon, Oregon) | (California, California) => {
                SimDuration::from_millis_f64(1.5)
            }
            (Oregon, California) | (California, Oregon) => SimDuration::from_millis(20),
            // Everything involving Virginia and the west coast.
            _ => SimDuration::from_millis(90),
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::Virginia => "virginia",
            Region::Oregon => "oregon",
            Region::California => "california",
        };
        write!(f, "{name}")
    }
}

/// A cluster layout: one entry per datacenter (replica).
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    datacenters: Vec<Region>,
    /// Probability that any individual message is lost.
    pub loss_probability: f64,
    /// Multiplicative latency jitter fraction.
    pub jitter: f64,
    /// The paper's message-loss detection timeout.
    pub message_timeout: SimDuration,
}

impl Topology {
    /// Build a topology from an ordered list of datacenter regions.
    pub fn new(datacenters: Vec<Region>) -> Self {
        assert!(
            !datacenters.is_empty(),
            "a cluster needs at least one datacenter"
        );
        Topology {
            datacenters,
            loss_probability: 0.0,
            jitter: 0.05,
            message_timeout: SimDuration::from_secs(2),
        }
    }

    /// Parse a paper-style cluster name such as `"VVV"` or `"COV"`.
    pub fn from_name(name: &str) -> Option<Self> {
        let regions: Option<Vec<Region>> = name.chars().map(Region::from_code).collect();
        regions.filter(|r| !r.is_empty()).map(Topology::new)
    }

    /// The paper's default three-replica cluster (three Virginia AZs).
    pub fn vvv() -> Self {
        Topology::new(vec![Region::Virginia; 3])
    }

    /// The geo-distributed three-replica cluster (California, Oregon,
    /// Virginia) used in Figure 8.
    pub fn voc() -> Self {
        Topology::new(vec![Region::Virginia, Region::Oregon, Region::California])
    }

    /// Builder-style: set the message loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_probability = p;
        self
    }

    /// Builder-style: set the latency jitter fraction.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Number of datacenters (replicas).
    pub fn num_datacenters(&self) -> usize {
        self.datacenters.len()
    }

    /// The regions, in replica order.
    pub fn regions(&self) -> &[Region] {
        &self.datacenters
    }

    /// The paper-style name of the cluster (e.g. `"VVV"`).
    pub fn name(&self) -> String {
        self.datacenters.iter().map(|r| r.code()).collect()
    }

    /// Translate into the simulator's network configuration: the latency
    /// matrix is filled with per-pair one-way latencies (half the region
    /// RTT); intra-datacenter hops take 0.25 ms.
    pub fn network_config(&self) -> NetworkConfig {
        let mut latency =
            LatencyMatrix::new(SimDuration::from_micros(250), SimDuration::from_millis(45));
        for (i, a) in self.datacenters.iter().enumerate() {
            for (j, b) in self.datacenters.iter().enumerate() {
                if i < j {
                    latency.set_rtt(
                        simnet::SiteId(i as u32),
                        simnet::SiteId(j as u32),
                        a.rtt_to(*b),
                    );
                }
            }
        }
        NetworkConfig {
            latency,
            loss_probability: self.loss_probability,
            jitter: self.jitter,
            chaos: simnet::ChaosConfig::default(),
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_codes_round_trip() {
        for r in [Region::Virginia, Region::Oregon, Region::California] {
            assert_eq!(Region::from_code(r.code()), Some(r));
        }
        assert_eq!(Region::from_code('x'), None);
        assert_eq!(Region::from_code('v'), Some(Region::Virginia));
    }

    #[test]
    fn rtts_match_the_paper() {
        assert_eq!(
            Region::Virginia.rtt_to(Region::Virginia),
            SimDuration::from_millis_f64(1.5)
        );
        assert_eq!(
            Region::Virginia.rtt_to(Region::Oregon),
            SimDuration::from_millis(90)
        );
        assert_eq!(
            Region::California.rtt_to(Region::Virginia),
            SimDuration::from_millis(90)
        );
        assert_eq!(
            Region::Oregon.rtt_to(Region::California),
            SimDuration::from_millis(20)
        );
    }

    #[test]
    fn cluster_names_parse_and_print() {
        let t = Topology::from_name("COV").unwrap();
        assert_eq!(
            t.regions(),
            &[Region::California, Region::Oregon, Region::Virginia]
        );
        assert_eq!(t.name(), "COV");
        assert_eq!(Topology::vvv().name(), "VVV");
        assert_eq!(Topology::vvv().num_datacenters(), 3);
        assert!(Topology::from_name("").is_none());
        assert!(Topology::from_name("VXZ").is_none());
    }

    #[test]
    fn network_config_uses_region_rtts() {
        let t = Topology::from_name("VO").unwrap();
        let cfg = t.network_config();
        assert_eq!(
            cfg.latency.one_way(simnet::SiteId(0), simnet::SiteId(1)),
            SimDuration::from_millis(45)
        );
        assert_eq!(
            cfg.latency.one_way(simnet::SiteId(0), simnet::SiteId(0)),
            SimDuration::from_micros(250)
        );
        let t = Topology::vvv().with_loss(0.1).with_jitter(0.2);
        let cfg = t.network_config();
        assert!((cfg.loss_probability - 0.1).abs() < 1e-12);
        assert!((cfg.jitter - 0.2).abs() < 1e-12);
    }

    #[test]
    fn default_timeout_is_two_seconds() {
        assert_eq!(Topology::vvv().message_timeout, SimDuration::from_secs(2));
    }
}
