//! Client-side proposal batching: the per-group pipelined commit engine.
//!
//! The paper's evaluation runs one Paxos instance per transaction, one at a
//! time. A [`GroupCommitter`] instead drives a **pipelined, adaptive**
//! commit engine for one transaction group:
//!
//! * **Batching** — the independent transactions a client produces within a
//!   submission window commit in a *single* Paxos-CP instance: the window
//!   travels as one combined log entry, so one prepare/accept exchange plus
//!   one piggybacked apply broadcast decide every member, amortizing the
//!   wide-area round trips that dominate geo-replicated commit latency.
//! * **Pipelining** — up to [`BatchConfig::pipeline_depth`] instances run
//!   concurrently at consecutive log positions (p, p+1, …): instance p+1
//!   opens while p is still in its accept phase. Accepts complete out of
//!   order; the write-ahead log applies strictly in position order (a
//!   decided p+1 parks until p decides), so pipelining never reorders the
//!   serialization.
//! * **Adaptive windows** — a small EWMA controller steers the window-size
//!   trigger between latency mode and throughput mode: windows that flush
//!   at the deadline with low occupancy shrink the target toward 1 (an
//!   uncontended submission starts its instance immediately instead of
//!   waiting out the window), windows that fill before the deadline grow it
//!   toward [`BatchConfig::max_batch`].
//!
//! # Pipeline invariants
//!
//! 1. **In-order apply.** Slots complete (decide) in any order, but entries
//!    install into the shared [`DatacenterCore`](crate::DatacenterCore)
//!    log, which applies only its gap-free prefix — a slot that decides
//!    ahead of its predecessor is installed but not applied until the
//!    predecessor decides.
//! 2. **Speculation is blind-write-only.** A slot above the head proposes
//!    for a position whose predecessors are undecided; a member with reads
//!    could be invalidated by whatever wins those positions. Only members
//!    (and combination candidates) with *empty read sets* — which no
//!    earlier entry can invalidate — may ride a speculative slot; members
//!    with reads wait for the pipeline to drain and board the head, where
//!    every earlier position is decided and their reads are revalidated.
//! 3. **Slot recovery.** A slot that loses its position (another proposer's
//!    value wins) pushes the winner through so the position still decides
//!    and installs, then reports the members the winner did not invalidate
//!    back as survivors ([`paxos::CommitOutcome::survivors`]); the
//!    committer reschedules them — in order, ahead of newer submissions —
//!    at the pipeline tail. Members the winner contains are recognized as
//!    committed and never proposed twice.
//!
//! The committer routes its fast-path leader claims through the directory's
//! per-group leader map ([`Directory::group_home`]), so a sharded workload
//! has each datacenter leading — and batching for — its own subset of
//! groups. Wire a committer with [`GroupCommitter::with_metrics`] to record
//! per-window occupancy, pipeline depth and split/stale counters into a
//! shared [`RunMetrics`].

use crate::datacenter::SharedCore;
use crate::directory::Directory;
use crate::metrics::RunMetrics;
use crate::msg::Msg;
use crate::session::{ClientAction, ClientConfig, TxnResult};
use parking_lot::Mutex;
use paxos::{CommitOutcome, CommitProtocol, PaxosMsg, Proposer, ProposerAction, ProposerEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::{NodeId, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use walog::combine::can_append;
use walog::{GroupId, LogPosition, Transaction, TxnId};

/// EWMA smoothing factor of the adaptive window controller: the weight of
/// the newest window's occupancy sample.
const OCCUPANCY_ALPHA: f64 = 0.35;

/// Tuning knobs of a [`GroupCommitter`].
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Hard cap on transactions per window (= per Paxos-CP instance).
    /// Batching is a Paxos-CP mechanism (one log entry, many transactions);
    /// under [`CommitProtocol::BasicPaxos`] the effective batch size is 1.
    pub max_batch: usize,
    /// Flush an incomplete window this long after its first submission.
    pub window: SimDuration,
    /// Maximum commit instances in flight at consecutive log positions
    /// (1 = the flush-and-wait behaviour of one instance at a time).
    pub pipeline_depth: usize,
    /// Steer the window-size trigger with the EWMA occupancy controller;
    /// when false the trigger is statically [`BatchConfig::max_batch`].
    pub adaptive: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            window: SimDuration::from_millis(5),
            pipeline_depth: 2,
            adaptive: true,
        }
    }
}

impl BatchConfig {
    /// Builder-style batch-size override.
    pub fn with_max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Builder-style pipeline-depth override.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Builder-style switch for the adaptive window controller.
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }
}

/// Observable counters of one [`GroupCommitter`] (also mirrored into a
/// shared [`RunMetrics`] when wired with [`GroupCommitter::with_metrics`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitterStats {
    /// Windows flushed into instances.
    pub windows_flushed: u64,
    /// Windows split because a member read an earlier member's write.
    pub batch_splits: u64,
    /// Members aborted by optimistic revalidation at flush time.
    pub stale_member_aborts: u64,
    /// Members rescheduled after their slot lost its position.
    pub survivor_resubmissions: u64,
    /// Deepest pipeline observed (instances in flight).
    pub max_depth_in_flight: u32,
}

/// A transaction waiting for an instance, with its pipeline bookkeeping.
struct PendingTxn {
    txn: Transaction,
    /// Positions this transaction already lost in earlier slots.
    promotions: u32,
    /// When it was first submitted (end-to-end latency baseline).
    enqueued_at: SimTime,
    /// Reads verified un-invalidated by every decided entry through this
    /// position; revalidation resumes from here at the next opening.
    validated_through: LogPosition,
}

/// One in-flight pipeline slot: an instance competing for one position.
struct Slot {
    position: LogPosition,
    proposer: Proposer,
    started_at: SimTime,
    /// Submission time of each member (survivors keep theirs across slots).
    enqueued: HashMap<TxnId, SimTime>,
}

/// The pipelined, adaptive commit engine for one transaction group.
///
/// Unlike [`crate::Session`] — which owns the read/write sets of its open
/// transactions — the committer accepts fully built [`Transaction`]s
/// (several application sessions' worth per window) and owns only their
/// journey through the commit protocol. The embedding actor — the group
/// home's [`crate::TransactionService`] for the submitted commit route, or
/// a harness actor driving the committer directly — forwards
/// messages/timers and executes the returned [`ClientAction`]s, exactly as
/// it would for a `Session`.
pub struct GroupCommitter {
    node: NodeId,
    group: GroupId,
    home_replica: usize,
    directory: Arc<Directory>,
    config: ClientConfig,
    batch: BatchConfig,
    rng: StdRng,
    /// Transactions waiting for an instance. Submission order, except that
    /// survivors of a lost slot re-enter at the front (they are older).
    window: VecDeque<PendingTxn>,
    /// Tag of the armed window-deadline timer, if any.
    window_tag: Option<u64>,
    /// In-flight instances, ascending by position.
    slots: Vec<Slot>,
    /// Highest position any slot has competed for. A speculative open must
    /// go strictly above it: a completed middle/tail slot's position is
    /// *decided*, and reopening it while the head is still in flight would
    /// be a guaranteed-loss retry loop. (An empty pipeline re-opens at the
    /// prefix regardless — re-proposing a possibly-orphaned position there
    /// is the self-healing path.)
    highest_opened: LogPosition,
    /// Committer timer tag → (slot position, proposer timer token).
    timer_routes: HashMap<u64, (LogPosition, u64)>,
    next_tag: u64,
    /// EWMA of window occupancy (members / max_batch), the controller input.
    ewma_occupancy: f64,
    stats: CommitterStats,
    metrics: Option<Arc<Mutex<RunMetrics>>>,
}

impl GroupCommitter {
    /// Create a committer for `group`, running on `node` and homed in the
    /// datacenter with replica index `home_replica`.
    pub fn new(
        node: NodeId,
        home_replica: usize,
        group: GroupId,
        directory: Arc<Directory>,
        config: ClientConfig,
        batch: BatchConfig,
    ) -> Self {
        GroupCommitter {
            node,
            group,
            home_replica,
            directory,
            config,
            batch,
            rng: StdRng::seed_from_u64(0x51ed_270b ^ node.0 as u64),
            window: VecDeque::new(),
            window_tag: None,
            slots: Vec::new(),
            highest_opened: LogPosition::ZERO,
            timer_routes: HashMap::new(),
            next_tag: 0,
            // Start in throughput mode (target = max_batch), matching the
            // static configuration until low occupancy is observed.
            ewma_occupancy: 1.0,
            stats: CommitterStats::default(),
            metrics: None,
        }
    }

    /// Record per-window occupancy, pipeline depth and split/stale counters
    /// into a shared [`RunMetrics`] sink as they happen (the same sink the
    /// embedding actor typically records [`TxnResult`]s into).
    pub fn with_metrics(mut self, metrics: Arc<Mutex<RunMetrics>>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The group this committer serves.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The group's current read position at the local datacenter: the
    /// position new transactions for this committer should read at.
    pub fn read_position(&self) -> LogPosition {
        self.home_core().lock().read_position(self.group)
    }

    /// Transactions buffered for a future instance.
    pub fn pending(&self) -> usize {
        self.window.len()
    }

    /// Whether any instance is currently in flight.
    pub fn committing(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Number of instances currently in flight (pipeline occupancy).
    pub fn depth_in_flight(&self) -> usize {
        self.slots.len()
    }

    /// The log positions of the in-flight instances, ascending.
    pub fn slot_positions(&self) -> Vec<LogPosition> {
        self.slots.iter().map(|s| s.position).collect()
    }

    /// The controller's current window-size trigger: a window flushes as
    /// soon as it holds this many transactions. 1 is latency mode (commit
    /// immediately), [`BatchConfig::max_batch`] is throughput mode.
    pub fn window_target(&self) -> usize {
        self.effective_cap()
    }

    /// Snapshot of the committer's observability counters.
    pub fn stats(&self) -> CommitterStats {
        self.stats
    }

    fn home_core(&self) -> SharedCore {
        self.directory.core(self.home_replica)
    }

    fn effective_cap(&self) -> usize {
        match self.config.protocol {
            CommitProtocol::BasicPaxos => 1,
            CommitProtocol::PaxosCp => {
                let max = self.batch.max_batch.max(1);
                if self.batch.adaptive {
                    ((self.ewma_occupancy * max as f64).round() as usize).clamp(1, max)
                } else {
                    max
                }
            }
        }
    }

    /// Feed one closed window's demand into the EWMA controller. Demand is
    /// the flushed members *plus* the backlog still buffered: a shrunken
    /// window flushes few members by construction, so the backlog is what
    /// signals that load returned and the target should grow again.
    fn update_controller(&mut self, demand: usize) {
        if !self.batch.adaptive {
            return;
        }
        let occ = (demand as f64 / self.batch.max_batch.max(1) as f64).min(1.0);
        self.ewma_occupancy = (1.0 - OCCUPANCY_ALPHA) * self.ewma_occupancy + OCCUPANCY_ALPHA * occ;
    }

    /// Drop every not-yet-proposed window member and return their ids.
    ///
    /// Used by a service recovering from a crash for groups it no longer
    /// homes: each dropped member's client timed out during the outage and
    /// re-submitted to the new home (nothing pending was ever answered), so
    /// flushing the stale copy here would race the new home's instance and
    /// could commit the transaction twice. In-flight slots are untouched —
    /// their instances were already proposed and must be driven to a
    /// decision either way.
    pub fn drop_pending_window(&mut self) -> Vec<TxnId> {
        self.window.drain(..).map(|p| p.txn.id).collect()
    }

    /// Submit a finished transaction for group commit. Returns the actions
    /// to execute (a flush's protocol messages when the window-size trigger
    /// fired, or a window-deadline timer).
    pub fn submit(&mut self, now: SimTime, txn: Transaction) -> Vec<ClientAction> {
        debug_assert_eq!(
            txn.group, self.group,
            "transaction routed to wrong committer"
        );
        let validated_through = txn.read_position;
        self.window.push_back(PendingTxn {
            txn,
            promotions: 0,
            enqueued_at: now,
            validated_through,
        });
        let mut out = Vec::new();
        self.open_slots(now, &mut out, false);
        self.ensure_window_timer(&mut out);
        out
    }

    /// Flush the current window immediately (into a speculative slot when
    /// instances are already in flight and depth allows).
    pub fn flush(&mut self, now: SimTime) -> Vec<ClientAction> {
        let mut out = Vec::new();
        self.open_slots(now, &mut out, true);
        self.ensure_window_timer(&mut out);
        out
    }

    fn ensure_window_timer(&mut self, out: &mut Vec<ClientAction>) {
        if self.window.is_empty() {
            self.window_tag = None;
            return;
        }
        if self.window_tag.is_some() {
            return;
        }
        self.next_tag += 1;
        let tag = self.next_tag;
        self.window_tag = Some(tag);
        out.push(ClientAction::ArmTimer {
            delay: self.batch.window,
            tag,
        });
    }

    /// Open as many pipeline slots as the window, the depth and the
    /// speculation rules allow. With `force` false, a slot opens only when
    /// the buffered window has reached the controller's size trigger
    /// (submission path); deadline/flush/completion paths force.
    fn open_slots(&mut self, now: SimTime, out: &mut Vec<ClientAction>, force: bool) {
        loop {
            if self.slots.len() >= self.batch.pipeline_depth.max(1) || self.window.is_empty() {
                return;
            }
            let cap = self.effective_cap();
            if !force && self.window.len() < cap {
                return;
            }
            let core = self.home_core();
            let core_guard = core.lock();
            let prefix = core_guard.read_position(self.group);
            // The head slot proposes for the first undecided position; a
            // speculative slot for the position after the last in-flight one
            // (invariant 2: blind-write members only above the head).
            let speculative = !self.slots.is_empty();
            let position = match self.slots.last() {
                Some(last) => last
                    .position
                    .next()
                    .max(prefix.next())
                    .max(self.highest_opened.next()),
                None => prefix.next(),
            };
            let pendings: Vec<PendingTxn> = self.window.drain(..).collect();
            // Chosen members move into `txns` (the proposer owns them);
            // only the Copy bookkeeping survives alongside.
            let mut chosen_meta: Vec<(TxnId, SimTime)> = Vec::new();
            let mut promo_class: Option<u32> = None;
            let mut txns: Vec<Transaction> = Vec::new();
            let mut kept: VecDeque<PendingTxn> = VecDeque::new();
            let mut split = false;
            for mut pending in pendings {
                // A member already present in the group log is a retried
                // submission whose original proposal won (the retry slipped
                // past the service-side dedup, e.g. across a group-home
                // migration). Proposing it again would commit it twice;
                // answer committed instead.
                if core_guard.is_committed(self.group, pending.txn.id) {
                    if let Some(metrics) = &self.metrics {
                        metrics.lock().duplicate_suppressions += 1;
                    }
                    out.push(ClientAction::Finished(TxnResult {
                        committed: true,
                        read_only: false,
                        promotions: pending.promotions,
                        combined: false,
                        rounds: 0,
                        latency: now.since(pending.enqueued_at),
                        total_latency: now.since(pending.enqueued_at),
                        abort_reason: None,
                        txn: Some(pending.txn.id),
                    }));
                    continue;
                }
                // Optimistic revalidation, incremental: entries decided
                // since the member's last validated position must not have
                // written anything it read. One core lock covers the whole
                // opening; a member already validated through this prefix
                // costs nothing.
                if pending.validated_through < prefix {
                    let log = core_guard.log(self.group);
                    let invalidated = log.is_some_and(|log| {
                        (pending.validated_through.0 + 1..=prefix.0)
                            .map(LogPosition)
                            .filter_map(|p| log.get(p))
                            .any(|entry| entry.invalidates_reads_of(&pending.txn))
                    });
                    if invalidated {
                        self.stats.stale_member_aborts += 1;
                        if let Some(metrics) = &self.metrics {
                            metrics.lock().stale_member_aborts += 1;
                        }
                        out.push(ClientAction::Finished(TxnResult {
                            committed: false,
                            read_only: false,
                            promotions: pending.promotions,
                            combined: false,
                            rounds: 0,
                            latency: now.since(pending.enqueued_at),
                            total_latency: now.since(pending.enqueued_at),
                            abort_reason: Some(paxos::AbortReason::Conflict),
                            txn: Some(pending.txn.id),
                        }));
                        continue;
                    }
                    pending.validated_through = prefix;
                }
                // A slot's batch is homogeneous in promotion count: the
                // proposer carries one `prior_promotions` for the whole
                // batch (for the cap and for reporting), so a fresh member
                // must not ride with a rescheduled survivor and inherit its
                // losses. Survivors sit at the window front, so they form
                // their own slot first.
                let same_class = promo_class.is_none_or(|class| class == pending.promotions);
                // A member's read snapshot must sit strictly below the slot
                // it commits at, or the commit would be serialized before
                // state the member already observed. Normally the home's
                // prefix covers every local snapshot, but a member routed
                // from a remote datacenter — or a home freshly restarted
                // from disk — can carry a read position ahead of this
                // replica's prefix; it waits in the window until catch-up
                // brings the prefix past its snapshot.
                let snapshot_below_slot = pending.txn.read_position < position;
                let eligible = snapshot_below_slot
                    && (!speculative || pending.txn.reads().is_empty())
                    && same_class;
                if eligible && chosen_meta.len() < cap {
                    if can_append(&txns, &pending.txn) {
                        promo_class = Some(pending.promotions);
                        chosen_meta.push((pending.txn.id, pending.enqueued_at));
                        txns.push(pending.txn);
                        continue;
                    }
                    // Internally conflicting window: the member reads an
                    // earlier member's write, so it waits for a later
                    // instance instead of invalidating the combination.
                    split = true;
                }
                kept.push_back(pending);
            }
            // Release the core before driving the proposer: its `Learned`
            // installs re-lock the same mutex.
            drop(core_guard);
            self.window = kept;
            if split {
                self.stats.batch_splits += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.lock().batch_splits += 1;
                }
            }
            if chosen_meta.is_empty() {
                return;
            }
            let prior = promo_class.unwrap_or(0);
            let cfg = self.config.proposer_config(self.directory.num_replicas());
            let mut proposer = Proposer::new_batch_pipelined(
                cfg,
                self.group,
                self.node.0 as u64,
                txns,
                position,
                prior,
                speculative,
            );
            let actions = proposer.start();
            let occupancy = chosen_meta.len();
            let enqueued = chosen_meta.into_iter().collect();
            self.slots.push(Slot {
                position,
                proposer,
                started_at: now,
                enqueued,
            });
            self.highest_opened = self.highest_opened.max(position);
            let depth = self.slots.len() as u32;
            self.stats.windows_flushed += 1;
            self.stats.max_depth_in_flight = self.stats.max_depth_in_flight.max(depth);
            let demand = occupancy + self.window.len();
            self.update_controller(demand);
            if let Some(metrics) = &self.metrics {
                let mut metrics = metrics.lock();
                metrics.window_occupancy.push(occupancy as u32);
                metrics.pipeline_depth.push(depth);
            }
            self.apply_slot_actions(now, position, actions, out);
        }
    }

    /// Feed an incoming message (commit-protocol replies) into the
    /// committer; the carried position routes it to its pipeline slot.
    pub fn on_message(&mut self, now: SimTime, from: NodeId, msg: &Msg) -> Vec<ClientAction> {
        let Msg::Paxos(paxos_msg) = msg else {
            return Vec::new();
        };
        let Some(replica) = self.directory.replica_of_service(from) else {
            return Vec::new();
        };
        let event = match paxos_msg {
            PaxosMsg::PrepareReply {
                position,
                ballot,
                promised,
                next_bal,
                last_vote,
                ..
            } => ProposerEvent::PrepareReply {
                from: replica,
                position: *position,
                ballot: *ballot,
                promised: *promised,
                next_bal: *next_bal,
                last_vote: last_vote.clone(),
            },
            PaxosMsg::AcceptReply {
                position,
                ballot,
                accepted,
                ..
            } => ProposerEvent::AcceptReply {
                from: replica,
                position: *position,
                ballot: *ballot,
                accepted: *accepted,
            },
            PaxosMsg::LeaderClaimReply {
                position, granted, ..
            } => ProposerEvent::FastPathReply {
                position: *position,
                granted: *granted,
            },
            _ => return Vec::new(),
        };
        let position = paxos_msg.position();
        self.drive_slot(now, position, event)
    }

    /// Feed a timer expiration (tag previously returned in
    /// [`ClientAction::ArmTimer`]) into the committer.
    pub fn on_timer(&mut self, now: SimTime, tag: u64) -> Vec<ClientAction> {
        if self.window_tag == Some(tag) {
            self.window_tag = None;
            return self.flush(now);
        }
        let Some((position, token)) = self.timer_routes.remove(&tag) else {
            return Vec::new();
        };
        self.drive_slot(now, position, ProposerEvent::Timer { token })
    }

    fn drive_slot(
        &mut self,
        now: SimTime,
        position: LogPosition,
        event: ProposerEvent,
    ) -> Vec<ClientAction> {
        let Some(idx) = self.slots.iter().position(|s| s.position == position) else {
            // A reply or timer for a slot that already finished.
            return Vec::new();
        };
        let actions = self.slots[idx].proposer.on_event(event);
        let mut out = Vec::new();
        self.apply_slot_actions(now, position, actions, &mut out);
        out
    }

    fn apply_slot_actions(
        &mut self,
        now: SimTime,
        slot_position: LogPosition,
        actions: Vec<ProposerAction>,
        out: &mut Vec<ClientAction>,
    ) {
        for action in actions {
            match action {
                ProposerAction::Broadcast(msg) => {
                    for replica in 0..self.directory.num_replicas() {
                        out.push(ClientAction::Send(
                            self.directory.service_node(replica),
                            Msg::Paxos(msg.clone()),
                        ));
                    }
                }
                ProposerAction::SendToLeader(msg) => {
                    let leader = self.directory.leader_replica(
                        self.home_replica,
                        self.group,
                        msg.position(),
                    );
                    out.push(ClientAction::Send(
                        self.directory.service_node(leader),
                        Msg::Paxos(msg),
                    ));
                }
                ProposerAction::ArmTimer { token, kind } => {
                    let delay = self.config.timer_delay(kind, &mut self.rng);
                    self.next_tag += 1;
                    let tag = self.next_tag;
                    self.timer_routes.insert(tag, (slot_position, token));
                    out.push(ClientAction::ArmTimer { delay, tag });
                }
                ProposerAction::Learned { position, entry } => {
                    self.home_core()
                        .lock()
                        .install_entry(self.group, position, entry);
                }
                ProposerAction::Finished(outcome) => {
                    self.finish_slot(now, slot_position, outcome, out);
                }
            }
        }
    }

    /// A slot's instance finished: report per-member fates, reschedule
    /// survivors at the pipeline tail (in order, ahead of newer
    /// submissions) and refill the pipeline.
    fn finish_slot(
        &mut self,
        now: SimTime,
        position: LogPosition,
        outcome: CommitOutcome,
        out: &mut Vec<ClientAction>,
    ) {
        let idx = self
            .slots
            .iter()
            .position(|s| s.position == position)
            .expect("finished implies an in-flight slot");
        let slot = self.slots.remove(idx);
        // For a batched commit the submission *is* the commit request, so
        // commit latency runs from `submit` — it includes the window wait
        // the adaptive controller exists to cut, not just the protocol
        // round trips of the final instance.
        let latency_of = |id: &TxnId| {
            slot.enqueued
                .get(id)
                .map(|t| now.since(*t))
                .unwrap_or_else(|| now.since(slot.started_at))
        };
        for id in &outcome.committed_txns {
            out.push(ClientAction::Finished(TxnResult {
                committed: true,
                read_only: false,
                promotions: outcome.promotions,
                combined: outcome.combined,
                rounds: outcome.rounds,
                latency: latency_of(id),
                total_latency: latency_of(id),
                abort_reason: None,
                txn: Some(*id),
            }));
        }
        for (id, reason) in &outcome.aborted_txns {
            out.push(ClientAction::Finished(TxnResult {
                committed: false,
                read_only: false,
                promotions: outcome.promotions,
                combined: false,
                rounds: outcome.rounds,
                latency: latency_of(id),
                total_latency: latency_of(id),
                abort_reason: Some(*reason),
                txn: Some(*id),
            }));
        }
        for txn in outcome.survivors.into_iter().rev() {
            self.stats.survivor_resubmissions += 1;
            let enqueued_at = slot.enqueued.get(&txn.id).copied().unwrap_or(now);
            // Survivors revalidate from scratch: the winner that displaced
            // them was checked (`invalidates_reads_of`), but other
            // positions may have decided since their original validation.
            let validated_through = txn.read_position;
            self.window.push_front(PendingTxn {
                txn,
                promotions: outcome.promotions,
                enqueued_at,
                validated_through,
            });
        }
        self.open_slots(now, out, true);
        self.ensure_window_timer(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DatacenterCore;
    use paxos::Ballot;
    use walog::{ItemRef, LogEntry, TxnId};

    fn harness_with(batch: BatchConfig) -> (Arc<Directory>, GroupCommitter) {
        let dir = Directory::new();
        dir.register_datacenter(NodeId(0), DatacenterCore::shared("dc0", 0));
        dir.register_client(NodeId(5), 0);
        let committer = GroupCommitter::new(
            NodeId(5),
            0,
            GroupId(0),
            dir.clone(),
            ClientConfig::cp(),
            batch,
        );
        (dir, committer)
    }

    fn harness() -> (Arc<Directory>, GroupCommitter) {
        harness_with(BatchConfig::default().with_max_batch(2))
    }

    fn txn(dir: &Directory, seq: u64, attr: &str, read_position: LogPosition) -> Transaction {
        let item = dir.symbols().item("row", attr);
        Transaction::builder(TxnId::new(5, seq), GroupId(0), read_position)
            .write(ItemRef::new(item.key, item.attr), "v")
            .build()
    }

    /// Drive one slot's instance to completion against the single-replica
    /// harness: grant its fast-path claim, then ack its accept.
    fn complete_instance(
        committer: &mut GroupCommitter,
        now: SimTime,
        actions: &[ClientAction],
    ) -> Vec<ClientAction> {
        let claim_position = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(_, Msg::Paxos(PaxosMsg::LeaderClaim { position, .. })) => {
                    Some(*position)
                }
                _ => None,
            })
            .expect("fast path claim");
        let actions = committer.on_message(
            now,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::LeaderClaimReply {
                group: GroupId(0),
                position: claim_position,
                granted: true,
            }),
        );
        let (position, ballot) = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(
                    _,
                    Msg::Paxos(PaxosMsg::Accept {
                        position, ballot, ..
                    }),
                ) => Some((*position, *ballot)),
                _ => None,
            })
            .expect("accept broadcast");
        committer.on_message(
            now,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::AcceptReply {
                group: GroupId(0),
                position,
                ballot,
                accepted: true,
            }),
        )
    }

    #[test]
    fn first_submission_arms_the_window_timer() {
        let (dir, mut committer) = harness();
        let actions = committer.submit(SimTime::ZERO, txn(&dir, 1, "a", LogPosition::ZERO));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], ClientAction::ArmTimer { .. }));
        assert_eq!(committer.pending(), 1);
        assert!(!committer.committing());
    }

    #[test]
    fn full_window_flushes_into_one_instance() {
        let (dir, mut committer) = harness();
        committer.submit(SimTime::ZERO, txn(&dir, 1, "a", LogPosition::ZERO));
        let actions = committer.submit(SimTime::ZERO, txn(&dir, 2, "b", LogPosition::ZERO));
        // The flush starts the protocol: a leader claim (fast path) plus a
        // timer.
        assert!(actions.iter().any(|a| matches!(
            a,
            ClientAction::Send(_, Msg::Paxos(PaxosMsg::LeaderClaim { .. }))
        )));
        assert!(committer.committing());
        assert_eq!(committer.pending(), 0);
    }

    #[test]
    fn window_timer_flushes_a_partial_window() {
        let (dir, mut committer) = harness();
        let actions = committer.submit(SimTime::ZERO, txn(&dir, 1, "a", LogPosition::ZERO));
        let ClientAction::ArmTimer { tag, .. } = actions[0] else {
            panic!("expected window timer");
        };
        let actions = committer.on_timer(SimTime::from_micros(5_000), tag);
        assert!(!actions.is_empty());
        assert!(committer.committing());
    }

    #[test]
    fn conflicting_window_members_are_deferred_not_combined() {
        let (dir, mut committer) = harness();
        let item = dir.symbols().item("row", "a");
        let writer = Transaction::builder(TxnId::new(5, 1), GroupId(0), LogPosition::ZERO)
            .write(ItemRef::new(item.key, item.attr), "v")
            .build();
        let reader = Transaction::builder(TxnId::new(5, 2), GroupId(0), LogPosition::ZERO)
            .read(ItemRef::new(item.key, item.attr), None)
            .write(dir.symbols().item("row", "b"), "w")
            .build();
        committer.submit(SimTime::ZERO, writer);
        committer.submit(SimTime::ZERO, reader);
        // The reader reads the writer's item: it must not ride in the same
        // entry, so it stays pending while the writer's instance runs — and
        // it must not board a speculative slot either (it has reads).
        assert!(committer.committing());
        assert_eq!(committer.depth_in_flight(), 1);
        assert_eq!(committer.pending(), 1);
        assert_eq!(committer.stats().batch_splits, 1);
    }

    #[test]
    fn a_member_whose_snapshot_is_ahead_of_the_home_waits_for_catch_up() {
        // A commit request routed from an up-to-date datacenter can carry a
        // read position the home has not reached (typically because the home
        // just restarted and is still catching up). Boarding a slot at or
        // below that snapshot would serialize the member before state it
        // already observed, so it waits in the window until the home's
        // prefix passes its read position.
        let (dir, mut committer) = harness();
        committer.submit(SimTime::ZERO, txn(&dir, 1, "a", LogPosition(3)));
        committer.submit(SimTime::ZERO, txn(&dir, 2, "b", LogPosition(3)));
        // The full window tried to flush, but position 1 sits below both
        // snapshots: nothing proposes, everything stays pending.
        assert!(!committer.committing());
        assert_eq!(committer.pending(), 2);
        // Catch-up: decided entries from the rest of the cluster land.
        let core = dir.core(0);
        for p in 1..=3u64 {
            let filler = Transaction::builder(TxnId::new(9, p), GroupId(0), LogPosition(p - 1))
                .write(dir.symbols().item("row", "z"), "w")
                .build();
            core.lock().install_entry(
                GroupId(0),
                LogPosition(p),
                Arc::new(LogEntry::single(filler)),
            );
        }
        committer.flush(SimTime::from_micros(5_000));
        assert!(committer.committing(), "prefix 3 unlocks the slot at 4");
        assert_eq!(committer.pending(), 0);
    }

    #[test]
    fn drop_pending_window_returns_every_buffered_member() {
        let (dir, mut committer) = harness_with(BatchConfig::default().with_max_batch(8));
        committer.submit(SimTime::ZERO, txn(&dir, 1, "a", LogPosition::ZERO));
        committer.submit(SimTime::ZERO, txn(&dir, 2, "b", LogPosition::ZERO));
        let dropped = committer.drop_pending_window();
        assert_eq!(dropped, vec![TxnId::new(5, 1), TxnId::new(5, 2)]);
        assert_eq!(committer.pending(), 0);
        assert!(!committer.committing());
    }

    #[test]
    fn submissions_piled_past_the_cap_spill_into_the_next_instance() {
        // Depth 1 (flush-and-wait): fill the window (instance 1 starts with
        // t1,t2), pile up three more submissions while it is in flight, then
        // complete the instance and check that the next one takes exactly
        // the cap and the tail stays pending — no transaction vanishes.
        let (dir, mut committer) = harness_with(
            BatchConfig::default()
                .with_max_batch(2)
                .with_pipeline_depth(1)
                .with_adaptive(false),
        );
        let now = SimTime::ZERO;
        committer.submit(now, txn(&dir, 1, "a", LogPosition::ZERO));
        let actions = committer.submit(now, txn(&dir, 2, "b", LogPosition::ZERO));
        assert!(committer.committing());
        for (i, attr) in ["c", "d", "e"].iter().enumerate() {
            committer.submit(now, txn(&dir, 3 + i as u64, attr, LogPosition::ZERO));
        }
        assert_eq!(committer.pending(), 3);

        let actions = complete_instance(&mut committer, now, &actions);
        let finished = actions
            .iter()
            .filter(|a| matches!(a, ClientAction::Finished(r) if r.committed))
            .count();
        assert_eq!(finished, 2, "instance 1 commits t1 and t2");
        // Instance 2 took t3,t4 (the cap); t5 spilled back into the window.
        assert!(committer.committing());
        assert_eq!(
            committer.pending(),
            1,
            "the member past the cap must stay pending, not vanish"
        );
    }

    #[test]
    fn stale_members_abort_at_flush() {
        let (dir, mut committer) = harness();
        // Decide position 1 writing "a"; a member that read "a" at position
        // 0 is stale by flush time.
        let decided = txn(&dir, 9, "a", LogPosition::ZERO);
        dir.core(0).lock().install_entry(
            GroupId(0),
            LogPosition(1),
            Arc::new(walog::LogEntry::single(decided)),
        );
        let item = dir.symbols().item("row", "a");
        let stale = Transaction::builder(TxnId::new(5, 1), GroupId(0), LogPosition::ZERO)
            .read(ItemRef::new(item.key, item.attr), None)
            .write(dir.symbols().item("row", "b"), "w")
            .build();
        committer.submit(SimTime::ZERO, stale);
        let actions = committer.flush(SimTime::ZERO);
        assert!(actions.iter().any(|a| matches!(
            a,
            ClientAction::Finished(TxnResult {
                committed: false,
                abort_reason: Some(paxos::AbortReason::Conflict),
                ..
            })
        )));
        assert!(!committer.committing());
        assert_eq!(committer.stats().stale_member_aborts, 1);
    }

    #[test]
    fn pipeline_opens_a_second_slot_while_the_first_is_in_flight() {
        let (dir, mut committer) = harness_with(
            BatchConfig::default()
                .with_max_batch(2)
                .with_pipeline_depth(2)
                .with_adaptive(false),
        );
        let now = SimTime::ZERO;
        committer.submit(now, txn(&dir, 1, "a", LogPosition::ZERO));
        committer.submit(now, txn(&dir, 2, "b", LogPosition::ZERO));
        assert_eq!(committer.depth_in_flight(), 1);
        committer.submit(now, txn(&dir, 3, "c", LogPosition::ZERO));
        let actions = committer.submit(now, txn(&dir, 4, "d", LogPosition::ZERO));
        // The second window opens instance p+1 while p is still in flight.
        assert_eq!(committer.depth_in_flight(), 2);
        assert_eq!(
            committer.slot_positions(),
            vec![LogPosition(1), LogPosition(2)]
        );
        assert_eq!(committer.pending(), 0);
        assert!(actions.iter().any(|a| matches!(
            a,
            ClientAction::Send(
                _,
                Msg::Paxos(PaxosMsg::LeaderClaim {
                    position: LogPosition(2),
                    ..
                })
            )
        )));
        assert_eq!(committer.stats().max_depth_in_flight, 2);
    }

    #[test]
    fn out_of_order_decide_installs_but_defers_apply_to_position_order() {
        // Two slots in flight; the *second* position decides first. Its
        // entry must be installed (durable) but the group's read position
        // must stay put until the first position decides too.
        let (dir, mut committer) = harness_with(
            BatchConfig::default()
                .with_max_batch(1)
                .with_pipeline_depth(2)
                .with_adaptive(false),
        );
        let now = SimTime::ZERO;
        let a1 = committer.submit(now, txn(&dir, 1, "a", LogPosition::ZERO));
        let a2 = committer.submit(now, txn(&dir, 2, "b", LogPosition::ZERO));
        assert_eq!(committer.depth_in_flight(), 2);
        // Complete slot 2 (position 2) first.
        let done2 = complete_instance(&mut committer, now, &a2);
        assert!(done2
            .iter()
            .any(|a| matches!(a, ClientAction::Finished(r) if r.committed)));
        assert!(dir.core(0).lock().has_entry(GroupId(0), LogPosition(2)));
        assert_eq!(
            dir.core(0).lock().read_position(GroupId(0)),
            LogPosition::ZERO,
            "position 2 must not apply before position 1 decides"
        );
        // Now complete slot 1; the prefix catches up through both.
        complete_instance(&mut committer, now, &a1);
        assert_eq!(dir.core(0).lock().read_position(GroupId(0)), LogPosition(2));
        assert!(!committer.committing());
    }

    #[test]
    fn completed_tail_position_is_not_reopened_while_the_head_is_in_flight() {
        // Slots at positions 1 and 2; position 2 decides first. A member
        // submitted afterwards must open at position 3 — position 2 is
        // decided, and competing for it again would be a guaranteed loss.
        let (dir, mut committer) = harness_with(
            BatchConfig::default()
                .with_max_batch(1)
                .with_pipeline_depth(2)
                .with_adaptive(false),
        );
        let now = SimTime::ZERO;
        committer.submit(now, txn(&dir, 1, "a", LogPosition::ZERO));
        let a2 = committer.submit(now, txn(&dir, 2, "b", LogPosition::ZERO));
        complete_instance(&mut committer, now, &a2);
        assert_eq!(committer.slot_positions(), vec![LogPosition(1)]);
        committer.submit(now, txn(&dir, 3, "c", LogPosition::ZERO));
        assert_eq!(
            committer.slot_positions(),
            vec![LogPosition(1), LogPosition(3)],
            "the decided position 2 must be skipped"
        );
    }

    #[test]
    fn speculative_slots_carry_only_blind_writes() {
        let (dir, mut committer) = harness_with(
            BatchConfig::default()
                .with_max_batch(1)
                .with_pipeline_depth(3)
                .with_adaptive(false),
        );
        let now = SimTime::ZERO;
        committer.submit(now, txn(&dir, 1, "a", LogPosition::ZERO));
        assert_eq!(committer.depth_in_flight(), 1);
        // A member with reads must not board a speculative slot.
        let item = dir.symbols().item("row", "z");
        let reader = Transaction::builder(TxnId::new(5, 2), GroupId(0), LogPosition::ZERO)
            .read(ItemRef::new(item.key, item.attr), None)
            .write(dir.symbols().item("row", "y"), "w")
            .build();
        committer.submit(now, reader);
        assert_eq!(committer.depth_in_flight(), 1, "reader must not speculate");
        assert_eq!(committer.pending(), 1);
        // A blind write may.
        committer.submit(now, txn(&dir, 3, "c", LogPosition::ZERO));
        assert_eq!(committer.depth_in_flight(), 2);
        assert_eq!(committer.pending(), 1, "the reader still waits");
    }

    #[test]
    fn lost_slot_installs_winner_and_resubmits_survivors_at_the_tail() {
        // Another proposer's value already has a (single-replica) majority
        // of votes for position 1. The slot must adopt and push it through
        // (so the local prefix advances), then reschedule its members into
        // a new instance at position 2 — exactly once.
        let (dir, mut committer) = harness_with(
            BatchConfig::default()
                .with_max_batch(2)
                .with_pipeline_depth(2)
                .with_adaptive(false),
        );
        let now = SimTime::ZERO;
        let foreign = Transaction::builder(TxnId::new(9, 50), GroupId(0), LogPosition::ZERO)
            .write(dir.symbols().item("row", "f"), "theirs")
            .build();
        let foreign_entry = Arc::new(LogEntry::single(foreign));
        let foreign_ballot = Ballot::initial(9);
        committer.submit(now, txn(&dir, 1, "a", LogPosition::ZERO));
        let actions = committer.submit(now, txn(&dir, 2, "b", LogPosition::ZERO));
        // Deny the fast path so the slot runs a full prepare.
        let claim_position = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(_, Msg::Paxos(PaxosMsg::LeaderClaim { position, .. })) => {
                    Some(*position)
                }
                _ => None,
            })
            .expect("claim");
        let actions = committer.on_message(
            now,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::LeaderClaimReply {
                group: GroupId(0),
                position: claim_position,
                granted: false,
            }),
        );
        let (position, ballot) = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(
                    _,
                    Msg::Paxos(PaxosMsg::Prepare {
                        position, ballot, ..
                    }),
                ) => Some((*position, *ballot)),
                _ => None,
            })
            .expect("prepare broadcast");
        // The only replica's vote carries the foreign value: a majority.
        let actions = committer.on_message(
            now,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::PrepareReply {
                group: GroupId(0),
                position,
                ballot,
                promised: true,
                next_bal: None,
                last_vote: Some((foreign_ballot, Arc::clone(&foreign_entry))),
            }),
        );
        // The slot adopts the winner and pushes it through accept.
        let (position, ballot) = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(
                    _,
                    Msg::Paxos(PaxosMsg::Accept {
                        position,
                        ballot,
                        value,
                        ..
                    }),
                ) if Arc::ptr_eq(value, &foreign_entry) => Some((*position, *ballot)),
                _ => None,
            })
            .expect("the lost slot must push the winning value through");
        let actions = committer.on_message(
            now,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::AcceptReply {
                group: GroupId(0),
                position,
                ballot,
                accepted: true,
            }),
        );
        // The winner installed locally; survivors were rescheduled into a
        // fresh instance at position 2, nothing finished as committed yet.
        assert!(dir.core(0).lock().has_entry(GroupId(0), LogPosition(1)));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, ClientAction::Finished(r) if r.committed)));
        assert_eq!(committer.stats().survivor_resubmissions, 2);
        assert_eq!(committer.slot_positions(), vec![LogPosition(2)]);
        assert_eq!(committer.pending(), 0);
        // Completing the new instance commits both members exactly once,
        // with the lost position counted as a promotion.
        let done = complete_instance(&mut committer, now, &actions);
        let commits: Vec<&TxnResult> = done
            .iter()
            .filter_map(|a| match a {
                ClientAction::Finished(r) if r.committed => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(commits.len(), 2);
        assert!(commits.iter().all(|r| r.promotions == 1));
        assert!(!committer.committing());
    }

    #[test]
    fn adaptive_window_shrinks_to_one_under_trickle_load_and_regrows() {
        let (dir, mut committer) = harness_with(
            BatchConfig::default()
                .with_max_batch(8)
                .with_pipeline_depth(1),
        );
        assert_eq!(
            committer.window_target(),
            8,
            "the controller starts in throughput mode"
        );
        // A trickle: each window holds one transaction, flushed by its
        // deadline, instance completed before the next submission.
        let mut now = SimTime::ZERO;
        for seq in 1..=20 {
            now = SimTime::from_micros(seq * 50_000);
            let actions = committer.submit(now, txn(&dir, seq, "a", committer.read_position()));
            let actions = if committer.committing() {
                actions
            } else {
                // Deadline flush.
                let tag = actions
                    .iter()
                    .find_map(|a| match a {
                        ClientAction::ArmTimer { tag, .. } => Some(*tag),
                        _ => None,
                    })
                    .expect("window timer");
                committer.on_timer(now, tag)
            };
            complete_instance(&mut committer, now, &actions);
            if committer.window_target() == 1 {
                break;
            }
        }
        assert_eq!(
            committer.window_target(),
            1,
            "low occupancy must shrink the window to latency mode"
        );
        // In latency mode a single submission flushes immediately.
        let actions = committer.submit(now, txn(&dir, 90, "b", committer.read_position()));
        assert!(committer.committing(), "latency mode commits on submit");
        let done = complete_instance(&mut committer, now, &actions);
        assert!(done
            .iter()
            .any(|a| matches!(a, ClientAction::Finished(r) if r.committed)));
        // A returning burst (deep backlog at every flush) grows the target
        // back toward the cap while the pipeline drains it.
        let mut actions = Vec::new();
        for seq in 0..40 {
            actions.extend(
                committer.submit(now, txn(&dir, 100 + seq, "c", committer.read_position())),
            );
        }
        let mut grew = committer.window_target();
        let mut guard = 0;
        while committer.committing() {
            actions = complete_instance(&mut committer, now, &actions);
            grew = grew.max(committer.window_target());
            guard += 1;
            assert!(guard < 100, "the burst must drain");
        }
        assert!(grew >= 4, "a deep backlog must grow the target, got {grew}");
        assert_eq!(committer.pending(), 0, "the burst must fully drain");
    }
}
