//! Client-side proposal batching: the per-group committer.
//!
//! The paper's evaluation runs one Paxos instance per transaction. A
//! [`GroupCommitter`] instead collects the independent transactions a
//! client produces for one group within a submission window and commits
//! them in a **single** Paxos-CP instance: the batch travels as one
//! combined log entry, so one prepare/accept exchange plus one piggybacked
//! apply broadcast decide every member — the wide-area round trips that
//! dominate geo-replicated commit latency are amortized over the whole
//! batch.
//!
//! The pipeline per window:
//!
//! 1. [`GroupCommitter::submit`] buffers finished transactions; a window
//!    flushes when it reaches [`BatchConfig::max_batch`] members, when its
//!    [`BatchConfig::window`] deadline fires, or on an explicit
//!    [`GroupCommitter::flush`].
//! 2. At flush, members whose reads a log entry decided since their read
//!    position has invalidated are aborted immediately (ordinary optimistic
//!    validation); the rest run through
//!    [`walog::combine::partition_compatible`] — members that would read an
//!    earlier member's write are deferred to the next instance, so an
//!    internally conflicting window *splits* instead of proposing an
//!    invalid combination.
//! 3. The surviving batch drives one [`paxos::Proposer`] (built with
//!    [`paxos::Proposer::new_batch`]). Losses are handled per member:
//!    members a winning entry invalidates abort, members the winner already
//!    contains are recognized as committed, and the rest promote together.
//! 4. Every member's fate is reported as its own
//!    [`ClientAction::Finished`]; the next window (including deferred
//!    members) starts automatically.
//!
//! The committer routes its fast-path leader claim through the directory's
//! per-group leader map ([`Directory::group_home`]), so a sharded workload
//! has each datacenter leading — and batching for — its own subset of
//! groups.

use crate::client::{ClientAction, ClientConfig, TxnResult};
use crate::datacenter::SharedCore;
use crate::directory::Directory;
use crate::msg::Msg;
use paxos::{CommitProtocol, PaxosMsg, Proposer, ProposerAction, ProposerEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::{NodeId, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;
use walog::combine::partition_compatible;
use walog::{GroupId, LogPosition, Transaction};

/// Tuning knobs of a [`GroupCommitter`].
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Flush the window as soon as it holds this many transactions.
    /// Batching is a Paxos-CP mechanism (one log entry, many transactions);
    /// under [`CommitProtocol::BasicPaxos`] the effective batch size is 1.
    pub max_batch: usize,
    /// Flush an incomplete window this long after its first submission.
    pub window: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            window: SimDuration::from_millis(5),
        }
    }
}

impl BatchConfig {
    /// Builder-style batch-size override.
    pub fn with_max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }
}

/// One in-flight batch instance.
struct Inflight {
    proposer: Proposer,
    started_at: SimTime,
    /// Committer timer tag → proposer timer token.
    timer_tokens: HashMap<u64, u64>,
}

/// A batching commit pipeline for one transaction group.
///
/// Unlike [`crate::TransactionClient`] — which owns the read/write sets of
/// a single active transaction — the committer accepts fully built
/// [`Transaction`]s (several application sessions' worth per window) and
/// owns only their journey through the commit protocol. The embedding
/// actor forwards messages/timers and executes the returned
/// [`ClientAction`]s, exactly as it would for a `TransactionClient`.
pub struct GroupCommitter {
    node: NodeId,
    group: GroupId,
    home_replica: usize,
    directory: Arc<Directory>,
    config: ClientConfig,
    batch: BatchConfig,
    rng: StdRng,
    /// Transactions waiting for the next instance (submission order).
    window: Vec<Transaction>,
    /// Tag of the armed window-deadline timer, if any.
    window_tag: Option<u64>,
    inflight: Option<Inflight>,
    next_tag: u64,
}

impl GroupCommitter {
    /// Create a committer for `group`, running on `node` and homed in the
    /// datacenter with replica index `home_replica`.
    pub fn new(
        node: NodeId,
        home_replica: usize,
        group: GroupId,
        directory: Arc<Directory>,
        config: ClientConfig,
        batch: BatchConfig,
    ) -> Self {
        GroupCommitter {
            node,
            group,
            home_replica,
            directory,
            config,
            batch,
            rng: StdRng::seed_from_u64(0x51ed_270b ^ node.0 as u64),
            window: Vec::new(),
            window_tag: None,
            inflight: None,
            next_tag: 0,
        }
    }

    /// The group this committer serves.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The group's current read position at the local datacenter: the
    /// position new transactions for this committer should read at.
    pub fn read_position(&self) -> LogPosition {
        self.home_core().lock().read_position(self.group)
    }

    /// Transactions buffered for a future instance.
    pub fn pending(&self) -> usize {
        self.window.len()
    }

    /// Whether a batch instance is currently in flight.
    pub fn committing(&self) -> bool {
        self.inflight.is_some()
    }

    fn home_core(&self) -> SharedCore {
        self.directory.core(self.home_replica)
    }

    fn effective_max_batch(&self) -> usize {
        match self.config.protocol {
            CommitProtocol::BasicPaxos => 1,
            CommitProtocol::PaxosCp => self.batch.max_batch.max(1),
        }
    }

    /// Submit a finished transaction for group commit. Returns the actions
    /// to execute (a flush's protocol messages when the window filled, or a
    /// window-deadline timer).
    pub fn submit(&mut self, now: SimTime, txn: Transaction) -> Vec<ClientAction> {
        debug_assert_eq!(
            txn.group, self.group,
            "transaction routed to wrong committer"
        );
        self.window.push(txn);
        let mut out = Vec::new();
        if self.inflight.is_none() && self.window.len() >= self.effective_max_batch() {
            self.start_next_batch(now, &mut out);
        } else if self.inflight.is_none() && self.window_tag.is_none() {
            self.next_tag += 1;
            let tag = self.next_tag;
            self.window_tag = Some(tag);
            out.push(ClientAction::ArmTimer {
                delay: self.batch.window,
                tag,
            });
        }
        out
    }

    /// Flush the current window immediately (no-op while an instance is in
    /// flight — the window flushes automatically when it finishes).
    pub fn flush(&mut self, now: SimTime) -> Vec<ClientAction> {
        let mut out = Vec::new();
        self.start_next_batch(now, &mut out);
        out
    }

    /// A member read at `read_position`; entries decided since then must
    /// not have written anything it read (optimistic validation before the
    /// batch competes for `position + 1`).
    fn is_stale(&self, txn: &Transaction, through: LogPosition) -> bool {
        let core = self.home_core();
        let core = core.lock();
        let Some(log) = core.log(self.group) else {
            return false;
        };
        (txn.read_position.0 + 1..=through.0)
            .map(LogPosition)
            .filter_map(|p| log.get(p))
            .any(|entry| entry.invalidates_reads_of(txn))
    }

    fn start_next_batch(&mut self, now: SimTime, out: &mut Vec<ClientAction>) {
        if self.inflight.is_some() || self.window.is_empty() {
            return;
        }
        self.window_tag = None;
        let position = self.read_position();
        // Optimistic validation: abort members whose reads are already
        // known to be invalidated by entries decided since they read.
        let candidates = std::mem::take(&mut self.window);
        let mut valid = Vec::with_capacity(candidates.len());
        for txn in candidates {
            if self.is_stale(&txn, position) {
                out.push(ClientAction::Finished(TxnResult {
                    committed: false,
                    read_only: false,
                    promotions: 0,
                    combined: false,
                    rounds: 0,
                    latency: SimDuration::ZERO,
                    total_latency: SimDuration::ZERO,
                    abort_reason: Some(paxos::AbortReason::Conflict),
                }));
            } else {
                valid.push(txn);
            }
        }
        if valid.is_empty() {
            return;
        }
        // Split internally conflicting windows: deferred members wait for
        // the next instance instead of invalidating the combination. A
        // batch larger than the cap (possible when submissions piled up
        // while an instance was in flight) spills its tail back into the
        // window too — nothing is ever silently dropped.
        let (mut batch, deferred) = partition_compatible(valid);
        let cap = self.effective_max_batch().min(batch.len());
        let mut overflow = batch.split_off(cap);
        overflow.extend(deferred);
        self.window = overflow;
        let cfg = self.config.proposer_config(self.directory.num_replicas());
        let mut proposer =
            Proposer::new_batch(cfg, self.group, self.node.0 as u64, batch, position.next());
        let actions = proposer.start();
        self.inflight = Some(Inflight {
            proposer,
            started_at: now,
            timer_tokens: HashMap::new(),
        });
        self.translate(now, actions, out);
    }

    /// Feed an incoming message (commit-protocol replies) into the
    /// committer.
    pub fn on_message(&mut self, now: SimTime, from: NodeId, msg: &Msg) -> Vec<ClientAction> {
        let Msg::Paxos(paxos_msg) = msg else {
            return Vec::new();
        };
        let Some(replica) = self.directory.replica_of_service(from) else {
            return Vec::new();
        };
        let event = match paxos_msg {
            PaxosMsg::PrepareReply {
                position,
                ballot,
                promised,
                next_bal,
                last_vote,
                ..
            } => ProposerEvent::PrepareReply {
                from: replica,
                position: *position,
                ballot: *ballot,
                promised: *promised,
                next_bal: *next_bal,
                last_vote: last_vote.clone(),
            },
            PaxosMsg::AcceptReply {
                position,
                ballot,
                accepted,
                ..
            } => ProposerEvent::AcceptReply {
                from: replica,
                position: *position,
                ballot: *ballot,
                accepted: *accepted,
            },
            PaxosMsg::LeaderClaimReply {
                position, granted, ..
            } => ProposerEvent::FastPathReply {
                position: *position,
                granted: *granted,
            },
            _ => return Vec::new(),
        };
        self.drive(now, event)
    }

    /// Feed a timer expiration (tag previously returned in
    /// [`ClientAction::ArmTimer`]) into the committer.
    pub fn on_timer(&mut self, now: SimTime, tag: u64) -> Vec<ClientAction> {
        if self.window_tag == Some(tag) {
            self.window_tag = None;
            return self.flush(now);
        }
        let Some(inflight) = self.inflight.as_mut() else {
            return Vec::new();
        };
        let Some(token) = inflight.timer_tokens.remove(&tag) else {
            return Vec::new();
        };
        self.drive(now, ProposerEvent::Timer { token })
    }

    fn drive(&mut self, now: SimTime, event: ProposerEvent) -> Vec<ClientAction> {
        let Some(inflight) = self.inflight.as_mut() else {
            return Vec::new();
        };
        let actions = inflight.proposer.on_event(event);
        let mut out = Vec::new();
        self.translate(now, actions, &mut out);
        out
    }

    fn translate(
        &mut self,
        now: SimTime,
        actions: Vec<ProposerAction>,
        out: &mut Vec<ClientAction>,
    ) {
        for action in actions {
            match action {
                ProposerAction::Broadcast(msg) => {
                    for replica in 0..self.directory.num_replicas() {
                        out.push(ClientAction::Send(
                            self.directory.service_node(replica),
                            Msg::Paxos(msg.clone()),
                        ));
                    }
                }
                ProposerAction::SendToLeader(msg) => {
                    let leader = self.directory.leader_replica(
                        self.home_replica,
                        self.group,
                        msg.position(),
                    );
                    out.push(ClientAction::Send(
                        self.directory.service_node(leader),
                        Msg::Paxos(msg),
                    ));
                }
                ProposerAction::ArmTimer { token, kind } => {
                    let delay = self.config.timer_delay(kind, &mut self.rng);
                    self.next_tag += 1;
                    let tag = self.next_tag;
                    if let Some(inflight) = self.inflight.as_mut() {
                        inflight.timer_tokens.insert(tag, token);
                    }
                    out.push(ClientAction::ArmTimer { delay, tag });
                }
                ProposerAction::Learned { position, entry } => {
                    self.home_core()
                        .lock()
                        .install_entry(self.group, position, entry);
                }
                ProposerAction::Finished(outcome) => {
                    let inflight = self
                        .inflight
                        .take()
                        .expect("finished implies an in-flight batch");
                    let latency = now.since(inflight.started_at);
                    for _ in &outcome.committed_txns {
                        out.push(ClientAction::Finished(TxnResult {
                            committed: true,
                            read_only: false,
                            promotions: outcome.promotions,
                            combined: outcome.combined,
                            rounds: outcome.rounds,
                            latency,
                            total_latency: latency,
                            abort_reason: None,
                        }));
                    }
                    for (_, reason) in &outcome.aborted_txns {
                        out.push(ClientAction::Finished(TxnResult {
                            committed: false,
                            read_only: false,
                            promotions: outcome.promotions,
                            combined: false,
                            rounds: outcome.rounds,
                            latency,
                            total_latency: latency,
                            abort_reason: Some(*reason),
                        }));
                    }
                    // Deferred members (and anything submitted meanwhile)
                    // form the next instance immediately.
                    self.start_next_batch(now, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DatacenterCore;
    use walog::{ItemRef, TxnId};

    fn harness() -> (Arc<Directory>, GroupCommitter) {
        let dir = Directory::new();
        dir.register_datacenter(NodeId(0), DatacenterCore::shared("dc0", 0));
        dir.register_client(NodeId(5), 0);
        let committer = GroupCommitter::new(
            NodeId(5),
            0,
            GroupId(0),
            dir.clone(),
            ClientConfig::cp(),
            BatchConfig::default().with_max_batch(2),
        );
        (dir, committer)
    }

    fn txn(dir: &Directory, seq: u64, attr: &str, read_position: LogPosition) -> Transaction {
        let item = dir.symbols().item("row", attr);
        Transaction::builder(TxnId::new(5, seq), GroupId(0), read_position)
            .write(ItemRef::new(item.key, item.attr), "v")
            .build()
    }

    #[test]
    fn first_submission_arms_the_window_timer() {
        let (dir, mut committer) = harness();
        let actions = committer.submit(SimTime::ZERO, txn(&dir, 1, "a", LogPosition::ZERO));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], ClientAction::ArmTimer { .. }));
        assert_eq!(committer.pending(), 1);
        assert!(!committer.committing());
    }

    #[test]
    fn full_window_flushes_into_one_instance() {
        let (dir, mut committer) = harness();
        committer.submit(SimTime::ZERO, txn(&dir, 1, "a", LogPosition::ZERO));
        let actions = committer.submit(SimTime::ZERO, txn(&dir, 2, "b", LogPosition::ZERO));
        // The flush starts the protocol: a leader claim (fast path) plus a
        // timer.
        assert!(actions.iter().any(|a| matches!(
            a,
            ClientAction::Send(_, Msg::Paxos(PaxosMsg::LeaderClaim { .. }))
        )));
        assert!(committer.committing());
        assert_eq!(committer.pending(), 0);
    }

    #[test]
    fn window_timer_flushes_a_partial_window() {
        let (dir, mut committer) = harness();
        let actions = committer.submit(SimTime::ZERO, txn(&dir, 1, "a", LogPosition::ZERO));
        let ClientAction::ArmTimer { tag, .. } = actions[0] else {
            panic!("expected window timer");
        };
        let actions = committer.on_timer(SimTime::from_micros(5_000), tag);
        assert!(!actions.is_empty());
        assert!(committer.committing());
    }

    #[test]
    fn conflicting_window_members_are_deferred_not_combined() {
        let (dir, mut committer) = harness();
        let item = dir.symbols().item("row", "a");
        let writer = Transaction::builder(TxnId::new(5, 1), GroupId(0), LogPosition::ZERO)
            .write(ItemRef::new(item.key, item.attr), "v")
            .build();
        let reader = Transaction::builder(TxnId::new(5, 2), GroupId(0), LogPosition::ZERO)
            .read(ItemRef::new(item.key, item.attr), None)
            .write(dir.symbols().item("row", "b"), "w")
            .build();
        committer.submit(SimTime::ZERO, writer);
        committer.submit(SimTime::ZERO, reader);
        // The reader reads the writer's item: it must not ride in the same
        // entry, so it stays pending while the writer's instance runs.
        assert!(committer.committing());
        assert_eq!(committer.pending(), 1);
    }

    #[test]
    fn submissions_piled_past_the_cap_spill_into_the_next_instance() {
        // Single-replica cluster (majority 1), so the whole protocol can be
        // driven by hand: fill the window (instance 1 starts with t1,t2),
        // pile up three more submissions while it is in flight, then
        // complete the instance and check that the next one takes exactly
        // the cap and the tail stays pending — no transaction vanishes.
        let (dir, mut committer) = harness();
        let now = SimTime::ZERO;
        committer.submit(now, txn(&dir, 1, "a", LogPosition::ZERO));
        let actions = committer.submit(now, txn(&dir, 2, "b", LogPosition::ZERO));
        assert!(committer.committing());
        for (i, attr) in ["c", "d", "e"].iter().enumerate() {
            committer.submit(now, txn(&dir, 3 + i as u64, attr, LogPosition::ZERO));
        }
        assert_eq!(committer.pending(), 3);

        // Drive instance 1: grant the fast path, capture the accept's
        // ballot, ack it (majority of 1), which finishes the batch and
        // immediately starts instance 2 from the buffered window.
        let claim_position = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(_, Msg::Paxos(PaxosMsg::LeaderClaim { position, .. })) => {
                    Some(*position)
                }
                _ => None,
            })
            .expect("fast path claim");
        let actions = committer.on_message(
            now,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::LeaderClaimReply {
                group: GroupId(0),
                position: claim_position,
                granted: true,
            }),
        );
        let (position, ballot) = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(
                    _,
                    Msg::Paxos(PaxosMsg::Accept {
                        position, ballot, ..
                    }),
                ) => Some((*position, *ballot)),
                _ => None,
            })
            .expect("accept broadcast");
        let actions = committer.on_message(
            now,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::AcceptReply {
                group: GroupId(0),
                position,
                ballot,
                accepted: true,
            }),
        );
        let finished = actions
            .iter()
            .filter(|a| matches!(a, ClientAction::Finished(r) if r.committed))
            .count();
        assert_eq!(finished, 2, "instance 1 commits t1 and t2");
        // Instance 2 took t3,t4 (the cap); t5 spilled back into the window.
        assert!(committer.committing());
        assert_eq!(
            committer.pending(),
            1,
            "the member past the cap must stay pending, not vanish"
        );
    }

    #[test]
    fn stale_members_abort_at_flush() {
        let (dir, mut committer) = harness();
        // Decide position 1 writing "a"; a member that read "a" at position
        // 0 is stale by flush time.
        let decided = txn(&dir, 9, "a", LogPosition::ZERO);
        dir.core(0).lock().install_entry(
            GroupId(0),
            LogPosition(1),
            Arc::new(walog::LogEntry::single(decided)),
        );
        let item = dir.symbols().item("row", "a");
        let stale = Transaction::builder(TxnId::new(5, 1), GroupId(0), LogPosition::ZERO)
            .read(ItemRef::new(item.key, item.attr), None)
            .write(dir.symbols().item("row", "b"), "w")
            .build();
        committer.submit(SimTime::ZERO, stale);
        let actions = committer.flush(SimTime::ZERO);
        assert!(actions.iter().any(|a| matches!(
            a,
            ClientAction::Finished(TxnResult {
                committed: false,
                abort_reason: Some(paxos::AbortReason::Conflict),
                ..
            })
        )));
        assert!(!committer.committing());
    }
}
