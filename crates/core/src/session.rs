//! The session-based Transaction Client: the library an application
//! instance links against to run transactions (§2.2, §4).
//!
//! A [`Session`] replaces the old single-active-transaction client with a
//! **session + handle** API: [`Session::begin`] opens a transaction and
//! returns a [`TxnHandle`]; reads, writes and commit take the handle, and
//! any number of transactions may be open (and committing) concurrently on
//! one client node. The session keeps each transaction's optimistic
//! read/write sets, serves `begin`/`read` against the local datacenter's
//! store (the paper's prototype optimization), buffers writes locally, and
//! at commit time routes the finished transaction down one of two
//! [`CommitRoute`]s:
//!
//! * [`CommitRoute::Direct`] — the paper-faithful baseline (§2.2,
//!   Algorithm 2): the session itself drives one Paxos / Paxos-CP
//!   [`Proposer`] per transaction over the simulated network. Direct
//!   commits of the *same group* are serialized within a session (two
//!   in-flight proposers from one node would share ballot identities and
//!   race for the same position); a commit issued while another is in
//!   flight queues and starts when the slot frees. Commits of different
//!   groups run concurrently.
//! * [`CommitRoute::Submitted`] — the scalable path: the finished
//!   [`Transaction`] ships to the group home's Transaction Service as a
//!   [`Msg::CommitRequest`]; the service-hosted
//!   [`crate::GroupCommitter`] batches it with commits from every client
//!   of the group into pipelined Paxos-CP instances and answers with a
//!   [`Msg::CommitReply`]. Any number of submitted commits may be in
//!   flight at once — this is where overlapping transactions pay off.
//!
//! Read-mostly traffic has a third path that skips the commit machinery
//! entirely: [`Session::begin_read_only`] opens a **snapshot handle**
//! pinned to a per-group applied-prefix watermark and served by a chosen
//! serving replica — any datacenter, not just the group home — over the
//! snapshot read plane ([`Msg::SnapshotRead`]). Snapshot reads never run
//! Paxos, never park behind a log gap and never abort; commit closes the
//! handle route-free.
//!
//! The embedding actor (a workload driver or an application model)
//! forwards incoming messages and timer expirations and executes the
//! [`ClientAction`]s the session returns.
//!
//! Names cross into the interned data plane exactly once, at this API
//! boundary: the string-accepting methods (`begin`, `read`, `write`)
//! intern through the cluster's shared [`walog::SymbolTable`] and delegate
//! to the id-based fast paths (`begin_id`, `read_id`, `write_id`) that hot
//! workload drivers call directly with pre-interned ids.

use crate::datacenter::SharedCore;
use crate::directory::Directory;
use crate::msg::Msg;
use paxos::{
    AbortReason, CommitProtocol, PaxosMsg, Proposer, ProposerAction, ProposerConfig, ProposerEvent,
    TimerKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{NodeId, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use walog::{
    AttrId, GroupId, ItemRef, KeyId, LogPosition, ReadRecord, Transaction, TxnId, WriteRecord,
};

/// How a session's commits reach the replicated log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitRoute {
    /// The paper's client-driven proposer: one Paxos / Paxos-CP instance
    /// per transaction, driven by the session itself (Algorithm 2).
    #[default]
    Direct,
    /// Ship the finished transaction to the group home's Transaction
    /// Service ([`Msg::CommitRequest`]), whose hosted
    /// [`crate::GroupCommitter`] batches and pipelines it with other
    /// clients' commits.
    Submitted,
}

impl CommitRoute {
    /// Short name for tables and labels.
    pub fn name(&self) -> &'static str {
        match self {
            CommitRoute::Direct => "direct",
            CommitRoute::Submitted => "submitted",
        }
    }
}

/// Tuning knobs of a transaction session.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Which commit protocol to run.
    pub protocol: CommitProtocol,
    /// Which route commits take (see [`CommitRoute`]).
    pub route: CommitRoute,
    /// Promotion cap (`None` = unlimited, the paper's evaluation setting).
    pub max_promotions: Option<u32>,
    /// Whether Paxos-CP combination is enabled.
    pub combination: bool,
    /// Whether the leader fast path is attempted.
    pub fast_path: bool,
    /// Reply timeout (the paper uses 2 s for loss detection).
    pub message_timeout: SimDuration,
    /// Upper bound of the randomized backoff before re-preparing.
    pub backoff_max: SimDuration,
    /// Extra window Paxos-CP waits for straggler prepare replies when votes
    /// are present (see `paxos::TimerKind::Gather`).
    pub gather_window: SimDuration,
    /// How many times a submitted commit is automatically re-submitted
    /// (same transaction id, freshly resolved group home) after a patience
    /// expiry or an [`AbortReason::Unavailable`] reply before the session
    /// surfaces `Unavailable` to the application. Service-side transaction
    /// id dedup makes the retries exactly-once; `0` disables retries.
    pub max_resubmissions: u32,
    /// Override of the submitted-route patience window (`None` = 8× the
    /// message timeout; see [`ClientConfig::submit_patience`]). Chaos
    /// harnesses shrink it so retries land within their fault windows.
    pub patience: Option<SimDuration>,
}

impl ClientConfig {
    /// Basic Paxos with the paper's timeouts.
    pub fn basic() -> Self {
        ClientConfig {
            protocol: CommitProtocol::BasicPaxos,
            route: CommitRoute::Direct,
            max_promotions: Some(0),
            combination: false,
            fast_path: true,
            message_timeout: SimDuration::from_secs(2),
            backoff_max: SimDuration::from_millis(150),
            gather_window: SimDuration::from_millis(50),
            max_resubmissions: 5,
            patience: None,
        }
    }

    /// Paxos-CP with the paper's evaluation settings (unlimited promotions).
    pub fn cp() -> Self {
        ClientConfig {
            protocol: CommitProtocol::PaxosCp,
            max_promotions: None,
            combination: true,
            fast_path: true,
            ..ClientConfig::basic()
        }
    }

    /// Config for the requested protocol variant.
    pub fn for_protocol(protocol: CommitProtocol) -> Self {
        match protocol {
            CommitProtocol::BasicPaxos => ClientConfig::basic(),
            CommitProtocol::PaxosCp => ClientConfig::cp(),
        }
    }

    /// Builder-style commit-route override.
    pub fn with_route(mut self, route: CommitRoute) -> Self {
        self.route = route;
        self
    }

    /// Builder-style resubmission-budget override.
    pub fn with_max_resubmissions(mut self, n: u32) -> Self {
        self.max_resubmissions = n;
        self
    }

    /// Builder-style patience-window override (see [`ClientConfig::patience`]).
    pub fn with_submit_patience(mut self, patience: SimDuration) -> Self {
        self.patience = Some(patience);
        self
    }

    /// How long a submitted commit waits for its [`Msg::CommitReply`]
    /// before re-submitting (or, once the resubmission budget is spent,
    /// reporting [`AbortReason::Unavailable`]). Generous by default — the
    /// service retries the commit protocol through failovers on the
    /// client's behalf — but bounded, so a crashed group home cannot wedge
    /// the session forever.
    pub fn submit_patience(&self) -> SimDuration {
        self.patience.unwrap_or(SimDuration::from_micros(
            self.message_timeout.as_micros().saturating_mul(8),
        ))
    }

    /// The concrete delay for a proposer timer request — shared by the
    /// session's direct route and the batching committer so their timeout
    /// policies can never diverge.
    pub(crate) fn timer_delay(&self, kind: TimerKind, rng: &mut StdRng) -> SimDuration {
        match kind {
            TimerKind::ReplyTimeout => self.message_timeout,
            TimerKind::Backoff => {
                let max = self.backoff_max.as_micros().max(1);
                SimDuration::from_micros(rng.gen_range(0..max))
            }
            TimerKind::Gather => self.gather_window,
        }
    }

    pub(crate) fn proposer_config(&self, num_replicas: usize) -> ProposerConfig {
        let base = match self.protocol {
            CommitProtocol::BasicPaxos => ProposerConfig::basic(num_replicas),
            CommitProtocol::PaxosCp => ProposerConfig::cp(num_replicas),
        };
        base.with_max_promotions(match self.protocol {
            CommitProtocol::BasicPaxos => Some(0),
            CommitProtocol::PaxosCp => self.max_promotions,
        })
        .with_combination(self.combination)
        .with_fast_path(self.fast_path)
    }
}

/// Handle to one open transaction of a [`Session`]. Handles are cheap,
/// `Copy`, unique per session, and become invalid once the transaction
/// finishes (the session then reports [`SessionError::UnknownHandle`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnHandle(u64);

impl TxnHandle {
    /// The raw handle value (stable for the life of the transaction; useful
    /// for embedding actors that key their own per-transaction state or
    /// timer tags by handle).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Outcome of one transaction, as reported to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnResult {
    /// Whether the transaction committed.
    pub committed: bool,
    /// True when the transaction had no writes (read-only transactions
    /// commit locally without touching the log, §2.2).
    pub read_only: bool,
    /// Number of Paxos-CP promotions it went through.
    pub promotions: u32,
    /// Whether it committed inside a combined (multi-transaction) log entry.
    pub combined: bool,
    /// Prepare/accept rounds executed across all positions.
    pub rounds: u32,
    /// Commit-protocol latency: from the `commit` call to the commit/abort
    /// decision (what Figures 4(b) and 5(b) plot). For batched commits this
    /// runs from submission and includes the window wait.
    pub latency: SimDuration,
    /// End-to-end latency: from `begin` to the decision (includes the
    /// application's own operation execution time).
    pub total_latency: SimDuration,
    /// Abort reason when not committed.
    pub abort_reason: Option<AbortReason>,
    /// The id the transaction travelled the log under (`None` for
    /// read-only transactions, which never enter the log). Lets embedding
    /// layers — the Transaction Service routing committer outcomes back to
    /// requesters, or drivers correlating results — identify the member.
    pub txn: Option<TxnId>,
}

/// Effects the embedding actor must carry out on behalf of the session.
#[derive(Clone, Debug)]
pub enum ClientAction {
    /// Send a message to a node.
    Send(NodeId, Msg),
    /// Arm a timer; deliver the tag back via [`Session::on_timer`].
    ArmTimer {
        /// Delay before firing.
        delay: SimDuration,
        /// Tag to echo back.
        tag: u64,
    },
    /// A transaction finished.
    Finished(TxnResult),
}

/// Errors from misusing the session API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The handle does not name an open transaction (never opened, or
    /// already finished).
    UnknownHandle,
    /// The transaction is already in its commit phase; reads, writes and
    /// repeated commits are rejected.
    CommitInProgress,
    /// The handle is a read-only snapshot transaction (see
    /// [`Session::begin_read_only`]); writes are rejected.
    ReadOnlyTransaction,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            SessionError::UnknownHandle => "no open transaction with this handle",
            SessionError::CommitInProgress => "commit already in progress",
            SessionError::ReadOnlyTransaction => "snapshot transactions cannot write",
        };
        f.write_str(text)
    }
}

impl std::error::Error for SessionError {}

/// Where an open transaction is in its life cycle.
enum Phase {
    /// Executing operations; commit not yet requested.
    Executing,
    /// Commit requested on the direct route, waiting for the group's
    /// in-flight direct commit to finish.
    Queued,
    /// Direct route: the session is driving this proposer.
    Direct(Box<Proposer>),
    /// Submitted route: waiting for the group home's `CommitReply`.
    Submitted {
        /// Correlation id of the outstanding `CommitRequest`.
        req_id: u64,
    },
}

struct OpenTxn {
    group: GroupId,
    read_position: LogPosition,
    /// The datacenter holding this transaction's read lease (the home at
    /// `begin` time — re-homing mid-transaction must release there).
    lease_replica: usize,
    reads: Vec<ReadRecord>,
    writes: Vec<WriteRecord>,
    write_index: BTreeMap<ItemRef, String>,
    began_at: SimTime,
    commit_started_at: Option<SimTime>,
    /// The id assigned when the commit was built (None before commit and
    /// for read-only transactions).
    id: Option<TxnId>,
    /// Automatic re-submissions already made for this commit (submitted
    /// route only; the id never changes across attempts).
    submit_attempts: u32,
    /// True for read-only snapshot handles (see
    /// [`Session::begin_read_only`]): reads are served at the watermark
    /// from the serving replica in `lease_replica`, writes are rejected,
    /// and commit closes route-free without ever touching the log.
    snapshot: bool,
    phase: Phase,
}

/// Which session object a fired timer belongs to.
enum TimerRoute {
    /// A direct-route proposer timer.
    Proposer { handle: u64, token: u64 },
    /// The patience timer of a submitted commit.
    SubmitPatience { handle: u64, req_id: u64 },
}

/// The transaction session: the client library.
pub struct Session {
    node: NodeId,
    home_replica: usize,
    directory: Arc<Directory>,
    config: ClientConfig,
    rng: StdRng,
    seq: u64,
    next_tag: u64,
    next_handle: u64,
    next_req: u64,
    /// Open transactions by raw handle (ordered for determinism).
    open: BTreeMap<u64, OpenTxn>,
    /// The handle driving the in-flight direct commit of each group.
    direct_busy: BTreeMap<GroupId, u64>,
    /// Direct commits waiting for their group's slot, in commit-call order.
    direct_queue: BTreeMap<GroupId, VecDeque<u64>>,
    /// Outstanding submitted commits: request id → raw handle.
    submitted: BTreeMap<u64, u64>,
    /// Armed timer tags.
    timers: BTreeMap<u64, TimerRoute>,
    /// Automatic re-submissions performed over the session's lifetime.
    resubmissions: u64,
}

impl Session {
    /// Create a session running on `node`, homed in the datacenter with
    /// replica index `home_replica`.
    pub fn new(
        node: NodeId,
        home_replica: usize,
        directory: Arc<Directory>,
        config: ClientConfig,
    ) -> Self {
        Session {
            node,
            home_replica,
            directory,
            config,
            rng: StdRng::seed_from_u64(0x9e37_79b9 ^ node.0 as u64),
            seq: 0,
            next_tag: 0,
            next_handle: 0,
            next_req: 0,
            open: BTreeMap::new(),
            direct_busy: BTreeMap::new(),
            direct_queue: BTreeMap::new(),
            submitted: BTreeMap::new(),
            timers: BTreeMap::new(),
            resubmissions: 0,
        }
    }

    /// Automatic re-submissions the session has performed (see
    /// [`ClientConfig::max_resubmissions`]).
    pub fn resubmissions(&self) -> u64 {
        self.resubmissions
    }

    /// The datacenter this session currently considers local.
    pub fn home_replica(&self) -> usize {
        self.home_replica
    }

    /// Re-home the session to another datacenter (failover after its local
    /// datacenter became unavailable). Affects transactions begun after the
    /// call; open ones keep their lease where they took it.
    pub fn set_home_replica(&mut self, replica: usize) {
        self.home_replica = replica;
    }

    /// The cluster's shared symbol table (for callers that pre-intern).
    pub fn symbols(&self) -> &Arc<walog::SymbolTable> {
        self.directory.symbols()
    }

    /// Number of open transactions (executing, queued or committing).
    pub fn open_transactions(&self) -> usize {
        self.open.len()
    }

    /// Whether the handle names an open transaction.
    pub fn is_open(&self, handle: TxnHandle) -> bool {
        self.open.contains_key(&handle.0)
    }

    /// Reconstruct the handle for a raw id (see [`TxnHandle::raw`]) if it
    /// still names an open transaction — for embedding actors that key
    /// their own per-transaction state or timer tags by the raw id.
    pub fn handle_from_raw(&self, raw: u64) -> Option<TxnHandle> {
        self.open.contains_key(&raw).then_some(TxnHandle(raw))
    }

    /// The transaction id assigned to `handle`'s commit, once it has been
    /// submitted (None while the transaction is still executing, or when the
    /// handle is unknown). Embedding harnesses use this to correlate the
    /// eventual [`TxnResult`] with per-transaction bookkeeping of their own.
    pub fn txn_id(&self, handle: TxnHandle) -> Option<TxnId> {
        self.open.get(&handle.0).and_then(|t| t.id)
    }

    /// Whether the transaction is in its commit phase (queued, driving a
    /// proposer, or waiting for a `CommitReply`).
    pub fn committing(&self, handle: TxnHandle) -> bool {
        self.open
            .get(&handle.0)
            .is_some_and(|t| !matches!(t.phase, Phase::Executing))
    }

    fn home_core(&self) -> SharedCore {
        self.directory.core(self.home_replica)
    }

    /// Open a transaction on the named group at simulated time `now`,
    /// interning the name through the cluster symbol table.
    pub fn begin(&mut self, now: SimTime, group: &str) -> TxnHandle {
        let group = self.directory.symbols().group(group);
        self.begin_id(now, group)
    }

    /// Open a transaction on a pre-interned group. The read position is the
    /// local datacenter's latest gap-free log position; the session leases
    /// it so version GC keeps every version the transaction's reads can
    /// need until the commit decision.
    pub fn begin_id(&mut self, now: SimTime, group: GroupId) -> TxnHandle {
        let read_position = {
            let core = self.home_core();
            let mut core = core.lock();
            let read_position = core.read_position(group);
            core.begin_read_lease(group, read_position);
            read_position
        };
        self.next_handle += 1;
        let handle = self.next_handle;
        self.open.insert(
            handle,
            OpenTxn {
                group,
                read_position,
                lease_replica: self.home_replica,
                reads: Vec::new(),
                writes: Vec::new(),
                write_index: BTreeMap::new(),
                began_at: now,
                commit_started_at: None,
                id: None,
                submit_attempts: 0,
                snapshot: false,
                phase: Phase::Executing,
            },
        );
        TxnHandle(handle)
    }

    /// Open a **read-only snapshot transaction** on the named group,
    /// interning the name through the cluster symbol table. See
    /// [`Session::begin_read_only_id`].
    pub fn begin_read_only(&mut self, now: SimTime, group: &str) -> TxnHandle {
        let group = self.directory.symbols().group(group);
        self.begin_read_only_id(now, group)
    }

    /// Open a read-only snapshot transaction on a pre-interned group: a
    /// handle whose reads never run Paxos and never abort.
    ///
    /// The session picks a **serving replica** — any datacenter, not just
    /// the group home ([`Directory::snapshot_replica`]; the session's own
    /// datacenter wins, so snapshot reads are local) — and captures that
    /// replica's applied prefix as the handle's **snapshot watermark**.
    /// Every [`Session::read_id`] on the handle is answered at or below
    /// the watermark, and a read lease at the serving replica keeps
    /// version GC from reclaiming anything the snapshot can still observe
    /// until the handle closes. A transaction spanning several groups is a
    /// set of such handles, one per group: together their watermarks form
    /// the per-group applied-prefix *position vector* that bounds the
    /// snapshot's staleness (per-key freshness cannot — see the read-plane
    /// section of `docs/ARCHITECTURE.md`).
    ///
    /// Writing through the handle is rejected with
    /// [`SessionError::ReadOnlyTransaction`]; [`Session::commit`] closes
    /// it immediately, route-free, always committed.
    pub fn begin_read_only_id(&mut self, now: SimTime, group: GroupId) -> TxnHandle {
        self.next_handle += 1;
        let handle = self.next_handle;
        let serving = self.directory.snapshot_replica(
            group,
            self.home_replica,
            handle,
            self.directory.num_replicas(),
        );
        let read_position = {
            let core = self.directory.core(serving);
            let mut core = core.lock();
            let read_position = core.read_position(group);
            core.begin_read_lease(group, read_position);
            read_position
        };
        self.open.insert(
            handle,
            OpenTxn {
                group,
                read_position,
                lease_replica: serving,
                reads: Vec::new(),
                writes: Vec::new(),
                write_index: BTreeMap::new(),
                began_at: now,
                commit_started_at: None,
                id: None,
                submit_attempts: 0,
                snapshot: true,
                phase: Phase::Executing,
            },
        );
        TxnHandle(handle)
    }

    /// The serving replica and snapshot watermark of a read-only handle
    /// (`None` for unknown handles and for regular read/write
    /// transactions). Harnesses use this to assert bounded staleness:
    /// every value the handle observed must be explained by the decided
    /// prefix at or below the watermark.
    pub fn snapshot_watermark(&self, handle: TxnHandle) -> Option<(usize, LogPosition)> {
        self.open
            .get(&handle.0)
            .filter(|t| t.snapshot)
            .map(|t| (t.lease_replica, t.read_position))
    }

    /// Release the read lease a finished transaction held.
    fn release_lease(&self, txn: &OpenTxn) {
        self.directory
            .core(txn.lease_replica)
            .lock()
            .end_read_lease(txn.group, txn.read_position);
    }

    /// Read one item of the transaction's group, interning the names.
    pub fn read(
        &mut self,
        handle: TxnHandle,
        key: &str,
        attr: &str,
    ) -> Result<Option<String>, SessionError> {
        let item = self.directory.symbols().item(key, attr);
        self.read_id(handle, item.key, item.attr)
    }

    /// Read one pre-interned item of the transaction's group.
    ///
    /// Reads first consult the transaction's own write set (A1,
    /// read-your-writes); otherwise they are served at the transaction's
    /// read position (A2) from the datacenter holding its read lease — the
    /// session's home for regular transactions, the chosen serving replica
    /// for snapshot handles — and recorded in the read set.
    pub fn read_id(
        &mut self,
        handle: TxnHandle,
        key: KeyId,
        attr: AttrId,
    ) -> Result<Option<String>, SessionError> {
        let txn = self
            .open
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle)?;
        if !matches!(txn.phase, Phase::Executing) {
            return Err(SessionError::CommitInProgress);
        }
        let item = ItemRef::new(key, attr);
        if let Some(value) = txn.write_index.get(&item) {
            return Ok(Some(value.clone()));
        }
        let observed = self
            .directory
            .core(txn.lease_replica)
            .lock()
            .read(txn.group, key, attr, txn.read_position)
            .unwrap_or_else(|_gap| {
                // The read position was taken from the local gap-free prefix,
                // so a gap at or below it is impossible; treat defensively as
                // a missing value rather than panicking in release runs.
                debug_assert!(
                    false,
                    "local read below the gap-free prefix cannot need catch-up"
                );
                None
            });
        txn.reads.push(ReadRecord {
            item,
            observed: observed.clone(),
        });
        Ok(observed)
    }

    /// Buffer a write to one item of the transaction's group, interning the
    /// names.
    pub fn write(
        &mut self,
        handle: TxnHandle,
        key: &str,
        attr: &str,
        value: impl Into<String>,
    ) -> Result<(), SessionError> {
        let item = self.directory.symbols().item(key, attr);
        self.write_id(handle, item.key, item.attr, value)
    }

    /// Buffer a write to one pre-interned item of the transaction's group.
    pub fn write_id(
        &mut self,
        handle: TxnHandle,
        key: KeyId,
        attr: AttrId,
        value: impl Into<String>,
    ) -> Result<(), SessionError> {
        let txn = self
            .open
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle)?;
        if txn.snapshot {
            return Err(SessionError::ReadOnlyTransaction);
        }
        if !matches!(txn.phase, Phase::Executing) {
            return Err(SessionError::CommitInProgress);
        }
        let value = value.into();
        let item = ItemRef::new(key, attr);
        txn.write_index.insert(item, value.clone());
        txn.writes.push(WriteRecord { item, value });
        Ok(())
    }

    /// Try to commit a transaction. Read-only transactions finish
    /// immediately; read/write transactions enter the configured
    /// [`CommitRoute`] and finish later via [`ClientAction::Finished`].
    pub fn commit(
        &mut self,
        now: SimTime,
        handle: TxnHandle,
    ) -> Result<Vec<ClientAction>, SessionError> {
        let txn = self
            .open
            .get_mut(&handle.0)
            .ok_or(SessionError::UnknownHandle)?;
        if !matches!(txn.phase, Phase::Executing) {
            return Err(SessionError::CommitInProgress);
        }
        txn.commit_started_at = Some(now);
        if txn.writes.is_empty() {
            let finished = self.open.remove(&handle.0).expect("checked above");
            self.release_lease(&finished);
            return Ok(vec![ClientAction::Finished(TxnResult {
                committed: true,
                read_only: true,
                promotions: 0,
                combined: false,
                rounds: 0,
                latency: SimDuration::ZERO,
                total_latency: now.since(finished.began_at),
                abort_reason: None,
                txn: None,
            })]);
        }
        match self.config.route {
            CommitRoute::Direct => {
                let group = txn.group;
                if self.direct_busy.contains_key(&group) {
                    txn.phase = Phase::Queued;
                    self.direct_queue
                        .entry(group)
                        .or_default()
                        .push_back(handle.0);
                    Ok(Vec::new())
                } else {
                    let mut out = Vec::new();
                    self.start_direct(now, handle.0, &mut out);
                    Ok(out)
                }
            }
            CommitRoute::Submitted => Ok(self.start_submitted(handle.0)),
        }
    }

    /// Build the wire transaction of an open handle and assign its id.
    fn build_transaction(&mut self, handle: u64) -> Transaction {
        self.seq += 1;
        let id = TxnId::new(self.node.0, self.seq);
        let txn = self.open.get_mut(&handle).expect("caller checked");
        txn.id = Some(id);
        Transaction::new(
            id,
            txn.group,
            txn.read_position,
            txn.reads.clone(),
            txn.writes.clone(),
        )
    }

    /// Start a direct-route proposer for `handle` (the group slot is free).
    fn start_direct(&mut self, now: SimTime, handle: u64, out: &mut Vec<ClientAction>) {
        let transaction = self.build_transaction(handle);
        let group = transaction.group;
        let commit_position = transaction.read_position.next();
        let cfg = self.config.proposer_config(self.directory.num_replicas());
        let mut proposer =
            Proposer::new(cfg, group, self.node.0 as u64, transaction, commit_position);
        let actions = proposer.start();
        let txn = self.open.get_mut(&handle).expect("caller checked");
        txn.phase = Phase::Direct(Box::new(proposer));
        self.direct_busy.insert(group, handle);
        self.translate(now, handle, group, actions, out);
    }

    /// Ship `handle`'s finished transaction to the group home's service.
    fn start_submitted(&mut self, handle: u64) -> Vec<ClientAction> {
        let transaction = self.build_transaction(handle);
        let group = transaction.group;
        self.next_req += 1;
        let req_id = self.next_req;
        let txn = self.open.get_mut(&handle).expect("caller checked");
        txn.phase = Phase::Submitted { req_id };
        self.submitted.insert(req_id, handle);
        let home = self.directory.group_home(group);
        let mut out = vec![ClientAction::Send(
            self.directory.service_node(home),
            Msg::CommitRequest {
                req_id,
                txn: transaction,
            },
        )];
        self.next_tag += 1;
        let tag = self.next_tag;
        self.timers
            .insert(tag, TimerRoute::SubmitPatience { handle, req_id });
        out.push(ClientAction::ArmTimer {
            delay: self.config.submit_patience(),
            tag,
        });
        out
    }

    /// Re-fire every armed timer, in tag order. After a crash/recovery the
    /// simulator has suppressed any timer that expired during the outage —
    /// it will never fire, which would wedge in-flight commits forever.
    /// The embedding actor calls this from its recovery hook. Early fires
    /// are safe: a reply timeout triggers a (tolerated) extra protocol
    /// round, a patience expiry a deduplicated resubmission, and a timer
    /// that later really fires finds its tag gone and is a no-op.
    pub fn refire_timers(&mut self, now: SimTime) -> Vec<ClientAction> {
        let tags: Vec<u64> = self.timers.keys().copied().collect();
        let mut out = Vec::new();
        for tag in tags {
            out.extend(self.on_timer(now, tag));
        }
        out
    }

    /// Re-submit `handle`'s already-built transaction: same transaction id
    /// (service-side dedup makes the retry exactly-once), fresh request id,
    /// freshly resolved group home (the home may have migrated since the
    /// last attempt), and a new patience timer with a growing randomized
    /// backoff on top of the patience window.
    fn resubmit_submitted(&mut self, handle: u64) -> Vec<ClientAction> {
        self.resubmissions += 1;
        self.next_req += 1;
        let req_id = self.next_req;
        let txn = self.open.get_mut(&handle).expect("caller checked");
        txn.submit_attempts += 1;
        let attempts = txn.submit_attempts;
        let group = txn.group;
        let transaction = Transaction::new(
            txn.id.expect("submitted commits carry an id"),
            group,
            txn.read_position,
            txn.reads.clone(),
            txn.writes.clone(),
        );
        txn.phase = Phase::Submitted { req_id };
        self.submitted.insert(req_id, handle);
        let home = self.directory.group_home(group);
        let mut out = vec![ClientAction::Send(
            self.directory.service_node(home),
            Msg::CommitRequest {
                req_id,
                txn: transaction,
            },
        )];
        self.next_tag += 1;
        let tag = self.next_tag;
        self.timers
            .insert(tag, TimerRoute::SubmitPatience { handle, req_id });
        let backoff_cap = self
            .config
            .backoff_max
            .as_micros()
            .saturating_mul(attempts as u64)
            .max(1);
        let backoff = SimDuration::from_micros(self.rng.gen_range(0..backoff_cap));
        out.push(ClientAction::ArmTimer {
            delay: self.config.submit_patience() + backoff,
            tag,
        });
        out
    }

    /// Feed an incoming message (commit-protocol or commit-reply traffic)
    /// into the session.
    pub fn on_message(&mut self, now: SimTime, from: NodeId, msg: &Msg) -> Vec<ClientAction> {
        match msg {
            Msg::Paxos(paxos_msg) => self.on_paxos(now, from, paxos_msg),
            Msg::CommitReply {
                req_id,
                committed,
                promotions,
                combined,
                rounds,
                abort_reason,
                ..
            } => {
                let Some(handle) = self.submitted.remove(req_id) else {
                    return Vec::new();
                };
                // An `Unavailable` reply means the service gave up without
                // a decision; retry while the budget lasts instead of
                // surfacing it.
                if !*committed && *abort_reason == Some(AbortReason::Unavailable) {
                    let attempts = self
                        .open
                        .get(&handle)
                        .map(|t| t.submit_attempts)
                        .unwrap_or(u32::MAX);
                    if attempts < self.config.max_resubmissions {
                        return self.resubmit_submitted(handle);
                    }
                }
                let txn = self
                    .open
                    .remove(&handle)
                    .expect("submitted commits stay open until their reply");
                debug_assert!(
                    matches!(txn.phase, Phase::Submitted { req_id: r } if r == *req_id),
                    "commit reply must match the handle's outstanding request"
                );
                self.release_lease(&txn);
                let commit_started = txn.commit_started_at.unwrap_or(txn.began_at);
                vec![ClientAction::Finished(TxnResult {
                    committed: *committed,
                    read_only: false,
                    promotions: *promotions,
                    combined: *combined,
                    rounds: *rounds,
                    latency: now.since(commit_started),
                    total_latency: now.since(txn.began_at),
                    abort_reason: *abort_reason,
                    txn: txn.id,
                })]
            }
            _ => Vec::new(),
        }
    }

    fn on_paxos(&mut self, now: SimTime, from: NodeId, paxos_msg: &PaxosMsg) -> Vec<ClientAction> {
        let Some(replica) = self.directory.replica_of_service(from) else {
            return Vec::new();
        };
        // Direct commits are serialized per group, so the message's group
        // routes it to the one proposer that can be waiting for it.
        let group = paxos_msg.group();
        let Some(&handle) = self.direct_busy.get(&group) else {
            return Vec::new();
        };
        let event = match paxos_msg {
            PaxosMsg::PrepareReply {
                position,
                ballot,
                promised,
                next_bal,
                last_vote,
                ..
            } => ProposerEvent::PrepareReply {
                from: replica,
                position: *position,
                ballot: *ballot,
                promised: *promised,
                next_bal: *next_bal,
                last_vote: last_vote.clone(),
            },
            PaxosMsg::AcceptReply {
                position,
                ballot,
                accepted,
                ..
            } => ProposerEvent::AcceptReply {
                from: replica,
                position: *position,
                ballot: *ballot,
                accepted: *accepted,
            },
            PaxosMsg::LeaderClaimReply {
                position, granted, ..
            } => ProposerEvent::FastPathReply {
                position: *position,
                granted: *granted,
            },
            _ => return Vec::new(),
        };
        self.drive(now, handle, group, event)
    }

    /// Feed a timer expiration (tag previously returned in
    /// [`ClientAction::ArmTimer`]) into the session.
    pub fn on_timer(&mut self, now: SimTime, tag: u64) -> Vec<ClientAction> {
        match self.timers.remove(&tag) {
            Some(TimerRoute::Proposer { handle, token }) => {
                let Some(txn) = self.open.get(&handle) else {
                    return Vec::new();
                };
                let group = txn.group;
                self.drive(now, handle, group, ProposerEvent::Timer { token })
            }
            Some(TimerRoute::SubmitPatience { handle, req_id }) => {
                // Only meaningful while the reply is still outstanding.
                if self.submitted.get(&req_id) != Some(&handle) {
                    return Vec::new();
                }
                self.submitted.remove(&req_id);
                // Patience ran out without a reply: re-submit while the
                // budget lasts — the original request (or its reply) may
                // have been lost to a crash, partition or home migration.
                let attempts = self
                    .open
                    .get(&handle)
                    .map(|t| t.submit_attempts)
                    .unwrap_or(u32::MAX);
                if attempts < self.config.max_resubmissions {
                    return self.resubmit_submitted(handle);
                }
                let txn = self
                    .open
                    .remove(&handle)
                    .expect("submitted commits stay open until their reply");
                self.release_lease(&txn);
                let commit_started = txn.commit_started_at.unwrap_or(txn.began_at);
                vec![ClientAction::Finished(TxnResult {
                    committed: false,
                    read_only: false,
                    promotions: 0,
                    combined: false,
                    rounds: 0,
                    latency: now.since(commit_started),
                    total_latency: now.since(txn.began_at),
                    abort_reason: Some(AbortReason::Unavailable),
                    txn: txn.id,
                })]
            }
            None => Vec::new(),
        }
    }

    fn drive(
        &mut self,
        now: SimTime,
        handle: u64,
        group: GroupId,
        event: ProposerEvent,
    ) -> Vec<ClientAction> {
        let Some(txn) = self.open.get_mut(&handle) else {
            return Vec::new();
        };
        let Phase::Direct(proposer) = &mut txn.phase else {
            return Vec::new();
        };
        let actions = proposer.on_event(event);
        let mut out = Vec::new();
        self.translate(now, handle, group, actions, &mut out);
        out
    }

    /// Turn proposer actions into client actions. The transaction's group
    /// is resolved by the caller *before* the loop: a `Learned` entry is
    /// installed unconditionally, even when a `Finished` earlier in the
    /// same action batch already closed the transaction — the learned
    /// value is the group's decided history, not session state, and
    /// dropping it would stall the local read position.
    fn translate(
        &mut self,
        now: SimTime,
        handle: u64,
        group: GroupId,
        actions: Vec<ProposerAction>,
        out: &mut Vec<ClientAction>,
    ) {
        for action in actions {
            match action {
                ProposerAction::Broadcast(msg) => {
                    for replica in 0..self.directory.num_replicas() {
                        out.push(ClientAction::Send(
                            self.directory.service_node(replica),
                            Msg::Paxos(msg.clone()),
                        ));
                    }
                }
                ProposerAction::SendToLeader(msg) => {
                    let leader = self.directory.leader_replica(
                        self.home_replica,
                        msg.group(),
                        msg.position(),
                    );
                    out.push(ClientAction::Send(
                        self.directory.service_node(leader),
                        Msg::Paxos(msg),
                    ));
                }
                ProposerAction::ArmTimer { token, kind } => {
                    let delay = self.config.timer_delay(kind, &mut self.rng);
                    self.next_tag += 1;
                    let tag = self.next_tag;
                    self.timers
                        .insert(tag, TimerRoute::Proposer { handle, token });
                    out.push(ClientAction::ArmTimer { delay, tag });
                }
                ProposerAction::Learned { position, entry } => {
                    // Install what the proposer learned into the local
                    // datacenter so the next transaction's read position
                    // advances immediately — regardless of whether this
                    // transaction is still open.
                    self.directory
                        .core(self.home_replica)
                        .lock()
                        .install_entry(group, position, entry);
                }
                ProposerAction::Finished(outcome) => {
                    let txn = self
                        .open
                        .remove(&handle)
                        .expect("finished implies an open transaction");
                    self.release_lease(&txn);
                    if self.direct_busy.get(&group) == Some(&handle) {
                        self.direct_busy.remove(&group);
                    }
                    let commit_started = txn.commit_started_at.unwrap_or(txn.began_at);
                    out.push(ClientAction::Finished(TxnResult {
                        committed: outcome.committed,
                        read_only: false,
                        promotions: outcome.promotions,
                        combined: outcome.combined,
                        rounds: outcome.rounds,
                        latency: now.since(commit_started),
                        total_latency: now.since(txn.began_at),
                        abort_reason: outcome.abort_reason,
                        txn: txn.id,
                    }));
                    // The group's direct slot freed: start the next queued
                    // commit, if any.
                    if let Some(next) = self.pop_queued(group) {
                        self.start_direct(now, next, out);
                    }
                }
            }
        }
    }

    fn pop_queued(&mut self, group: GroupId) -> Option<u64> {
        let queue = self.direct_queue.get_mut(&group)?;
        let next = queue.pop_front();
        if queue.is_empty() {
            self.direct_queue.remove(&group);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DatacenterCore;
    use paxos::CommitOutcome;
    use walog::LogEntry;

    fn directory_with_one_dc() -> (Arc<Directory>, SharedCore) {
        let dir = Directory::new();
        let core = DatacenterCore::shared("dc0", 0);
        dir.register_datacenter(NodeId(0), core.clone());
        (dir, core)
    }

    fn seeded_entry(dir: &Directory, core: &SharedCore, position: u64, attr: &str, value: &str) {
        let group = dir.symbols().group("g");
        let txn = Transaction::builder(TxnId::new(0, position), group, LogPosition(position - 1))
            .write(dir.symbols().item("row", attr), value)
            .build();
        core.lock().install_entry(
            group,
            LogPosition(position),
            Arc::new(LogEntry::single(txn)),
        );
    }

    fn register(session: &Session) {
        session
            .directory
            .register_client(session.node, session.home_replica);
    }

    #[test]
    fn begin_read_write_and_read_your_writes() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "committed");
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::cp());
        register(&session);
        let h = session.begin(SimTime::ZERO, "g");
        assert!(session.is_open(h));
        // Read of committed data.
        assert_eq!(
            session.read(h, "row", "a").unwrap().as_deref(),
            Some("committed")
        );
        // Read of never-written data.
        assert_eq!(session.read(h, "row", "b").unwrap(), None);
        // Read-your-writes.
        session.write(h, "row", "b", "mine").unwrap();
        assert_eq!(
            session.read(h, "row", "b").unwrap().as_deref(),
            Some("mine")
        );
    }

    #[test]
    fn multiple_transactions_are_open_concurrently() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "base");
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::cp());
        let h1 = session.begin(SimTime::ZERO, "g");
        let h2 = session.begin(SimTime::ZERO, "g");
        assert_ne!(h1, h2);
        assert_eq!(session.open_transactions(), 2);
        // Writes are isolated per handle: h1's write is invisible to h2.
        session.write(h1, "row", "b", "one").unwrap();
        assert_eq!(
            session.read(h1, "row", "b").unwrap().as_deref(),
            Some("one")
        );
        assert_eq!(session.read(h2, "row", "b").unwrap(), None);
        // Both see the committed store.
        assert_eq!(
            session.read(h2, "row", "a").unwrap().as_deref(),
            Some("base")
        );
    }

    #[test]
    fn read_only_transactions_commit_immediately() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "x");
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::basic());
        let h = session.begin(SimTime::from_micros(10), "g");
        session.read(h, "row", "a").unwrap();
        let actions = session.commit(SimTime::from_micros(30), h).unwrap();
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            ClientAction::Finished(result) => {
                assert!(result.committed);
                assert!(result.read_only);
                assert_eq!(result.latency, SimDuration::ZERO);
                assert_eq!(result.total_latency, SimDuration::from_micros(20));
                assert_eq!(result.txn, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!session.is_open(h));
    }

    #[test]
    fn snapshot_handle_reads_at_its_watermark_and_rejects_writes() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "one");
        let mut session = Session::new(NodeId(5), 0, dir.clone(), ClientConfig::cp());
        let h = session.begin_read_only(SimTime::from_micros(10), "g");
        let (serving, watermark) = session.snapshot_watermark(h).expect("snapshot handle");
        assert_eq!(serving, 0);
        assert_eq!(watermark, LogPosition(1));
        // The watermark pins the view: a commit landing after begin is
        // invisible to the handle.
        seeded_entry(&dir, &core, 2, "a", "two");
        assert_eq!(
            session.read(h, "row", "a").unwrap().as_deref(),
            Some("one"),
            "snapshot reads must observe the watermark, not the latest state"
        );
        // Writes are rejected outright.
        assert_eq!(
            session.write(h, "row", "a", "nope").unwrap_err(),
            SessionError::ReadOnlyTransaction
        );
        // Commit closes route-free, always committed, no wire traffic.
        let actions = session.commit(SimTime::from_micros(40), h).unwrap();
        match &actions[..] {
            [ClientAction::Finished(r)] => {
                assert!(r.committed);
                assert!(r.read_only);
                assert_eq!(r.txn, None);
                assert_eq!(r.total_latency, SimDuration::from_micros(30));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!session.is_open(h));
        assert_eq!(session.snapshot_watermark(h), None);
    }

    #[test]
    fn snapshot_handle_lease_pins_versions_until_commit() {
        let (dir, core) = directory_with_one_dc();
        core.lock().set_gc_horizon(0);
        seeded_entry(&dir, &core, 1, "a", "pinned");
        let mut session = Session::new(NodeId(5), 0, dir.clone(), ClientConfig::cp());
        let h = session.begin_read_only(SimTime::ZERO, "g");
        assert_eq!(core.lock().read_lease_count(), 1);
        // Five newer versions land while the snapshot is open; its view
        // must survive the apply-time GC.
        for p in 2..=6 {
            seeded_entry(&dir, &core, p, "a", "newer");
        }
        assert_eq!(
            session.read(h, "row", "a").unwrap().as_deref(),
            Some("pinned"),
            "version GC must not reclaim under an open snapshot"
        );
        session.commit(SimTime::ZERO, h).unwrap();
        assert_eq!(core.lock().read_lease_count(), 0);
        // With the lease gone the next apply reclaims the old versions.
        let before = core.lock().reclaimed_version_count();
        seeded_entry(&dir, &core, 7, "a", "latest");
        assert!(core.lock().reclaimed_version_count() > before);
    }

    #[test]
    fn regular_and_snapshot_watermark_introspection_do_not_cross() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "x");
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::cp());
        let rw = session.begin(SimTime::ZERO, "g");
        assert_eq!(
            session.snapshot_watermark(rw),
            None,
            "regular handles are not snapshots"
        );
        let ro = session.begin_read_only(SimTime::ZERO, "g");
        assert!(session.snapshot_watermark(ro).is_some());
        // A regular handle keeps accepting writes alongside the snapshot.
        session.write(rw, "row", "a", "1").unwrap();
    }

    #[test]
    fn direct_commit_of_write_transaction_contacts_the_leader() {
        let (dir, _core) = directory_with_one_dc();
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::cp());
        let h = session.begin(SimTime::ZERO, "g");
        session.write(h, "row", "a", "1").unwrap();
        let actions = session.commit(SimTime::ZERO, h).unwrap();
        // Fast path enabled: first action is a leader claim to the local
        // service, plus a timer.
        assert!(matches!(
            &actions[0],
            ClientAction::Send(NodeId(0), Msg::Paxos(PaxosMsg::LeaderClaim { .. }))
        ));
        assert!(matches!(actions[1], ClientAction::ArmTimer { .. }));
        assert!(session.committing(h));
        // Operations during commit are rejected.
        assert_eq!(
            session.read(h, "row", "a").unwrap_err(),
            SessionError::CommitInProgress
        );
        assert_eq!(
            session.commit(SimTime::ZERO, h).unwrap_err(),
            SessionError::CommitInProgress
        );
    }

    #[test]
    fn direct_commits_of_one_group_queue_behind_the_in_flight_one() {
        let (dir, _core) = directory_with_one_dc();
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::cp());
        let h1 = session.begin(SimTime::ZERO, "g");
        let h2 = session.begin(SimTime::ZERO, "g");
        session.write(h1, "row", "a", "1").unwrap();
        session.write(h2, "row", "b", "2").unwrap();
        let first = session.commit(SimTime::ZERO, h1).unwrap();
        assert!(!first.is_empty());
        // The second commit queues: no wire actions until the slot frees.
        let second = session.commit(SimTime::ZERO, h2).unwrap();
        assert!(second.is_empty(), "same-group direct commit must queue");
        assert!(session.committing(h2));
        // Complete h1's instance: claim granted, accept acked.
        let actions = session.on_message(
            SimTime::ZERO,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::LeaderClaimReply {
                group: session.symbols().group("g"),
                position: LogPosition(1),
                granted: true,
            }),
        );
        let (position, ballot) = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(
                    _,
                    Msg::Paxos(PaxosMsg::Accept {
                        position, ballot, ..
                    }),
                ) => Some((*position, *ballot)),
                _ => None,
            })
            .expect("accept broadcast");
        let actions = session.on_message(
            SimTime::ZERO,
            NodeId(0),
            &Msg::Paxos(PaxosMsg::AcceptReply {
                group: session.symbols().group("g"),
                position,
                ballot,
                accepted: true,
            }),
        );
        // h1 finished and h2's proposer started in the same action batch.
        assert!(actions
            .iter()
            .any(|a| matches!(a, ClientAction::Finished(r) if r.committed)));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ClientAction::Send(_, Msg::Paxos(PaxosMsg::LeaderClaim { .. }))
            )),
            "the queued commit must start when the slot frees"
        );
        assert!(!session.is_open(h1));
        assert!(session.committing(h2));
    }

    #[test]
    fn learned_entries_install_even_after_finished_cleared_the_transaction() {
        // Regression: a `Finished` earlier in the same action batch used to
        // clear the active transaction, and the `Learned` that followed was
        // dropped because the group could no longer be resolved — stalling
        // the local read position. The group is now resolved before the
        // batch is processed and the install is unconditional.
        let (dir, core) = directory_with_one_dc();
        let group = dir.symbols().group("g");
        let mut session = Session::new(NodeId(5), 0, dir.clone(), ClientConfig::cp());
        let h = session.begin(SimTime::ZERO, "g");
        session.write(h, "row", "a", "1").unwrap();
        session.commit(SimTime::ZERO, h).unwrap();
        let learned = Arc::new(LogEntry::single(
            Transaction::builder(TxnId::new(9, 1), group, LogPosition(0))
                .write(dir.symbols().item("row", "w"), "winner")
                .build(),
        ));
        let actions = vec![
            ProposerAction::Finished(CommitOutcome {
                committed: false,
                position: None,
                promotions: 0,
                combined: false,
                rounds: 1,
                abort_reason: Some(AbortReason::Conflict),
                committed_txns: Vec::new(),
                aborted_txns: Vec::new(),
                survivors: Vec::new(),
            }),
            ProposerAction::Learned {
                position: LogPosition(1),
                entry: Arc::clone(&learned),
            },
        ];
        let mut out = Vec::new();
        session.translate(SimTime::ZERO, h.raw(), group, actions, &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, ClientAction::Finished(r) if !r.committed)));
        assert!(
            core.lock().has_entry(group, LogPosition(1)),
            "the learned entry must install even though the transaction is gone"
        );
        assert_eq!(core.lock().read_position(group), LogPosition(1));
    }

    #[test]
    fn submitted_commit_ships_to_the_group_home_and_finishes_on_reply() {
        let (dir, _core) = directory_with_one_dc();
        let config = ClientConfig::cp().with_route(CommitRoute::Submitted);
        let mut session = Session::new(NodeId(5), 0, dir.clone(), config);
        let h = session.begin(SimTime::ZERO, "g");
        session.write(h, "row", "a", "1").unwrap();
        let actions = session.commit(SimTime::from_micros(50), h).unwrap();
        let (req_id, txn_id, group) = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(NodeId(0), Msg::CommitRequest { req_id, txn }) => {
                    Some((*req_id, txn.id, txn.group))
                }
                _ => None,
            })
            .expect("commit request to the group home service");
        assert!(matches!(actions[1], ClientAction::ArmTimer { .. }));
        assert!(session.committing(h));
        let done = session.on_message(
            SimTime::from_micros(950),
            NodeId(0),
            &Msg::CommitReply {
                req_id,
                group,
                txn: txn_id,
                committed: true,
                promotions: 1,
                combined: true,
                rounds: 2,
                abort_reason: None,
            },
        );
        match &done[..] {
            [ClientAction::Finished(r)] => {
                assert!(r.committed);
                assert!(r.combined);
                assert_eq!(r.promotions, 1);
                assert_eq!(r.txn, Some(txn_id));
                assert_eq!(r.latency, SimDuration::from_micros(900));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!session.is_open(h));
    }

    #[test]
    fn submitted_commit_times_out_as_unavailable() {
        let (dir, _core) = directory_with_one_dc();
        // Retries disabled: patience expiry surfaces `Unavailable` directly.
        let config = ClientConfig::cp()
            .with_route(CommitRoute::Submitted)
            .with_max_resubmissions(0);
        let mut session = Session::new(NodeId(5), 0, dir, config);
        let h = session.begin(SimTime::ZERO, "g");
        session.write(h, "row", "a", "1").unwrap();
        let actions = session.commit(SimTime::ZERO, h).unwrap();
        let tag = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::ArmTimer { tag, .. } => Some(*tag),
                _ => None,
            })
            .expect("patience timer");
        let done = session.on_timer(SimTime::from_micros(16_000_000), tag);
        match &done[..] {
            [ClientAction::Finished(r)] => {
                assert!(!r.committed);
                assert_eq!(r.abort_reason, Some(AbortReason::Unavailable));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!session.is_open(h));
        assert_eq!(session.open_transactions(), 0);
    }

    #[test]
    fn patience_expiry_resubmits_with_the_same_id_before_giving_up() {
        let (dir, _core) = directory_with_one_dc();
        let config = ClientConfig::cp()
            .with_route(CommitRoute::Submitted)
            .with_max_resubmissions(2);
        let mut session = Session::new(NodeId(5), 0, dir, config);
        let h = session.begin(SimTime::ZERO, "g");
        session.write(h, "row", "a", "1").unwrap();
        let actions = session.commit(SimTime::ZERO, h).unwrap();
        let first = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(_, Msg::CommitRequest { req_id, txn }) => {
                    Some((*req_id, txn.id))
                }
                _ => None,
            })
            .expect("initial commit request");
        let mut tag = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::ArmTimer { tag, .. } => Some(*tag),
                _ => None,
            })
            .expect("patience timer");
        let mut now = SimTime::from_micros(16_000_000);
        let mut last_req = first.0;
        // Both budgeted retries re-send the SAME transaction id under a
        // fresh request id and re-arm patience.
        for attempt in 1..=2u64 {
            let actions = session.on_timer(now, tag);
            let (req_id, txn_id) = actions
                .iter()
                .find_map(|a| match a {
                    ClientAction::Send(_, Msg::CommitRequest { req_id, txn }) => {
                        Some((*req_id, txn.id))
                    }
                    _ => None,
                })
                .expect("resubmitted commit request");
            assert_eq!(txn_id, first.1, "retries must keep the transaction id");
            assert_ne!(req_id, last_req, "each attempt gets a fresh request id");
            last_req = req_id;
            assert_eq!(session.resubmissions(), attempt);
            assert!(session.committing(h), "still waiting after a resubmit");
            tag = actions
                .iter()
                .find_map(|a| match a {
                    ClientAction::ArmTimer { tag, .. } => Some(*tag),
                    _ => None,
                })
                .expect("re-armed patience timer");
            now += SimDuration::from_secs(17);
        }
        // Budget exhausted: the next expiry surfaces `Unavailable`.
        let done = session.on_timer(now, tag);
        match &done[..] {
            [ClientAction::Finished(r)] => {
                assert!(!r.committed);
                assert_eq!(r.abort_reason, Some(AbortReason::Unavailable));
                assert_eq!(r.txn, Some(first.1));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!session.is_open(h));
    }

    #[test]
    fn unavailable_reply_triggers_a_resubmission() {
        let (dir, _core) = directory_with_one_dc();
        let config = ClientConfig::cp()
            .with_route(CommitRoute::Submitted)
            .with_max_resubmissions(1);
        let mut session = Session::new(NodeId(5), 0, dir, config);
        let h = session.begin(SimTime::ZERO, "g");
        session.write(h, "row", "a", "1").unwrap();
        let actions = session.commit(SimTime::ZERO, h).unwrap();
        let (req_id, txn_id, group) = actions
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(_, Msg::CommitRequest { req_id, txn }) => {
                    Some((*req_id, txn.id, txn.group))
                }
                _ => None,
            })
            .expect("commit request");
        let retry = session.on_message(
            SimTime::from_micros(500),
            NodeId(0),
            &Msg::CommitReply {
                req_id,
                group,
                txn: txn_id,
                committed: false,
                promotions: 0,
                combined: false,
                rounds: 0,
                abort_reason: Some(AbortReason::Unavailable),
            },
        );
        assert!(
            retry.iter().any(|a| matches!(
                a,
                ClientAction::Send(_, Msg::CommitRequest { txn, .. }) if txn.id == txn_id
            )),
            "an Unavailable reply must trigger a resubmission, got {retry:?}"
        );
        assert_eq!(session.resubmissions(), 1);
        assert!(session.committing(h));
        // The retry's reply (answered from the service's decided-fate
        // memory) finishes the transaction normally.
        let new_req = retry
            .iter()
            .find_map(|a| match a {
                ClientAction::Send(_, Msg::CommitRequest { req_id, .. }) => Some(*req_id),
                _ => None,
            })
            .expect("retried request id");
        let done = session.on_message(
            SimTime::from_micros(900),
            NodeId(0),
            &Msg::CommitReply {
                req_id: new_req,
                group,
                txn: txn_id,
                committed: true,
                promotions: 0,
                combined: false,
                rounds: 1,
                abort_reason: None,
            },
        );
        assert!(matches!(&done[..], [ClientAction::Finished(r)] if r.committed));
        assert!(!session.is_open(h));
    }

    #[test]
    fn id_fast_paths_match_the_string_api() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "seeded");
        let group = dir.symbols().group("g");
        let item = dir.symbols().item("row", "a");
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::cp());
        let h = session.begin_id(SimTime::ZERO, group);
        assert_eq!(
            session.read_id(h, item.key, item.attr).unwrap().as_deref(),
            Some("seeded")
        );
        session.write_id(h, item.key, item.attr, "next").unwrap();
        // Read-your-writes through the string API sees the id-written value.
        assert_eq!(
            session.read(h, "row", "a").unwrap().as_deref(),
            Some("next")
        );
    }

    #[test]
    fn unknown_handles_are_rejected() {
        let (dir, _core) = directory_with_one_dc();
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::basic());
        let h = session.begin(SimTime::ZERO, "g");
        let actions = session.commit(SimTime::ZERO, h).unwrap();
        assert_eq!(actions.len(), 1, "read-only commit finishes immediately");
        // The handle is dead now.
        assert_eq!(
            session.read(h, "row", "a").unwrap_err(),
            SessionError::UnknownHandle
        );
        assert_eq!(
            session.write(h, "row", "a", "1").unwrap_err(),
            SessionError::UnknownHandle
        );
        assert_eq!(
            session.commit(SimTime::ZERO, h).unwrap_err(),
            SessionError::UnknownHandle
        );
    }

    #[test]
    fn rehoming_changes_the_local_datacenter() {
        let dir = Directory::new();
        let core0 = DatacenterCore::shared("dc0", 0);
        let core1 = DatacenterCore::shared("dc1", 1);
        dir.register_datacenter(NodeId(0), core0);
        dir.register_datacenter(NodeId(1), core1.clone());
        seeded_entry(&dir, &core1, 1, "a", "dc1-value");
        let mut session = Session::new(NodeId(5), 0, dir, ClientConfig::basic());
        assert_eq!(session.home_replica(), 0);
        session.set_home_replica(1);
        let h = session.begin(SimTime::ZERO, "g");
        assert_eq!(
            session.read(h, "row", "a").unwrap().as_deref(),
            Some("dc1-value")
        );
    }
}
