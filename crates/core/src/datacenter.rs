//! Per-datacenter storage state shared by the local Transaction Service and
//! the Transaction Clients running in the same datacenter.
//!
//! The paper's architecture keeps all durable state in the key-value store
//! and the replicated write-ahead log; the Transaction Service processes are
//! stateless. We model the datacenter's durable state as one
//! [`DatacenterCore`] value shared behind a mutex: the service actor mutates
//! it when handling messages, and local clients read it directly (the
//! "execute operations directly on the local key-value store" optimization
//! the paper uses for its evaluation prototype).
//!
//! Everything here speaks interned ids: logs are keyed by `GroupId`,
//! entries install as shared `Arc<LogEntry>`s, and applying an entry
//! assembles per-key rows with integer attribute ids.

use mvkv::{Key, MvKvStore, Row, Timestamp};
use parking_lot::Mutex;
use paxos::AcceptorStore;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use walog::{AttrId, GroupId, GroupLog, KeyId, LogEntry, LogPosition};

/// Shared handle to a datacenter's storage state.
pub type SharedCore = Arc<Mutex<DatacenterCore>>;

/// Failure returned when a read cannot be served because the local log has
/// gaps below the requested read position; the caller must catch up first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatchUpNeeded {
    /// The positions that are missing locally.
    pub missing: Vec<LogPosition>,
}

/// The durable state of one datacenter: multi-version store, write-ahead
/// logs (one per transaction group) and leader bookkeeping for the fast
/// path.
pub struct DatacenterCore {
    /// Human-readable name (e.g. `"virginia-1"`).
    name: String,
    /// Replica index of this datacenter within the cluster.
    replica: usize,
    store: MvKvStore,
    logs: HashMap<GroupId, GroupLog>,
    /// First client to claim each (group, position) via the leader fast
    /// path; later claimants are denied.
    leader_claims: HashMap<(GroupId, LogPosition), u64>,
    /// Remote reads the local Transaction Service answered `unavailable`
    /// and evicted because the requester timed out before the log caught
    /// up. Lives here (not in the service actor) so harnesses can read it
    /// after a run — the paper's services are stateless for a reason.
    expired_reads: u64,
}

impl DatacenterCore {
    /// Create an empty datacenter state.
    pub fn new(name: impl Into<String>, replica: usize) -> Self {
        DatacenterCore {
            name: name.into(),
            replica,
            store: MvKvStore::new(),
            logs: HashMap::new(),
            leader_claims: HashMap::new(),
            expired_reads: 0,
        }
    }

    /// The store row key of an application item: the group id in the high
    /// half, the row key in the low half. Qualifying rows by group keeps
    /// every group's key space disjoint — two groups using the same row
    /// name never collide in the shared store — and stays below the
    /// reserved protocol-metadata region (bit 63, see
    /// `paxos::AcceptorStore::state_key`) for every interner-assigned group
    /// id.
    fn app_key(group: GroupId, key: KeyId) -> Key {
        debug_assert!(
            group.0 < 1 << 31,
            "group id space exceeds the application key region"
        );
        Key(((group.0 as u64) << 32) | key.0 as u64)
    }

    /// Convenience: wrap in the shared handle used across actors.
    pub fn shared(name: impl Into<String>, replica: usize) -> SharedCore {
        Arc::new(Mutex::new(DatacenterCore::new(name, replica)))
    }

    /// Datacenter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replica index within the cluster.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Direct access to the key-value store (local client reads, acceptor
    /// state, tests).
    pub fn store(&self) -> &MvKvStore {
        &self.store
    }

    /// The Paxos acceptor view over this datacenter's store.
    pub fn acceptor(&self) -> AcceptorStore<'_> {
        AcceptorStore::new(&self.store)
    }

    /// The write-ahead log of a group (empty log if never touched).
    pub fn log(&self, group: GroupId) -> Option<&GroupLog> {
        self.logs.get(&group)
    }

    /// All groups with a local log, with their logs (used by the checker).
    pub fn logs(&self) -> impl Iterator<Item = (GroupId, &GroupLog)> {
        self.logs.iter().map(|(g, l)| (*g, l))
    }

    /// The read position a transaction beginning now should use: the highest
    /// position up to which this datacenter's log is gap-free (and therefore
    /// locally readable after applying).
    pub fn read_position(&self, group: GroupId) -> LogPosition {
        self.logs
            .get(&group)
            .map(|l| l.contiguous_prefix())
            .unwrap_or(LogPosition::ZERO)
    }

    /// Install a decided entry into the local log (idempotent) and eagerly
    /// apply every gap-free entry to the key-value store.
    ///
    /// Panics if a *different* entry was already installed at the position:
    /// that would violate replication property (R1) and indicates a protocol
    /// bug, which tests must surface loudly.
    pub fn install_entry(&mut self, group: GroupId, position: LogPosition, entry: Arc<LogEntry>) {
        let log = self.logs.entry(group).or_default();
        log.install(position, entry)
            .expect("replication property R1 violated: conflicting entry for a decided position");
        Self::apply_contiguous(group, log, &self.store);
    }

    /// Apply every decided-but-unapplied entry in the gap-free prefix of the
    /// group's log to the key-value store.
    fn apply_contiguous(group: GroupId, log: &mut GroupLog, store: &MvKvStore) {
        let through = log.contiguous_prefix();
        let Some(pending) = log.unapplied_range(through) else {
            return;
        };
        for (pos, entry) in pending {
            for (key, row) in Self::entry_writes(group, &entry) {
                store.apply_idempotent(key, row, Timestamp(pos.0));
            }
            log.mark_applied_through(pos);
        }
    }

    /// Collapse an entry's writes into one row-delta per (group-qualified)
    /// key. Later transactions in a combined entry overwrite earlier ones,
    /// matching the serialization order within the entry.
    fn entry_writes(group: GroupId, entry: &LogEntry) -> BTreeMap<Key, Row> {
        let mut per_key: BTreeMap<Key, Row> = BTreeMap::new();
        for txn in entry.transactions() {
            for write in txn.writes() {
                per_key
                    .entry(Self::app_key(group, write.item.key))
                    .or_default()
                    .set(write.item.attr.into(), write.value.clone());
            }
        }
        per_key
    }

    /// Read one item as of `read_position` (A2). Fails with the list of
    /// missing log positions when the local log has gaps at or below the
    /// read position, in which case the caller must catch up first (§4.1,
    /// Fault Tolerance and Recovery).
    pub fn read(
        &mut self,
        group: GroupId,
        key: KeyId,
        attr: AttrId,
        read_position: LogPosition,
    ) -> Result<Option<String>, CatchUpNeeded> {
        if read_position > LogPosition::ZERO {
            let log = self.logs.entry(group).or_default();
            let missing = log.missing_up_to(read_position);
            if !missing.is_empty() {
                return Err(CatchUpNeeded { missing });
            }
            Self::apply_contiguous(group, log, &self.store);
        }
        Ok(self.store.read_attr(
            Self::app_key(group, key),
            attr.into(),
            Some(Timestamp(read_position.0)),
        ))
    }

    /// Count one remote read answered `unavailable` and evicted after its
    /// requester timed out (recorded by the local Transaction Service).
    pub fn note_expired_read(&mut self) {
        self.expired_reads += 1;
    }

    /// Remote reads answered `unavailable` because their requester timed
    /// out before the log caught up.
    pub fn expired_read_count(&self) -> u64 {
        self.expired_reads
    }

    /// Whether this datacenter has decided (locally installed) the entry at
    /// `position`.
    pub fn has_entry(&self, group: GroupId, position: LogPosition) -> bool {
        self.logs
            .get(&group)
            .map(|l| l.contains(position))
            .unwrap_or(false)
    }

    /// Leader fast-path bookkeeping: grant the claim iff this is the first
    /// claim for the position and no Paxos activity has touched it yet.
    pub fn leader_claim(&mut self, group: GroupId, position: LogPosition, client: u64) -> bool {
        if self.has_entry(group, position) {
            return false;
        }
        if self.acceptor().promised_ballot(group, position).is_some()
            || self.acceptor().current_vote(group, position).is_some()
        {
            return false;
        }
        match self.leader_claims.entry((group, position)) {
            std::collections::hash_map::Entry::Occupied(existing) => *existing.get() == client,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(client);
                true
            }
        }
    }

    /// The client that proposed the winning value of `position - 1`, used to
    /// locate the leader of `position` (§4.1: "the leader for a log position
    /// is the site local to the application instance that won the previous
    /// log position").
    pub fn previous_winner_client(&self, group: GroupId, position: LogPosition) -> Option<u64> {
        if position.0 <= 1 {
            return None;
        }
        self.logs
            .get(&group)?
            .get(position.prev())?
            .transactions()
            .first()
            .map(|t| t.id.client as u64)
    }

    /// Total committed transactions across this datacenter's logs.
    pub fn committed_transactions(&self) -> usize {
        self.logs
            .values()
            .map(|l| l.committed_transaction_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walog::{ItemRef, Transaction, TxnId};

    const GROUP: GroupId = GroupId(0);
    const ROW: KeyId = KeyId(0);
    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    fn write_entry(
        client: u32,
        seq: u64,
        read_pos: u64,
        attr: AttrId,
        value: &str,
    ) -> Arc<LogEntry> {
        Arc::new(LogEntry::single(
            Transaction::builder(TxnId::new(client, seq), GROUP, LogPosition(read_pos))
                .write(ItemRef::new(ROW, attr), value)
                .build(),
        ))
    }

    #[test]
    fn install_and_read_through_log_positions() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        core.install_entry(GROUP, LogPosition(2), write_entry(0, 2, 1, A, "2"));
        assert_eq!(core.read_position(GROUP), LogPosition(2));
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("1".to_string())
        );
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(2)).unwrap(),
            Some("2".to_string())
        );
        assert_eq!(
            core.read(GROUP, ROW, AttrId(9), LogPosition(2)).unwrap(),
            None
        );
        assert_eq!(core.committed_transactions(), 2);
    }

    #[test]
    fn groups_with_the_same_row_key_do_not_alias_in_the_store() {
        // Two groups both write row 0 / attr 0 at position 1 with different
        // values: group-qualified store keys must keep them apart.
        let mut core = DatacenterCore::new("dc0", 0);
        let other = GroupId(1);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "g0-value"));
        let txn = Transaction::builder(TxnId::new(1, 1), other, LogPosition(0))
            .write(ItemRef::new(ROW, A), "g1-value")
            .build();
        core.install_entry(other, LogPosition(1), Arc::new(LogEntry::single(txn)));
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("g0-value".to_string())
        );
        assert_eq!(
            core.read(other, ROW, A, LogPosition(1)).unwrap(),
            Some("g1-value".to_string())
        );
    }

    #[test]
    fn expired_read_counter_accumulates() {
        let mut core = DatacenterCore::new("dc0", 0);
        assert_eq!(core.expired_read_count(), 0);
        core.note_expired_read();
        core.note_expired_read();
        assert_eq!(core.expired_read_count(), 2);
    }

    #[test]
    fn read_at_position_zero_sees_nothing() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        assert_eq!(core.read(GROUP, ROW, A, LogPosition::ZERO).unwrap(), None);
    }

    #[test]
    fn gap_forces_catch_up() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        core.install_entry(GROUP, LogPosition(3), write_entry(0, 3, 2, A, "3"));
        // Read position 3 needs position 2, which is missing.
        let err = core.read(GROUP, ROW, A, LogPosition(3)).unwrap_err();
        assert_eq!(err.missing, vec![LogPosition(2)]);
        // Reads below the gap still work.
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("1".to_string())
        );
        // Filling the gap resolves it and applies everything.
        core.install_entry(GROUP, LogPosition(2), write_entry(1, 2, 1, B, "2"));
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(3)).unwrap(),
            Some("3".to_string())
        );
        assert_eq!(core.read_position(GROUP), LogPosition(3));
    }

    #[test]
    fn combined_entry_applies_in_list_order() {
        let mut core = DatacenterCore::new("dc0", 0);
        let first = Transaction::builder(TxnId::new(0, 1), GROUP, LogPosition(0))
            .write(ItemRef::new(ROW, A), "first")
            .build();
        let second = Transaction::builder(TxnId::new(1, 2), GROUP, LogPosition(0))
            .write(ItemRef::new(ROW, A), "second")
            .write(ItemRef::new(ROW, B), "2")
            .build();
        core.install_entry(
            GROUP,
            LogPosition(1),
            Arc::new(LogEntry::combined(vec![first, second])),
        );
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("second".to_string())
        );
        assert_eq!(
            core.read(GROUP, ROW, B, LogPosition(1)).unwrap(),
            Some("2".to_string())
        );
    }

    #[test]
    fn duplicate_install_is_idempotent_but_conflicting_install_panics() {
        let mut core = DatacenterCore::new("dc0", 0);
        let entry = write_entry(0, 1, 0, A, "1");
        core.install_entry(GROUP, LogPosition(1), Arc::clone(&entry));
        core.install_entry(GROUP, LogPosition(1), entry);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.install_entry(GROUP, LogPosition(1), write_entry(9, 9, 0, A, "x"));
        }));
        assert!(result.is_err(), "conflicting install must panic (R1)");
    }

    #[test]
    fn leader_claims_are_first_come_first_served() {
        let mut core = DatacenterCore::new("dc0", 0);
        assert!(core.leader_claim(GROUP, LogPosition(1), 10));
        // The same client asking again is still granted (idempotent).
        assert!(core.leader_claim(GROUP, LogPosition(1), 10));
        assert!(!core.leader_claim(GROUP, LogPosition(1), 11));
        // A position that already has a decided entry is never granted.
        core.install_entry(GROUP, LogPosition(2), write_entry(0, 1, 1, A, "1"));
        assert!(!core.leader_claim(GROUP, LogPosition(2), 10));
    }

    #[test]
    fn leader_claim_denied_after_paxos_activity() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.acceptor()
            .handle_prepare(GROUP, LogPosition(1), paxos::Ballot::initial(5));
        assert!(!core.leader_claim(GROUP, LogPosition(1), 10));
    }

    #[test]
    fn previous_winner_is_first_transaction_of_previous_entry() {
        let mut core = DatacenterCore::new("dc0", 0);
        assert_eq!(core.previous_winner_client(GROUP, LogPosition(1)), None);
        core.install_entry(GROUP, LogPosition(1), write_entry(7, 1, 0, A, "1"));
        assert_eq!(core.previous_winner_client(GROUP, LogPosition(2)), Some(7));
        assert_eq!(core.previous_winner_client(GROUP, LogPosition(3)), None);
    }
}
