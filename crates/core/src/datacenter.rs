//! Per-datacenter storage state shared by the local Transaction Service and
//! the Transaction Clients running in the same datacenter.
//!
//! The paper's architecture keeps all durable state in the key-value store
//! and the replicated write-ahead log; the Transaction Service processes are
//! stateless. We model the datacenter's durable state as one
//! [`DatacenterCore`] value shared behind a mutex: the service actor mutates
//! it when handling messages, and local clients read it directly (the
//! "execute operations directly on the local key-value store" optimization
//! the paper uses for its evaluation prototype).
//!
//! Everything here speaks interned ids: logs are keyed by `GroupId`,
//! entries install as shared `Arc<LogEntry>`s, and applying an entry
//! assembles per-key rows with integer attribute ids.

use mvkv::{Key, MvKvStore, Row, Timestamp};
use parking_lot::Mutex;
use paxos::{AcceptorStore, Ballot};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use storage::{
    DcStorage, DurableConfig, GroupSnapshot, SnapshotRow, StorageError, StorageStats, WalRecord,
};
use walog::{AttrId, GroupId, GroupLog, KeyId, LogEntry, LogPosition, TxnId};

/// Shared handle to a datacenter's storage state.
pub type SharedCore = Arc<Mutex<DatacenterCore>>;

/// Default version-GC horizon: positions of history kept below the
/// watermark (see the `gc_horizon` field of [`DatacenterCore`]).
const DEFAULT_GC_HORIZON: u64 = 16;

/// Failure returned when a read cannot be served because the local log has
/// gaps below the requested read position; the caller must catch up first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatchUpNeeded {
    /// The positions that are missing locally.
    pub missing: Vec<LogPosition>,
}

/// What one [`DatacenterCore::install_entry`] did to the group's gap-free
/// prefix. The Transaction Service reacts to *prefix advances* (pipeline
/// completions at the head), not to every decided position: a position
/// decided above a gap installs durably but cannot apply or unblock reads
/// until the gap fills.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The group's gap-free prefix before the install.
    pub prefix_before: LogPosition,
    /// The group's gap-free prefix after the install (applied through).
    pub prefix: LogPosition,
}

impl ApplyOutcome {
    /// Whether the install advanced the applied prefix (and may therefore
    /// have made parked reads servable).
    pub fn advanced(&self) -> bool {
        self.prefix > self.prefix_before
    }
}

/// The durable state of one datacenter: multi-version store, write-ahead
/// logs (one per transaction group) and leader bookkeeping for the fast
/// path.
pub struct DatacenterCore {
    /// Human-readable name (e.g. `"virginia-1"`).
    name: String,
    /// Replica index of this datacenter within the cluster.
    replica: usize,
    store: MvKvStore,
    logs: BTreeMap<GroupId, GroupLog>,
    /// First client to claim each (group, position) via the leader fast
    /// path; later claimants are denied.
    leader_claims: BTreeMap<(GroupId, LogPosition), u64>,
    /// Remote reads the local Transaction Service answered `unavailable`
    /// and evicted because the requester timed out before the log caught
    /// up. Lives here (not in the service actor) so harnesses can read it
    /// after a run — the paper's services are stateless for a reason.
    expired_reads: u64,
    /// Active read leases per group: position → number of readers pinned at
    /// it. Local clients lease their read position between `begin` and the
    /// commit decision, and the Transaction Service leases the position of
    /// every parked remote read; the per-group minimum is the version-GC
    /// watermark — no version a leased reader can still need is reclaimed.
    read_leases: BTreeMap<GroupId, BTreeMap<u64, usize>>,
    /// Every transaction id carried by a locally installed (decided) entry,
    /// per group. This is the dedup index that makes commit retries safe
    /// across group-home migration: a new home can answer "already
    /// committed" in O(1) without scanning its log, so a re-submitted
    /// transaction can never be proposed (and committed) twice.
    committed_ids: BTreeMap<GroupId, BTreeSet<TxnId>>,
    /// Positions of history the GC always keeps below the watermark.
    /// Leases cover every *local* reader and every *parked* remote read,
    /// but a remote read served on arrival reads at a position its
    /// requester leased in a different datacenter — the horizon keeps the
    /// few positions such a read can lag by (a WAN round trip) servable.
    gc_horizon: u64,
    /// Multi-version store versions reclaimed by the apply-time GC.
    reclaimed_versions: u64,
    /// The durable storage plane, when this datacenter runs in durable
    /// mode: WAL (persist-before-ack), group snapshots and the cold-version
    /// pager. `None` keeps the original purely in-memory behavior.
    storage: Option<DcStorage>,
    /// Set while [`DatacenterCore::restart_from_disk`] replays the WAL:
    /// replayed installs must not be re-logged or trigger snapshots.
    replaying: bool,
}

/// What a [`DatacenterCore::restart_from_disk`] rebuilt, for harness
/// assertions and observability.
#[derive(Clone, Copy, Debug, Default)]
pub struct RestartReport {
    /// Group snapshots restored.
    pub snapshots_restored: usize,
    /// WAL records replayed (promises + votes + decided entries).
    pub wal_records_replayed: usize,
    /// Whether the WAL ended in a torn partial frame (tolerated: replay
    /// stops at the last durable record).
    pub torn_tail: bool,
    /// Snapshot files skipped as corrupt.
    pub corrupt_snapshots: usize,
}

impl DatacenterCore {
    /// Create an empty datacenter state.
    pub fn new(name: impl Into<String>, replica: usize) -> Self {
        DatacenterCore {
            name: name.into(),
            replica,
            store: MvKvStore::new(),
            logs: BTreeMap::new(),
            leader_claims: BTreeMap::new(),
            committed_ids: BTreeMap::new(),
            expired_reads: 0,
            read_leases: BTreeMap::new(),
            gc_horizon: DEFAULT_GC_HORIZON,
            reclaimed_versions: 0,
            storage: None,
            replaying: false,
        }
    }

    /// Attach the durable storage plane: from here on every promise, vote
    /// and decided entry is written through the WAL before it may be
    /// acknowledged, snapshots and WAL truncation run at the configured
    /// cadence, and cold store versions page out to the buffer pool.
    pub fn attach_storage(&mut self, storage: DcStorage) {
        self.store
            .set_cold_store(storage.pager(), storage.config().hot_keep);
        self.storage = Some(storage);
    }

    /// Whether this datacenter runs with the durable storage plane.
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// Storage-plane counters (`None` when running in-memory).
    pub fn storage_stats(&self) -> Option<StorageStats> {
        self.storage.as_ref().map(|s| s.stats())
    }

    /// Mutable access to the storage plane (fault injection in tests).
    pub fn storage_mut(&mut self) -> Option<&mut DcStorage> {
        self.storage.as_mut()
    }

    /// Make a phase-1 promise durable (persist-before-ack): the acceptor's
    /// `PrepareReply` must not be sent unless this returns `true`. Always
    /// `true` in-memory; with storage attached, `false` means the fsync
    /// failed and the reply must be dropped (crash-equivalent: a promise
    /// that was never made).
    pub fn persist_promise(
        &mut self,
        group: GroupId,
        position: LogPosition,
        ballot: Ballot,
    ) -> bool {
        match &mut self.storage {
            Some(s) => s.log(&WalRecord::Promise {
                group,
                position,
                ballot,
            }),
            None => true,
        }
    }

    /// Make a phase-2 vote durable (persist-before-ack); the acceptor's
    /// `AcceptReply` must not be sent unless this returns `true`.
    pub fn persist_vote(
        &mut self,
        group: GroupId,
        position: LogPosition,
        ballot: Ballot,
        value: &Arc<LogEntry>,
    ) -> bool {
        match &mut self.storage {
            Some(s) => s.log(&WalRecord::Vote {
                group,
                position,
                ballot,
                entry: Arc::clone(value),
            }),
            None => true,
        }
    }

    /// Override the version-GC horizon (positions of history always kept
    /// below the watermark). Tests pin it to 0 to exercise the lease
    /// machinery exactly; deployments trade memory for remote-read slack.
    pub fn set_gc_horizon(&mut self, horizon: u64) {
        self.gc_horizon = horizon;
    }

    /// The store row key of an application item: the group id in the high
    /// half, the row key in the low half. Qualifying rows by group keeps
    /// every group's key space disjoint — two groups using the same row
    /// name never collide in the shared store — and stays below the
    /// reserved protocol-metadata region (bit 63, see
    /// `paxos::AcceptorStore::state_key`) for every interner-assigned group
    /// id.
    fn app_key(group: GroupId, key: KeyId) -> Key {
        debug_assert!(
            group.0 < 1 << 31,
            "group id space exceeds the application key region"
        );
        Key(((group.0 as u64) << 32) | key.0 as u64)
    }

    /// Convenience: wrap in the shared handle used across actors.
    pub fn shared(name: impl Into<String>, replica: usize) -> SharedCore {
        Arc::new(Mutex::new(DatacenterCore::new(name, replica)))
    }

    /// Datacenter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replica index within the cluster.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Direct access to the key-value store (local client reads, acceptor
    /// state, tests).
    pub fn store(&self) -> &MvKvStore {
        &self.store
    }

    /// The Paxos acceptor view over this datacenter's store.
    pub fn acceptor(&self) -> AcceptorStore<'_> {
        AcceptorStore::new(&self.store)
    }

    /// The write-ahead log of a group (empty log if never touched).
    pub fn log(&self, group: GroupId) -> Option<&GroupLog> {
        self.logs.get(&group)
    }

    /// All groups with a local log, with their logs (used by the checker).
    pub fn logs(&self) -> impl Iterator<Item = (GroupId, &GroupLog)> {
        self.logs.iter().map(|(g, l)| (*g, l))
    }

    /// The read position a transaction beginning now should use: the highest
    /// position up to which this datacenter's log is gap-free (and therefore
    /// locally readable after applying).
    pub fn read_position(&self, group: GroupId) -> LogPosition {
        self.logs
            .get(&group)
            .map(|l| l.contiguous_prefix())
            .unwrap_or(LogPosition::ZERO)
    }

    /// Install a decided entry into the local log (idempotent) and eagerly
    /// apply every gap-free entry to the key-value store, reporting how far
    /// the applied prefix moved. Entries decided out of pipeline order
    /// install durably but apply strictly in position order: an entry above
    /// a gap waits, and the returned [`ApplyOutcome`] does not advance.
    /// Keys written by newly applied entries are version-GC'd behind the
    /// group's read-lease watermark (see
    /// [`DatacenterCore::begin_read_lease`]).
    ///
    /// Panics if a *different* entry was already installed at the position:
    /// that would violate replication property (R1) and indicates a protocol
    /// bug, which tests must surface loudly.
    pub fn install_entry(
        &mut self,
        group: GroupId,
        position: LogPosition,
        entry: Arc<LogEntry>,
    ) -> ApplyOutcome {
        let log = self.logs.entry(group).or_default();
        let prefix_before = log.contiguous_prefix();
        log.install(position, Arc::clone(&entry))
            .expect("replication property R1 violated: conflicting entry for a decided position");
        let ids = self.committed_ids.entry(group).or_default();
        for txn in entry.transactions() {
            ids.insert(txn.id);
        }
        // Persist-before-apply: the decided entry goes through the WAL so a
        // restart can rebuild the log tail above the last snapshot. Replayed
        // installs are already on disk; a failed sync leaves the record
        // buffered for the next sync (the decide itself is replicated, so
        // durability here only bounds catch-up work after a restart).
        if !self.replaying {
            if let Some(s) = &mut self.storage {
                s.log(&WalRecord::Decided {
                    group,
                    position,
                    entry: Arc::clone(&entry),
                });
            }
        }
        let applied_keys = Self::apply_contiguous(group, log, &self.store);
        let prefix = log.contiguous_prefix();
        self.gc_applied_keys(group, applied_keys);
        self.maybe_snapshot(group, prefix);
        ApplyOutcome {
            prefix_before,
            prefix,
        }
    }

    /// Snapshot-and-truncate trigger, run after every install: when the
    /// group's applied prefix has advanced `snapshot_every` positions past
    /// its last snapshot, capture the group's durable state, then truncate
    /// the in-memory log and the WAL below the truncation floor. The floor
    /// is the version-GC watermark — the minimum over every open read
    /// lease's position and the horizon-capped prefix — so truncation never
    /// crosses a position an active reader (or the MVCC version floor) can
    /// still need.
    fn maybe_snapshot(&mut self, group: GroupId, prefix: LogPosition) {
        if self.replaying {
            return;
        }
        let due = match &self.storage {
            Some(s) => s.snapshot_due(group, prefix),
            None => false,
        };
        if !due {
            return;
        }
        let floor = self.gc_watermark(group).min(prefix);
        let current_base = self.logs.get(&group).map(|l| l.base()).unwrap_or_default();
        let new_base = LogPosition(floor.0.saturating_sub(1)).max(current_base);
        let snap = self.build_snapshot(group, prefix, new_base);
        let Some(storage) = &mut self.storage else {
            return;
        };
        if storage.save_snapshot(&snap).is_err() {
            // Disk trouble writing the snapshot: keep the log and WAL
            // intact — recovery falls back to the previous snapshot plus a
            // longer replay, which is always safe.
            return;
        }
        if floor > LogPosition::ZERO {
            if let Some(log) = self.logs.get_mut(&group) {
                log.truncate_below(floor);
            }
            // A WAL segment is deletable only when *every* group's records
            // in it sit below that group's own snapshot base; groups
            // without a snapshot floor pin their segments.
            let floors: BTreeMap<GroupId, LogPosition> = self
                .logs
                .iter()
                .map(|(g, l)| (*g, l.base().next()))
                .collect();
            storage.truncate_wal(&floors);
        }
    }

    /// Capture one group's durable state: the applied prefix, the log base
    /// the restart will resume from, every committed transaction id, and
    /// every retained store version of the group's rows (cold versions are
    /// fetched from the pager without promoting them).
    fn build_snapshot(
        &self,
        group: GroupId,
        prefix: LogPosition,
        log_base: LogPosition,
    ) -> GroupSnapshot {
        let committed: Vec<TxnId> = self
            .committed_ids
            .get(&group)
            .map(|ids| ids.iter().copied().collect())
            .unwrap_or_default();
        let group_half = group.0 as u64;
        let rows: Vec<SnapshotRow> = self
            .store
            .dump_versions(|key| key.0 >> 32 == group_half)
            .into_iter()
            .map(|(key, versions)| SnapshotRow {
                key: key.0,
                versions: versions
                    .into_iter()
                    .map(|(ts, row)| {
                        (
                            ts.0,
                            row.iter()
                                .map(|(attr, value)| (attr.0, value.to_owned()))
                                .collect(),
                        )
                    })
                    .collect(),
            })
            .collect();
        GroupSnapshot {
            group,
            position: prefix,
            log_base,
            committed,
            rows,
        }
    }

    /// Apply every decided-but-unapplied entry in the gap-free prefix of the
    /// group's log to the key-value store; returns the store keys written.
    fn apply_contiguous(group: GroupId, log: &mut GroupLog, store: &MvKvStore) -> Vec<Key> {
        let through = log.contiguous_prefix();
        let Some(pending) = log.unapplied_range(through) else {
            return Vec::new();
        };
        let mut applied: BTreeSet<Key> = BTreeSet::new();
        for (pos, entry) in pending {
            for (key, row) in Self::entry_writes(group, &entry) {
                store.apply_idempotent(key, row, Timestamp(pos.0));
                applied.insert(key);
            }
            log.mark_applied_through(pos);
        }
        applied.into_iter().collect()
    }

    /// Reclaim store versions of freshly written keys that no active reader
    /// can still need: everything strictly older than the newest version at
    /// or below the group's watermark (min leased read position, capped by
    /// the applied prefix).
    fn gc_applied_keys(&mut self, group: GroupId, keys: Vec<Key>) {
        if keys.is_empty() {
            return;
        }
        let watermark = self.gc_watermark(group);
        if watermark == LogPosition::ZERO {
            return;
        }
        for key in keys {
            if let Some(floor) = self.store.version_floor(key, Timestamp(watermark.0)) {
                self.reclaimed_versions += self.store.gc_versions_before(key, floor) as u64;
            }
        }
    }

    /// The version-GC watermark of a group: no reader is (or will be)
    /// pinned below it. Future readers begin at the applied prefix; active
    /// ones hold leases; the horizon covers remote reads leased elsewhere.
    fn gc_watermark(&self, group: GroupId) -> LogPosition {
        let prefix = self.read_position(group);
        let horizon_cap = LogPosition(prefix.0.saturating_sub(self.gc_horizon));
        match self
            .read_leases
            .get(&group)
            .and_then(|leases| leases.keys().next())
        {
            Some(min) => LogPosition(*min).min(horizon_cap),
            None => horizon_cap,
        }
    }

    /// Pin `position` as an active read position of `group`: versions a
    /// reader at this position can see will survive GC until the lease is
    /// released with [`DatacenterCore::end_read_lease`]. Leases are
    /// refcounted per position.
    pub fn begin_read_lease(&mut self, group: GroupId, position: LogPosition) {
        *self
            .read_leases
            .entry(group)
            .or_default()
            .entry(position.0)
            .or_insert(0) += 1;
    }

    /// Release one lease on `position` previously taken with
    /// [`DatacenterCore::begin_read_lease`].
    pub fn end_read_lease(&mut self, group: GroupId, position: LogPosition) {
        let Some(leases) = self.read_leases.get_mut(&group) else {
            debug_assert!(false, "lease release without a lease");
            return;
        };
        match leases.get_mut(&position.0) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                leases.remove(&position.0);
            }
            None => debug_assert!(false, "lease release without a lease"),
        }
    }

    /// Active read leases across all groups (observability and tests).
    pub fn read_lease_count(&self) -> usize {
        self.read_leases
            .values()
            .map(|m| m.values().sum::<usize>())
            .sum()
    }

    /// Multi-version store versions reclaimed by the apply-time GC.
    pub fn reclaimed_version_count(&self) -> u64 {
        self.reclaimed_versions
    }

    /// Collapse an entry's writes into one row-delta per (group-qualified)
    /// key. Later transactions in a combined entry overwrite earlier ones,
    /// matching the serialization order within the entry.
    fn entry_writes(group: GroupId, entry: &LogEntry) -> BTreeMap<Key, Row> {
        let mut per_key: BTreeMap<Key, Row> = BTreeMap::new();
        for txn in entry.transactions() {
            for write in txn.writes() {
                per_key
                    .entry(Self::app_key(group, write.item.key))
                    .or_default()
                    .set(write.item.attr.into(), write.value.clone());
            }
        }
        per_key
    }

    /// Read one item as of `read_position` (A2). Fails with the list of
    /// missing log positions when the local log has gaps at or below the
    /// read position, in which case the caller must catch up first (§4.1,
    /// Fault Tolerance and Recovery).
    pub fn read(
        &mut self,
        group: GroupId,
        key: KeyId,
        attr: AttrId,
        read_position: LogPosition,
    ) -> Result<Option<String>, CatchUpNeeded> {
        if read_position > LogPosition::ZERO {
            let log = self.logs.entry(group).or_default();
            let missing = log.missing_up_to(read_position);
            if !missing.is_empty() {
                return Err(CatchUpNeeded { missing });
            }
            // Apply but do not GC here: a read being served right now may
            // have just released its parked-read lease, so reclamation is
            // deferred to the next install (GC runs only on apply).
            let _ = Self::apply_contiguous(group, log, &self.store);
        }
        Ok(self.store.read_attr_at(
            Self::app_key(group, key),
            attr.into(),
            Timestamp(read_position.0),
        ))
    }

    /// Count one remote read answered `unavailable` and evicted after its
    /// requester timed out (recorded by the local Transaction Service).
    pub fn note_expired_read(&mut self) {
        self.expired_reads += 1;
    }

    /// Remote reads answered `unavailable` because their requester timed
    /// out before the log caught up.
    pub fn expired_read_count(&self) -> u64 {
        self.expired_reads
    }

    /// Whether `id` rides any locally installed (decided) entry of `group`
    /// — i.e. the transaction is known committed at this datacenter. O(1);
    /// the index is maintained by [`DatacenterCore::install_entry`].
    pub fn is_committed(&self, group: GroupId, id: TxnId) -> bool {
        self.committed_ids
            .get(&group)
            .is_some_and(|ids| ids.contains(&id))
    }

    /// Whether this datacenter has decided (locally installed) the entry at
    /// `position`.
    pub fn has_entry(&self, group: GroupId, position: LogPosition) -> bool {
        self.logs
            .get(&group)
            .map(|l| l.contains(position))
            .unwrap_or(false)
    }

    /// Leader fast-path bookkeeping: grant the claim iff this is the first
    /// claim for the position and no Paxos activity has touched it yet.
    pub fn leader_claim(&mut self, group: GroupId, position: LogPosition, client: u64) -> bool {
        if self.has_entry(group, position) {
            return false;
        }
        if self.acceptor().promised_ballot(group, position).is_some()
            || self.acceptor().current_vote(group, position).is_some()
        {
            return false;
        }
        match self.leader_claims.entry((group, position)) {
            std::collections::btree_map::Entry::Occupied(existing) => *existing.get() == client,
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(client);
                true
            }
        }
    }

    /// The client that proposed the winning value of `position - 1`, used to
    /// locate the leader of `position` (§4.1: "the leader for a log position
    /// is the site local to the application instance that won the previous
    /// log position").
    pub fn previous_winner_client(&self, group: GroupId, position: LogPosition) -> Option<u64> {
        if position.0 <= 1 {
            return None;
        }
        self.logs
            .get(&group)?
            .get(position.prev())?
            .transactions()
            .first()
            .map(|t| t.id.client as u64)
    }

    /// Total committed transactions across this datacenter's logs.
    pub fn committed_transactions(&self) -> usize {
        self.logs
            .values()
            .map(|l| l.committed_transaction_count())
            .sum()
    }

    /// Crash-restart from disk: drop every in-memory structure a process
    /// crash would lose, then rebuild from the latest group snapshots plus
    /// the WAL tail — snapshots restore store rows, committed-id indexes
    /// and the truncated log base; WAL replay re-records acceptor promises
    /// and votes in append order and re-installs decided entries above each
    /// base. A torn final WAL record (the crash hit mid-append) is
    /// tolerated: replay stops at the last durable frame, and reopening the
    /// WAL repairs the tail.
    ///
    /// Read leases are deliberately **preserved**: they are owned by
    /// clients and services in *other* processes (parked remote reads,
    /// open snapshot sessions), so wiping them would let version GC — and
    /// WAL truncation, whose floor they bound — reclaim state a still-live
    /// reader needs.
    pub fn restart_from_disk(
        &mut self,
        cfg: &DurableConfig,
    ) -> Result<RestartReport, StorageError> {
        let data = DcStorage::read_for_restart(cfg)?;
        // What a crash loses: the store, the logs, the leader fast-path
        // claims, the dedup index and the counters. (Leases survive, see
        // above; the dedup index and store are rebuilt below.)
        self.store = MvKvStore::new();
        self.logs.clear();
        self.leader_claims.clear();
        self.committed_ids.clear();
        self.storage = None;
        let report = RestartReport {
            snapshots_restored: data.snapshots.len(),
            wal_records_replayed: data.replay.records.len(),
            torn_tail: data.replay.torn_tail,
            corrupt_snapshots: data.corrupt_snapshots,
        };
        self.replaying = true;
        for snap in &data.snapshots {
            self.restore_snapshot(snap);
        }
        for record in &data.replay.records {
            match record {
                WalRecord::Promise {
                    group,
                    position,
                    ballot,
                } => self.acceptor().restore_promise(*group, *position, *ballot),
                WalRecord::Vote {
                    group,
                    position,
                    ballot,
                    entry,
                } => self
                    .acceptor()
                    .restore_vote(*group, *position, *ballot, entry),
                WalRecord::Decided {
                    group,
                    position,
                    entry,
                } => {
                    // Installs at or below a restored base are silent
                    // no-ops; everything above re-applies idempotently.
                    let _ = self.install_entry(*group, *position, Arc::clone(entry));
                }
            }
        }
        self.replaying = false;
        // Reopen the storage plane last: open repairs the torn tail and
        // starts a fresh segment, and attaching re-wires the (reset) cold
        // pager into the rebuilt store.
        let storage = DcStorage::open(cfg.clone())?;
        self.attach_storage(storage);
        Ok(report)
    }

    /// Restore one group snapshot: committed ids, the truncated log base
    /// (which also marks everything at or below it as applied) and every
    /// captured store version, in timestamp order.
    fn restore_snapshot(&mut self, snap: &GroupSnapshot) {
        let ids = self.committed_ids.entry(snap.group).or_default();
        ids.extend(snap.committed.iter().copied());
        self.logs
            .entry(snap.group)
            .or_default()
            .restore_base(snap.log_base);
        for row in &snap.rows {
            for (ts, attrs) in &row.versions {
                let mut restored = Row::new();
                for (attr, value) in attrs {
                    restored.set(mvkv::Attr(*attr), value.clone());
                }
                self.store
                    .apply_idempotent(Key(row.key), restored, Timestamp(*ts));
            }
        }
    }

    /// Simulate a crash mid-append: leave a torn partial frame at the WAL
    /// tail. No-op in-memory. The handle is assumed dead afterwards — the
    /// next step is [`DatacenterCore::restart_from_disk`].
    pub fn inject_torn_wal_tail(&mut self) {
        if let Some(s) = &mut self.storage {
            s.inject_torn_tail();
        }
    }

    /// A deterministic digest of this datacenter's *durably reconstructable*
    /// state: per-group log bases, decided entries, committed-id indexes,
    /// and the latest version of every application row. Old row versions
    /// are excluded on purpose — version-GC timing during replay may differ
    /// from the original run — as is acceptor metadata for decided
    /// positions. Equal fingerprints before a crash and after
    /// [`DatacenterCore::restart_from_disk`] mean the restart lost nothing
    /// that was acknowledged.
    pub fn state_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        for (group, log) in &self.logs {
            eat(b"group");
            eat(&group.0.to_le_bytes());
            eat(&log.base().0.to_le_bytes());
            for (position, entry) in log.iter() {
                eat(&position.0.to_le_bytes());
                eat(entry.encode().as_bytes());
            }
            if let Some(ids) = self.committed_ids.get(group) {
                for id in ids {
                    eat(&id.client.to_le_bytes());
                    eat(&id.seq.to_le_bytes());
                }
            }
        }
        for key in self.store.keys() {
            if key.0 & (1 << 63) != 0 {
                continue; // protocol-metadata region
            }
            let Some(read) = self.store.read(key, None) else {
                continue;
            };
            eat(b"row");
            eat(&key.0.to_le_bytes());
            eat(&read.timestamp.0.to_le_bytes());
            for (attr, value) in read.row.iter() {
                eat(&attr.0.to_le_bytes());
                eat(value.as_bytes());
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walog::{ItemRef, Transaction, TxnId};

    const GROUP: GroupId = GroupId(0);
    const ROW: KeyId = KeyId(0);
    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    fn write_entry(
        client: u32,
        seq: u64,
        read_pos: u64,
        attr: AttrId,
        value: &str,
    ) -> Arc<LogEntry> {
        Arc::new(LogEntry::single(
            Transaction::builder(TxnId::new(client, seq), GROUP, LogPosition(read_pos))
                .write(ItemRef::new(ROW, attr), value)
                .build(),
        ))
    }

    #[test]
    fn install_and_read_through_log_positions() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        core.install_entry(GROUP, LogPosition(2), write_entry(0, 2, 1, A, "2"));
        assert_eq!(core.read_position(GROUP), LogPosition(2));
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("1".to_string())
        );
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(2)).unwrap(),
            Some("2".to_string())
        );
        assert_eq!(
            core.read(GROUP, ROW, AttrId(9), LogPosition(2)).unwrap(),
            None
        );
        assert_eq!(core.committed_transactions(), 2);
    }

    #[test]
    fn groups_with_the_same_row_key_do_not_alias_in_the_store() {
        // Two groups both write row 0 / attr 0 at position 1 with different
        // values: group-qualified store keys must keep them apart.
        let mut core = DatacenterCore::new("dc0", 0);
        let other = GroupId(1);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "g0-value"));
        let txn = Transaction::builder(TxnId::new(1, 1), other, LogPosition(0))
            .write(ItemRef::new(ROW, A), "g1-value")
            .build();
        core.install_entry(other, LogPosition(1), Arc::new(LogEntry::single(txn)));
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("g0-value".to_string())
        );
        assert_eq!(
            core.read(other, ROW, A, LogPosition(1)).unwrap(),
            Some("g1-value".to_string())
        );
    }

    #[test]
    fn expired_read_counter_accumulates() {
        let mut core = DatacenterCore::new("dc0", 0);
        assert_eq!(core.expired_read_count(), 0);
        core.note_expired_read();
        core.note_expired_read();
        assert_eq!(core.expired_read_count(), 2);
    }

    #[test]
    fn committed_id_index_tracks_installed_entries() {
        let mut core = DatacenterCore::new("dc0", 0);
        let id = TxnId::new(0, 1);
        assert!(!core.is_committed(GROUP, id));
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        assert!(core.is_committed(GROUP, id));
        // Other groups and other ids are unaffected.
        assert!(!core.is_committed(GroupId(1), id));
        assert!(!core.is_committed(GROUP, TxnId::new(0, 2)));
        // Combined entries index every member.
        let first = Transaction::builder(TxnId::new(1, 7), GROUP, LogPosition(1))
            .write(ItemRef::new(ROW, A), "x")
            .build();
        let second = Transaction::builder(TxnId::new(2, 8), GROUP, LogPosition(1))
            .write(ItemRef::new(ROW, B), "y")
            .build();
        core.install_entry(
            GROUP,
            LogPosition(2),
            Arc::new(LogEntry::combined(vec![first, second])),
        );
        assert!(core.is_committed(GROUP, TxnId::new(1, 7)));
        assert!(core.is_committed(GROUP, TxnId::new(2, 8)));
    }

    #[test]
    fn read_at_position_zero_sees_nothing() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        assert_eq!(core.read(GROUP, ROW, A, LogPosition::ZERO).unwrap(), None);
    }

    #[test]
    fn gap_forces_catch_up() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        core.install_entry(GROUP, LogPosition(3), write_entry(0, 3, 2, A, "3"));
        // Read position 3 needs position 2, which is missing.
        let err = core.read(GROUP, ROW, A, LogPosition(3)).unwrap_err();
        assert_eq!(err.missing, vec![LogPosition(2)]);
        // Reads below the gap still work.
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("1".to_string())
        );
        // Filling the gap resolves it and applies everything.
        core.install_entry(GROUP, LogPosition(2), write_entry(1, 2, 1, B, "2"));
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(3)).unwrap(),
            Some("3".to_string())
        );
        assert_eq!(core.read_position(GROUP), LogPosition(3));
    }

    #[test]
    fn combined_entry_applies_in_list_order() {
        let mut core = DatacenterCore::new("dc0", 0);
        let first = Transaction::builder(TxnId::new(0, 1), GROUP, LogPosition(0))
            .write(ItemRef::new(ROW, A), "first")
            .build();
        let second = Transaction::builder(TxnId::new(1, 2), GROUP, LogPosition(0))
            .write(ItemRef::new(ROW, A), "second")
            .write(ItemRef::new(ROW, B), "2")
            .build();
        core.install_entry(
            GROUP,
            LogPosition(1),
            Arc::new(LogEntry::combined(vec![first, second])),
        );
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(1)).unwrap(),
            Some("second".to_string())
        );
        assert_eq!(
            core.read(GROUP, ROW, B, LogPosition(1)).unwrap(),
            Some("2".to_string())
        );
    }

    #[test]
    fn duplicate_install_is_idempotent_but_conflicting_install_panics() {
        let mut core = DatacenterCore::new("dc0", 0);
        let entry = write_entry(0, 1, 0, A, "1");
        core.install_entry(GROUP, LogPosition(1), Arc::clone(&entry));
        core.install_entry(GROUP, LogPosition(1), entry);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.install_entry(GROUP, LogPosition(1), write_entry(9, 9, 0, A, "x"));
        }));
        assert!(result.is_err(), "conflicting install must panic (R1)");
    }

    #[test]
    fn install_reports_prefix_advance_and_defers_out_of_order_applies() {
        let mut core = DatacenterCore::new("dc0", 0);
        // Position 2 installs above a gap: durable but not applied.
        let out = core.install_entry(GROUP, LogPosition(2), write_entry(0, 2, 1, A, "2"));
        assert!(!out.advanced());
        assert_eq!(out.prefix, LogPosition::ZERO);
        assert!(core.has_entry(GROUP, LogPosition(2)));
        // Filling position 1 advances the prefix through both.
        let out = core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        assert!(out.advanced());
        assert_eq!(out.prefix_before, LogPosition::ZERO);
        assert_eq!(out.prefix, LogPosition(2));
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(2)).unwrap(),
            Some("2".to_string())
        );
    }

    #[test]
    fn apply_time_gc_reclaims_versions_behind_the_watermark() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.set_gc_horizon(0);
        // Five entries rewrite the same item; with no leases the watermark
        // follows the prefix, so each apply reclaims the newly superseded
        // version (the first apply has nothing older to drop).
        for p in 1..=5 {
            core.install_entry(GROUP, LogPosition(p), write_entry(0, p, p - 1, A, "v"));
        }
        assert_eq!(core.reclaimed_version_count(), 4);
        // The store key of (GROUP 0, ROW 0) is Key(0): only the newest
        // version survives.
        assert_eq!(core.store().version_count(mvkv::Key(0)), 1);
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(5)).unwrap(),
            Some("v".to_string())
        );
    }

    #[test]
    fn read_leases_pin_versions_against_gc() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.set_gc_horizon(0);
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        core.install_entry(GROUP, LogPosition(2), write_entry(0, 2, 1, A, "2"));
        // A reader pins position 2, then three more entries apply: the
        // version serving position 2 must survive.
        core.begin_read_lease(GROUP, LogPosition(2));
        assert_eq!(core.read_lease_count(), 1);
        for p in 3..=5 {
            core.install_entry(GROUP, LogPosition(p), write_entry(0, p, p - 1, A, "v"));
        }
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(2)).unwrap(),
            Some("2".to_string()),
            "the leased read position must stay servable"
        );
        // Releasing the lease lets the next apply reclaim what the reader
        // needed.
        core.end_read_lease(GROUP, LogPosition(2));
        assert_eq!(core.read_lease_count(), 0);
        let before = core.reclaimed_version_count();
        core.install_entry(GROUP, LogPosition(6), write_entry(0, 6, 5, A, "v"));
        assert!(core.reclaimed_version_count() > before);
        assert_eq!(core.store().version_count(mvkv::Key(0)), 1);
    }

    #[test]
    fn leader_claims_are_first_come_first_served() {
        let mut core = DatacenterCore::new("dc0", 0);
        assert!(core.leader_claim(GROUP, LogPosition(1), 10));
        // The same client asking again is still granted (idempotent).
        assert!(core.leader_claim(GROUP, LogPosition(1), 10));
        assert!(!core.leader_claim(GROUP, LogPosition(1), 11));
        // A position that already has a decided entry is never granted.
        core.install_entry(GROUP, LogPosition(2), write_entry(0, 1, 1, A, "1"));
        assert!(!core.leader_claim(GROUP, LogPosition(2), 10));
    }

    #[test]
    fn leader_claim_denied_after_paxos_activity() {
        let mut core = DatacenterCore::new("dc0", 0);
        core.acceptor()
            .handle_prepare(GROUP, LogPosition(1), paxos::Ballot::initial(5));
        assert!(!core.leader_claim(GROUP, LogPosition(1), 10));
    }

    fn durable_core(label: &str, snapshot_every: u64) -> (DatacenterCore, DurableConfig) {
        let mut cfg = DurableConfig::new(storage::scratch_dir(label));
        cfg.snapshot_every = snapshot_every;
        cfg.segment_bytes = 128; // rotate nearly every record
        let mut core = DatacenterCore::new("dc0", 0);
        core.set_gc_horizon(0);
        core.attach_storage(DcStorage::open(cfg.clone()).unwrap());
        (core, cfg)
    }

    #[test]
    fn durable_restart_reproduces_state_despite_a_torn_wal_tail() {
        let (mut core, cfg) = durable_core("core-restart", 4);
        assert!(core.is_durable());
        // Acceptor activity for an undecided position rides the WAL too.
        let ballot = paxos::Ballot::initial(3);
        core.acceptor()
            .handle_prepare(GROUP, LogPosition(20), ballot);
        assert!(core.persist_promise(GROUP, LogPosition(20), ballot));
        for p in 1..=10 {
            core.install_entry(
                GROUP,
                LogPosition(p),
                write_entry(0, p, p - 1, A, &format!("v{p}")),
            );
        }
        let stats = core.storage_stats().unwrap();
        assert!(stats.snapshots_written >= 1, "snapshot cadence must fire");
        assert!(stats.segments_truncated >= 1, "old WAL segments must go");
        assert!(core.log(GROUP).unwrap().base() > LogPosition::ZERO);
        let fingerprint = core.state_fingerprint();
        core.inject_torn_wal_tail();
        let report = core.restart_from_disk(&cfg).unwrap();
        assert!(report.torn_tail, "the injected tear must be observed");
        assert!(report.snapshots_restored >= 1);
        assert_eq!(
            core.state_fingerprint(),
            fingerprint,
            "restart must rebuild exactly the acknowledged state"
        );
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(10)).unwrap(),
            Some("v10".to_string())
        );
        assert!(core.is_committed(GROUP, TxnId::new(0, 10)));
        // The replayed promise still guards the undecided position.
        assert_eq!(
            core.acceptor().promised_ballot(GROUP, LogPosition(20)),
            Some(ballot)
        );
        storage::remove_scratch_dir(&cfg.dir);
    }

    #[test]
    fn open_read_lease_pins_wal_truncation_until_released() {
        let (mut core, cfg) = durable_core("core-lease-pin", 4);
        core.begin_read_lease(GROUP, LogPosition(2));
        for p in 1..=9 {
            core.install_entry(GROUP, LogPosition(p), write_entry(0, p, p - 1, A, "v"));
        }
        // The snapshot fired, but the truncation floor is capped at the
        // leased position: nothing at or above position 2 may go.
        assert!(core.storage_stats().unwrap().snapshots_written >= 1);
        assert!(core.log(GROUP).unwrap().base() < LogPosition(2));
        assert_eq!(
            core.read(GROUP, ROW, A, LogPosition(2)).unwrap(),
            Some("v".to_string()),
            "the leased position must stay servable"
        );
        // Releasing the lease lets the next snapshot advance the floor.
        core.end_read_lease(GROUP, LogPosition(2));
        for p in 10..=13 {
            core.install_entry(GROUP, LogPosition(p), write_entry(0, p, p - 1, A, "v"));
        }
        assert!(core.log(GROUP).unwrap().base() >= LogPosition(2));
        storage::remove_scratch_dir(&cfg.dir);
    }

    #[test]
    fn in_memory_core_persists_nothing_and_always_acks() {
        let mut core = DatacenterCore::new("dc0", 0);
        assert!(!core.is_durable());
        assert!(core.storage_stats().is_none());
        assert!(core.persist_promise(GROUP, LogPosition(1), paxos::Ballot::initial(1)));
        core.install_entry(GROUP, LogPosition(1), write_entry(0, 1, 0, A, "1"));
        assert_eq!(core.log(GROUP).unwrap().base(), LogPosition::ZERO);
    }

    #[test]
    fn previous_winner_is_first_transaction_of_previous_entry() {
        let mut core = DatacenterCore::new("dc0", 0);
        assert_eq!(core.previous_winner_client(GROUP, LogPosition(1)), None);
        core.install_entry(GROUP, LogPosition(1), write_entry(7, 1, 0, A, "1"));
        assert_eq!(core.previous_winner_client(GROUP, LogPosition(2)), Some(7));
        assert_eq!(core.previous_winner_client(GROUP, LogPosition(3)), None);
    }
}
